"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``gen``        — generate a workload trace to CSV/NPZ
* ``stats``      — print a trace's complexity fingerprint
* ``complexity`` — place a trace on the Avin-et-al. complexity map
* ``simulate``   — run a trace through a chosen network design
* ``optimal``    — compute the optimal static tree for a trace's demand
* ``figures``    — render the paper's schematic figures from live structures
* ``reproduce``  — regenerate the paper's tables at a chosen scale
* ``scenarios``  — list/run/export declarative scenario sets (the paper's
  tables as data; see :mod:`repro.scenarios`); ``run`` consults the
  per-cell result cache by default (``--no-cache`` / ``--refresh``),
  records to either results backend (``--store jsonl|sqlite``), and
  ``export --to`` converts a campaign's record between backends
* ``bench-store`` — results-store ingest/lookup throughput, JSONL vs SQLite
* ``bench-hotpath`` — serve-loop throughput of the object vs. flat engine
* ``bench-pipeline`` — end-to-end ``run_all`` time per engine
* ``bench-optimal`` — optimal-tree DP subsystem vs. the legacy forward
  pass, plus the result-cache cold/warm trajectory
* ``bench-servefarm`` — resident vs. marshalled vs. flat scalar serving,
  plus serve-farm shard scaling (aggregate req/s, p50/p99 latency)
* ``serve`` — run the async socket ingress gateway in front of a serve
  farm (``--shards N --port P``; SIGTERM drains gracefully)
* ``bench-ingress`` — socket-path throughput/latency vs. the direct
  in-process farm, micro-batched vs. batch-size-1 dispatch
* ``bench-report`` — render ``benchmarks/results/BENCH_*.json`` into a
  markdown perf-trajectory table

Every command is a thin shell over the public API, so anything done here
can be scripted directly in Python; run with ``-h`` for per-command flags.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.net.registry import build_network
from repro.net.spec import PolicySpec
from repro.network.cost import ROUTING_ONLY, UNIT_ROTATIONS
from repro.network.simulator import Simulator
from repro.optimal.general import optimal_static_tree
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.demand import DemandMatrix
from repro.workloads.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workloads.mixtures import (
    elephant_mice_trace,
    markov_modulated_trace,
    shuffle_phase_trace,
)
from repro.workloads.stats import summarize_trace
from repro.workloads.synthetic import (
    bursty_trace,
    hotspot_trace,
    permutation_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace

__all__ = ["main"]

_GENERATORS = {
    "uniform": lambda n, m, seed, p: uniform_trace(n, m, seed),
    "temporal": lambda n, m, seed, p: temporal_trace(n, m, p, seed),
    "zipf": lambda n, m, seed, p: zipf_trace(n, m, p or 1.2, seed),
    "hotspot": lambda n, m, seed, p: hotspot_trace(n, m, seed=seed),
    "bursty": lambda n, m, seed, p: bursty_trace(n, m, p or 8.0, seed),
    "permutation": lambda n, m, seed, p: permutation_trace(n, m, seed),
    "hpc": lambda n, m, seed, p: hpc_trace(n, m, seed),
    "projector": lambda n, m, seed, p: projector_trace(n, m, seed),
    "facebook": lambda n, m, seed, p: facebook_trace(n, m, seed),
    "elephant-mice": lambda n, m, seed, p: elephant_mice_trace(
        n, m, elephant_share=p or 0.7, seed=seed
    ),
    "markov": lambda n, m, seed, p: markov_modulated_trace(
        n, m, p_local=p or 0.9, seed=seed
    ),
    "shuffle": lambda n, m, seed, p: shuffle_phase_trace(n, m, seed=seed),
}

#: CLI network name → registry algorithm (the CLI's historical short name
#: ``ksplaynet`` maps onto the registry's ``kary-splaynet``).
_CLI_ALGORITHMS = {
    "ksplaynet": "kary-splaynet",
    "centroid-splaynet": "centroid-splaynet",
    "splaynet": "splaynet",
    "full-tree": "full-tree",
    "centroid-tree": "centroid-tree",
    "optimal-tree": "optimal-tree",
    "optimal-bst": "optimal-bst",
    "lazy": "lazy",
}
_NETWORKS = tuple(_CLI_ALGORITHMS)


def _load_trace(path: str) -> Trace:
    p = Path(path)
    if p.suffix == ".npz":
        return load_trace_npz(p)
    return load_trace_csv(p)


def _parse_policy_flag(text: str) -> PolicySpec:
    """Parse ``--policy name`` / ``--policy name:key=val,key=val``."""
    name, _, arg_text = text.partition(":")
    params = {}
    if arg_text:
        for item in arg_text.split(","):
            key, sep, raw = item.partition("=")
            if not sep or not key:
                raise ReproError(
                    f"bad --policy parameter {item!r}; use key=value"
                )
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
            params[key] = value
    return PolicySpec(name, params)


def _build_cli_network(
    name: str,
    trace: Trace,
    k: int,
    alpha: float,
    engine=None,
    policies: Sequence[str] = (),
):
    """Build the ``simulate`` command's network through the registry."""
    algorithm = _CLI_ALGORITHMS.get(name)
    if algorithm is None:
        raise ReproError(f"unknown network {name!r}; choose from {_NETWORKS}")
    params = {"alpha": alpha} if algorithm == "lazy" else {}
    return build_network(
        algorithm,
        n=trace.n,
        k=k,
        engine=engine,
        params=params,
        policies=tuple(_parse_policy_flag(text) for text in policies),
        trace=trace,
    )


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_gen(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.kind]
    trace = generator(args.nodes, args.requests, args.seed, args.param)
    out = Path(args.output)
    if out.suffix == ".npz":
        save_trace_npz(trace, out)
    else:
        save_trace_csv(trace, out)
    print(f"wrote {trace.m} requests over {trace.n} nodes to {out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    print(summarize_trace(trace))
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import complexity_report

    trace = _load_trace(args.trace)
    report = complexity_report(trace, window=args.window)
    print(report)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import render_all_figures

    figures = render_all_figures()
    wanted = args.only or sorted(figures)
    for name in wanted:
        if name not in figures:
            raise ReproError(
                f"unknown figure {name!r}; choose from {sorted(figures)}"
            )
        print(f"==== {name} " + "=" * max(0, 60 - len(name)))
        print(figures[name])
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    network = _build_cli_network(
        args.network, trace, args.k, args.alpha, args.engine,
        policies=args.policy or (),
    )
    result = Simulator().run(network, trace, name=f"{args.network} on {trace.name}")
    print(result)
    print(f"  routing-only cost      : {result.total_cost(ROUTING_ONLY):.0f}")
    print(f"  + unit rotations       : {result.total_cost(UNIT_ROTATIONS):.0f}")
    print(f"  elapsed                : {result.elapsed_seconds:.2f}s")
    return 0


def _cmd_optimal(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    demand = DemandMatrix.from_trace(trace)
    result = optimal_static_tree(demand, args.k)
    print(f"optimal static {args.k}-ary tree: total distance {result.cost}")
    if args.show:
        print(result.tree.render(max_nodes=args.max_render))
    return 0


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.hotpath import hotpath_benchmark, write_hotpath_record

    result = hotpath_benchmark(
        n=args.nodes,
        k=args.k,
        m=args.requests,
        network=args.network,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        repeats=args.repeats,
        engines=args.engines,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if args.output:
        write_hotpath_record(result, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if result.get("totals_match") is False:
        print("error: engine cost totals diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.presets import get_scale
    from repro.experiments.runner import run_all

    report = run_all(
        scale=get_scale(args.scale),
        output_dir=args.output,
        verbose=not args.quiet,
        jobs=args.jobs,
        engine=args.engine,
        cache=True if (args.cache or args.refresh) else None,
        refresh=args.refresh,
    )
    print(report.render())
    if args.verify:
        from repro.experiments.verify import verify_reproduction

        summary = verify_reproduction(report)
        print()
        print(summary.render())
        return 0 if summary.passed else 1
    return 0


def _cmd_bench_pipeline(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.pipelinebench import (
        DEFAULT_TABLES,
        reproduce_pipeline_benchmark,
        write_pipeline_record,
    )

    record = reproduce_pipeline_benchmark(
        args.scale,
        tables=tuple(args.tables) if args.tables is not None else DEFAULT_TABLES,
        include_table8=args.table8,
        repeats=args.repeats,
        jobs=args.jobs,
        verbose=not args.quiet,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_pipeline_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if record.get("summaries_match") is False:
        print("error: engine table summaries diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_optimal(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.optimalbench import (
        optimal_dp_benchmark,
        write_optimal_record,
    )

    record = optimal_dp_benchmark(
        args.scale,
        campaign=args.campaign,
        workload=args.workload,
        ks=tuple(args.ks) if args.ks is not None else None,
        include_legacy=not args.no_legacy,
        verbose=not args.quiet,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_optimal_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    failed = (
        record["dp"].get("costs_match") is False
        or record["cache"].get("summaries_match") is False
    )
    if failed:
        print("error: DP subsystem diverged from its oracle", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_servefarm(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.servebench import (
        servefarm_benchmark,
        write_servefarm_record,
    )

    record = servefarm_benchmark(
        n=args.nodes,
        k=args.k,
        scalar_m=args.scalar_requests,
        farm_m=args.farm_requests,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        repeats=args.repeats,
        scalar_modes=args.modes,
        shard_counts=tuple(args.shards),
        keys=args.keys,
        window=args.window,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_servefarm_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    failed = (
        record["scalar"].get("totals_match") is False
        or record["farm"].get("totals_match") is False
    )
    if failed:
        print("error: serving-mode cost totals diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.ingress import BreakerConfig, IngressServer
    from repro.serving.farm import ServeFarm
    from repro.serving.health import HealthConfig

    # Validate up front: a bad flag should be one clear line on stderr,
    # not a traceback from deep inside multiprocessing or asyncio.
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if not 0 <= args.port <= 65535:
        raise ReproError(
            f"--port must be in 0..65535 (0 = ephemeral), got {args.port}"
        )
    if args.nodes < 2:
        raise ReproError(f"--nodes must be >= 2, got {args.nodes}")
    if args.batch_window < 0:
        raise ReproError(
            f"--batch-window must be >= 0, got {args.batch_window}"
        )
    if args.batch_max < 1:
        raise ReproError(f"--batch-max must be >= 1, got {args.batch_max}")
    if args.max_respawns < 0:
        raise ReproError(
            f"--max-respawns must be >= 0, got {args.max_respawns}"
        )
    if args.checkpoint_every < 0:
        raise ReproError(
            f"--checkpoint-every must be >= 0 (0 = off),"
            f" got {args.checkpoint_every}"
        )
    # HealthConfig / BreakerConfig validate their own deadlines, but do
    # it here so the error surfaces before any worker is spawned.
    health = HealthConfig(
        interval=args.health_interval,
        suspect_after=args.suspect_after,
        down_after=args.down_after,
    )
    breaker = BreakerConfig(
        failure_threshold=args.breaker_threshold,
        reset_timeout=args.breaker_reset,
    )

    async def run() -> IngressServer:
        farm = ServeFarm(
            "kary-splaynet",
            n=args.nodes,
            k=args.k,
            shards=args.shards,
            engine=args.engine,
            health=health,
            max_respawns=args.max_respawns,
            checkpoint_every=args.checkpoint_every or None,
        )
        server = IngressServer(
            farm,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window,
            batch_max=args.batch_max,
            default_deadline=args.deadline or None,
            breaker=breaker,
        )
        await server.start()
        server.install_signal_handlers()
        host, port = server.address
        # Readiness line on stdout: scripts (and the CI smoke job) parse
        # the bound port from it, so keep the format stable and flushed.
        print(f"ingress listening on {host}:{port}", flush=True)
        await server.serve_forever()
        return server

    server = asyncio.run(run())
    print(
        f"drained: {server.served} served, {server.overloaded} overloaded,"
        f" {server.errors} errored",
        file=sys.stderr,
    )
    return 0


def _cmd_bench_ingress(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.ingressbench import (
        ingress_benchmark,
        write_ingress_record,
    )

    record = ingress_benchmark(
        n=args.nodes,
        k=args.k,
        m=args.requests,
        keys=args.keys,
        shards=args.shards,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        concurrency=args.concurrency,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_ingress_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if record.get("totals_match") is False:
        print("error: ingress cost totals diverged", file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.reliability.chaos import (
        ChaosConfig,
        run_chaos,
        write_chaos_record,
    )

    config = ChaosConfig(
        n=args.nodes,
        k=args.k,
        keys=args.keys,
        shards=args.shards,
        rounds=args.rounds,
        requests_per_round=args.requests_per_round,
        zipf_alpha=args.zipf_alpha,
        seed=args.seed,
        engine=args.engine,
        faults_per_point=args.faults_per_point,
        recovery_timeout=args.recovery_timeout,
    )
    # The seed is the replay handle: print it before anything can fail.
    print(f"chaos soak: seed={config.seed} rounds={config.rounds}"
          f" shards={config.shards}", file=sys.stderr)
    report = run_chaos(config)
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        write_chaos_record(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if not report["passed"]:
        print(
            f"error: chaos invariants violated (replay with"
            f" --seed {config.seed})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.experiments.trajectory import render_trajectory

    text = render_trajectory(args.results_dir)
    print(text, end="")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# the scenarios subcommand (list / run / export)
# ----------------------------------------------------------------------
def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.experiments.presets import get_scale
    from repro.scenarios import expand, scenario_names

    scale = get_scale(args.scale)
    print(f"registered scenarios (scale: {scale.name}):")
    for name in scenario_names():
        specs = expand(name, scale)
        kinds = sorted({spec.kind for spec in specs})
        print(f"  {name:10s} {len(specs):4d} cells  [{', '.join(kinds)}]")
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.experiments.presets import get_scale
    from repro.results import default_store_path, open_store
    from repro.scenarios import expand, run_specs

    scale = get_scale(args.scale)
    specs = expand(args.name, scale, engine=args.engine)
    out = args.output
    if out is None and (args.record or args.resume):
        out = default_store_path(args.name, scale.name, args.store or "jsonl")
    from repro.scenarios.cache import env_disables_cache

    config = None
    if args.retries:
        from repro.parallel.pool import ParallelConfig

        config = ParallelConfig(jobs=args.jobs, retries=args.retries)
    # --store overrides; otherwise the backend follows the path suffix.
    sink = (
        open_store(out, backend=args.store, scale=scale.name) if out else None
    )
    try:
        results = run_specs(
            specs,
            jobs=args.jobs,
            config=config,
            sink=sink,
            # Default on; --no-cache or REPRO_RESULT_CACHE=0 opts out.
            cache=False if (args.no_cache or env_disables_cache()) else True,
            refresh=args.refresh,
            resume=args.resume,
        )
    finally:
        if sink is not None:
            sink.close()
    recorded = ""
    if sink is not None:
        # Honest resume accounting: `count` is this session's writes only,
        # so say how many records the file already held.
        recorded = (
            f" -> {out} ({sink.count} written, {sink.preexisting} preexisting,"
            f" {sink.total} total)"
        )
    print(f"{args.name}: {len(results)} cells at scale {scale.name}" + recorded)
    header = f"{'group':18s} {'algorithm':24s} {'k':>3s} {'n':>6s} {'routing':>12s} {'rotations':>12s} {'avg':>10s}"
    print(header)
    for cell in results:
        spec = cell.spec
        avg = f"{cell.average_routing:10.3f}" if spec.m else f"{'-':>10s}"
        print(
            f"{spec.group:18s} {spec.algorithm:24s} {spec.k:>3d} {spec.n:>6d}"
            f" {cell.total_routing:>12d} {cell.total_rotations:>12d} {avg}"
        )
    return 0


def _cmd_scenarios_export(args: argparse.Namespace) -> int:
    from repro.experiments.presets import get_scale
    from repro.scenarios import expand, specs_to_json

    scale = get_scale(args.scale)
    if args.to is not None:
        # Record conversion: stream the campaign's result record into the
        # other backend (JSONL ↔ SQLite), cell for cell.
        from repro.results import copy_results, default_store_path

        other = {"jsonl": "sqlite", "sqlite": "jsonl"}[args.to]
        source = Path(args.source) if args.source else default_store_path(
            args.name, scale.name, other
        )
        if not source.exists():
            raise ReproError(
                f"no result record at {source}; run the campaign first or"
                " pass --from"
            )
        out = Path(args.output) if args.output else default_store_path(
            args.name, scale.name, args.to
        )
        copied = copy_results(source, out)
        print(f"converted {copied} results: {source} -> {out}")
        return 0
    specs = expand(args.name, scale, engine=args.engine)
    text = specs_to_json(specs)
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {len(specs)} specs to {args.output}")
    else:
        print(text)
    return 0


def _cmd_bench_store(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.storebench import (
        results_store_benchmark,
        write_store_record,
    )

    record = results_store_benchmark(
        cells=args.cells,
        lookups=args.lookups,
        batch=args.batch,
        seed=args.seed,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.output:
        write_store_record(record, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if record.get("roundtrip_match") is False:
        print("error: store backends disagree on the record", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-adjusting k-ary search tree networks (paper reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a workload trace")
    gen.add_argument("kind", choices=sorted(_GENERATORS))
    gen.add_argument("output", help="output path (.csv or .npz)")
    gen.add_argument("-n", "--nodes", type=int, default=100)
    gen.add_argument("-m", "--requests", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "-p", "--param", type=float, default=None,
        help="generator parameter (temporal p / zipf alpha / burst length)",
    )
    gen.set_defaults(func=_cmd_gen)

    stats = sub.add_parser("stats", help="fingerprint a trace")
    stats.add_argument("trace", help="trace path (.csv or .npz)")
    stats.set_defaults(func=_cmd_stats)

    complexity = sub.add_parser(
        "complexity", help="complexity-map coordinates of a trace"
    )
    complexity.add_argument("trace", help="trace path (.csv or .npz)")
    complexity.add_argument(
        "--window", type=int, default=64,
        help="recurrence window for burst locality",
    )
    complexity.set_defaults(func=_cmd_complexity)

    figures = sub.add_parser(
        "figures", help="render the paper's schematic figures"
    )
    figures.add_argument(
        "only", nargs="*", default=None,
        help="subset to render (figure1 .. figure8; default all)",
    )
    figures.set_defaults(func=_cmd_figures)

    sim = sub.add_parser("simulate", help="run a trace through a network")
    sim.add_argument("trace", help="trace path (.csv or .npz)")
    sim.add_argument("network", choices=_NETWORKS)
    sim.add_argument("-k", type=int, default=2, help="tree arity")
    sim.add_argument(
        "--alpha", type=float, default=10_000.0,
        help="rebuild threshold for the lazy network",
    )
    sim.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="tree-engine backend for the self-adjusting networks",
    )
    sim.add_argument(
        "--policy", action="append", default=None, metavar="NAME[:K=V,...]",
        help="wrap the network in an adjustment policy (repeatable, applied"
             " innermost-first): e.g. thresholded:threshold=2,"
             " probabilistic:q=0.5,seed=7, frozen",
    )
    sim.set_defaults(func=_cmd_simulate)

    bench = sub.add_parser(
        "bench-hotpath",
        help="serve-loop throughput per tree engine (JSON output)",
    )
    bench.add_argument("-n", "--nodes", type=int, default=1024)
    bench.add_argument("-k", type=int, default=4, help="tree arity")
    bench.add_argument("-m", "--requests", type=int, default=100_000)
    bench.add_argument(
        "--network", choices=("ksplaynet", "centroid-splaynet"),
        default="ksplaynet",
    )
    bench.add_argument("--zipf-alpha", type=float, default=1.2)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="interleaved timing repeats per engine (best kept)",
    )
    bench.add_argument(
        "--engines", nargs="+", choices=("object", "flat", "native"),
        default=None,
        help="engine subset to measure (default: every available engine)",
    )
    bench.add_argument("--output", default=None, help="also write JSON here")
    bench.set_defaults(func=_cmd_bench_hotpath)

    opt = sub.add_parser("optimal", help="optimal static tree for a trace")
    opt.add_argument("trace", help="trace path (.csv or .npz)")
    opt.add_argument("-k", type=int, default=2)
    opt.add_argument("--show", action="store_true", help="render the tree")
    opt.add_argument("--max-render", type=int, default=100)
    opt.set_defaults(func=_cmd_optimal)

    rep = sub.add_parser("reproduce", help="regenerate the paper's tables")
    rep.add_argument("--scale", default=None, choices=("smoke", "quick", "paper"))
    rep.add_argument("--output", default=None, help="directory for reports")
    rep.add_argument("--quiet", action="store_true")
    rep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the table cells (0 = all cores)",
    )
    rep.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="tree-engine backend for the self-adjusting cells"
             " (default: flat, the fast one; totals are engine-independent)",
    )
    rep.add_argument(
        "--verify", action="store_true",
        help="check every qualitative claim and exit nonzero on failure",
    )
    rep.add_argument(
        "--cache", action="store_true",
        help="serve unchanged cells from the per-cell result cache"
             " (default: only when REPRO_RESULT_CACHE is set)",
    )
    rep.add_argument(
        "--refresh", action="store_true",
        help="recompute every cell and overwrite its cache entry"
             " (implies --cache)",
    )
    rep.set_defaults(func=_cmd_reproduce)

    scen = sub.add_parser(
        "scenarios",
        help="declarative scenario sets: the paper's tables as data",
    )
    scen_sub = scen.add_subparsers(dest="action", required=True)

    scen_list = scen_sub.add_parser("list", help="registered scenario sets")
    scen_list.add_argument("--scale", default=None, choices=("smoke", "quick", "paper"))
    scen_list.set_defaults(func=_cmd_scenarios_list)

    scen_run = scen_sub.add_parser("run", help="run one scenario set")
    scen_run.add_argument("name", help="a name from `repro scenarios list`")
    scen_run.add_argument("--scale", default=None, choices=("smoke", "quick", "paper"))
    scen_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the cells (0 = all cores)",
    )
    scen_run.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="tree-engine backend for the self-adjusting cells",
    )
    scen_run.add_argument(
        "--output", default=None,
        help="stream results to this record file (.jsonl or .sqlite)",
    )
    scen_run.add_argument(
        "--record", action="store_true",
        help="stream results to the conventional benchmarks/results/ path",
    )
    scen_run.add_argument(
        "--store", choices=("jsonl", "sqlite"), default=None,
        help="results backend (default: inferred from the output path"
             " suffix, jsonl otherwise)",
    )
    scen_run.add_argument(
        "--no-cache", action="store_true",
        help="compute every cell even if the result cache has it",
    )
    scen_run.add_argument(
        "--refresh", action="store_true",
        help="recompute every cell and overwrite its cache entry",
    )
    scen_run.add_argument(
        "--resume", action="store_true",
        help="seed completed cells from the output file (after a crash)"
        " and compute only the rest",
    )
    scen_run.add_argument(
        "--retries", type=int, default=0,
        help="re-attempts per failing cell (deterministic backoff)",
    )
    scen_run.set_defaults(func=_cmd_scenarios_run)

    scen_export = scen_sub.add_parser(
        "export",
        help="expand one scenario set to a JSON spec list, or convert its"
             " result record between store backends (--to)",
    )
    scen_export.add_argument("name", help="a name from `repro scenarios list`")
    scen_export.add_argument("--scale", default=None, choices=("smoke", "quick", "paper"))
    scen_export.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="pin the tree engine in the exported specs",
    )
    scen_export.add_argument(
        "--to", choices=("jsonl", "sqlite"), default=None,
        help="convert the campaign's result record to this backend"
             " instead of exporting specs",
    )
    scen_export.add_argument(
        "--from", dest="source", default=None,
        help="source record for --to (default: the campaign's"
             " conventional path in the other backend)",
    )
    scen_export.add_argument("-o", "--output", default=None, help="write here")
    scen_export.set_defaults(func=_cmd_scenarios_export)

    benchp = sub.add_parser(
        "bench-pipeline",
        help="end-to-end run_all time per tree engine (JSON output)",
    )
    benchp.add_argument("--scale", default="quick", choices=("smoke", "quick", "paper"))
    benchp.add_argument(
        "--tables", type=int, nargs="*", default=None,
        help="table subset (default: the recorded-trajectory subset"
             " 1,2,4,5,6,7 — see EXPERIMENTS.md)",
    )
    benchp.add_argument(
        "--table8", action="store_true",
        help="include Table 8 (n=1024 engine-independent DP at quick scale)",
    )
    benchp.add_argument(
        "--repeats", type=int, default=2,
        help="timing repeats per engine (best CPU time kept)",
    )
    benchp.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (keep 1 for clean CPU-time measurement)",
    )
    benchp.add_argument("--quiet", action="store_true")
    benchp.add_argument("--output", default=None, help="also write JSON here")
    benchp.set_defaults(func=_cmd_bench_pipeline)

    bencho = sub.add_parser(
        "bench-optimal",
        help="optimal-tree DP subsystem vs. legacy + cache trajectory (JSON)",
    )
    bencho.add_argument("--scale", default="quick", choices=("smoke", "quick", "paper"))
    bencho.add_argument(
        "--campaign", default="table3",
        help="scenario set for the cache cold/warm trajectory"
             " (default: table3, the DP-dominated one)",
    )
    bencho.add_argument(
        "--workload", default="facebook",
        help="workload for the before/after DP timing (default: facebook)",
    )
    bencho.add_argument(
        "--ks", type=int, nargs="*", default=None,
        help="arity sweep for the DP timing (default: the scale's)",
    )
    bencho.add_argument(
        "--no-legacy", action="store_true",
        help="skip the slow historical forward pass (subsystem timing only)",
    )
    bencho.add_argument("--quiet", action="store_true")
    bencho.add_argument("--output", default=None, help="also write JSON here")
    bencho.set_defaults(func=_cmd_bench_optimal)

    benchs = sub.add_parser(
        "bench-servefarm",
        help="resident scalar serving + serve-farm shard scaling (JSON)",
    )
    benchs.add_argument("-n", "--nodes", type=int, default=1024)
    benchs.add_argument("-k", type=int, default=4, help="tree arity")
    benchs.add_argument(
        "--scalar-requests", type=int, default=2_000,
        help="requests per scalar serving mode (0 skips the scalar part)",
    )
    benchs.add_argument(
        "--farm-requests", type=int, default=100_000,
        help="requests through the farm per shard count (0 skips)",
    )
    benchs.add_argument("--zipf-alpha", type=float, default=1.2)
    benchs.add_argument("--seed", type=int, default=0)
    benchs.add_argument(
        "--repeats", type=int, default=1,
        help="interleaved timing repeats (best kept)",
    )
    benchs.add_argument(
        "--modes", nargs="+", choices=("resident", "marshalled", "flat"),
        default=None,
        help="scalar mode subset (default: every mode measurable here)",
    )
    benchs.add_argument(
        "--shards", type=int, nargs="+", default=(1, 2),
        help="farm shard counts to measure",
    )
    benchs.add_argument("--keys", type=int, default=8, help="session keys")
    benchs.add_argument(
        "--window", type=int, default=8_192,
        help="requests per farm dispatch window",
    )
    benchs.add_argument("--output", default=None, help="also write JSON here")
    benchs.set_defaults(func=_cmd_bench_servefarm)

    serve = sub.add_parser(
        "serve",
        help="socket ingress gateway in front of a serve farm",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="serve-farm worker processes behind the gateway",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("-n", "--nodes", type=int, default=1024)
    serve.add_argument("-k", type=int, default=4, help="tree arity")
    serve.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="tree-engine backend for the workers (default: native,"
             " degrading to flat without the kernel)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002,
        help="micro-batch coalescing window per shard, seconds",
    )
    serve.add_argument(
        "--batch-max", type=int, default=256,
        help="max requests coalesced into one farm dispatch",
    )
    serve.add_argument(
        "--deadline", type=float, default=0.0,
        help="default per-request deadline, seconds (0 = none; expired"
             " requests get an explicit OVERLOAD response)",
    )
    serve.add_argument(
        "--health-interval", type=float, default=0.5,
        help="worker heartbeat period, seconds",
    )
    serve.add_argument(
        "--suspect-after", type=float, default=2.0,
        help="heartbeat silence before a shard is marked suspect, seconds",
    )
    serve.add_argument(
        "--down-after", type=float, default=5.0,
        help="heartbeat silence before a shard is declared down and"
             " proactively respawned, seconds",
    )
    serve.add_argument(
        "--max-respawns", type=int, default=2,
        help="worker respawn budget before the farm gives up loudly",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="warm-standby cadence: snapshot each session every N"
             " requests so recovery replays at most N (0 = replay-only)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive shard failures that trip its circuit breaker",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=1.0,
        help="seconds an open breaker waits before half-open probing",
    )
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos soak against a live `repro serve` process"
             " (kills every shard under load; exits 1 on any invariant"
             " violation)",
    )
    chaos.add_argument("-n", "--nodes", type=int, default=128)
    chaos.add_argument("-k", type=int, default=4, help="tree arity")
    chaos.add_argument("--keys", type=int, default=6, help="session keys")
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument(
        "--rounds", type=int, default=2,
        help="storm rounds, one shard SIGKILL each (round-robin: use"
             " >= --shards to kill every shard at least once)",
    )
    chaos.add_argument(
        "--requests-per-round", type=int, default=400,
        help="client requests pumped across the lanes per round",
    )
    chaos.add_argument("--zipf-alpha", type=float, default=1.2)
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="pins the workload and the fault schedule (the replay handle)",
    )
    chaos.add_argument(
        "--engine", choices=("object", "flat", "native"), default=None,
        help="tree-engine backend for the target's workers",
    )
    chaos.add_argument(
        "--faults-per-point", type=int, default=2,
        help="error-mode faults injected per fault point"
             " (ingress.accept / ingress.dispatch / farm.serve)",
    )
    chaos.add_argument(
        "--recovery-timeout", type=float, default=30.0,
        help="seconds to wait for a killed shard to come back healthy",
    )
    chaos.add_argument("--output", default=None, help="also write JSON here")
    chaos.set_defaults(func=_cmd_chaos)

    benchi = sub.add_parser(
        "bench-ingress",
        help="socket ingress vs. direct in-process farm (JSON output)",
    )
    benchi.add_argument("-n", "--nodes", type=int, default=256)
    benchi.add_argument("-k", type=int, default=4, help="tree arity")
    benchi.add_argument("-m", "--requests", type=int, default=4_000)
    benchi.add_argument("--keys", type=int, default=8, help="session keys")
    benchi.add_argument("--shards", type=int, default=2)
    benchi.add_argument("--zipf-alpha", type=float, default=1.2)
    benchi.add_argument("--seed", type=int, default=0)
    benchi.add_argument(
        "--batch-window", type=float, default=0.002,
        help="micro-batch window for the batched socket leg, seconds",
    )
    benchi.add_argument(
        "--batch-max", type=int, default=256,
        help="max requests per coalesced dispatch (batched leg)",
    )
    benchi.add_argument(
        "--concurrency", type=int, default=256,
        help="client requests in flight at once (micro-batching needs"
             " many in flight to coalesce)",
    )
    benchi.add_argument("--output", default=None, help="also write JSON here")
    benchi.set_defaults(func=_cmd_bench_ingress)

    benchst = sub.add_parser(
        "bench-store",
        help="results-store ingest/lookup benchmark, JSONL vs SQLite (JSON)",
    )
    benchst.add_argument(
        "--cells", type=int, default=50_000,
        help="synthetic results to ingest per backend",
    )
    benchst.add_argument(
        "--lookups", type=int, default=5,
        help="spec-hash lookups to time per backend (each JSONL lookup"
             " scans the whole file — keep this small)",
    )
    benchst.add_argument(
        "--batch", type=int, default=1000,
        help="rows per SQLite ingest transaction",
    )
    benchst.add_argument("--seed", type=int, default=0)
    benchst.add_argument("--output", default=None, help="also write JSON here")
    benchst.set_defaults(func=_cmd_bench_store)

    benchr = sub.add_parser(
        "bench-report",
        help="markdown perf-trajectory table over recorded BENCH_*.json",
    )
    benchr.add_argument(
        "--results-dir", default=None,
        help="directory of BENCH_*.json records (default benchmarks/results)",
    )
    benchr.add_argument("-o", "--output", default=None, help="write here")
    benchr.set_defaults(func=_cmd_bench_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
