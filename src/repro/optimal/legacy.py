"""The pre-subsystem float64 forward pass, kept as a regression oracle.

This is the optimal-tree DP exactly as it shipped before the DP subsystem
(:mod:`repro.optimal.context` + the int64 forward pass in
:mod:`repro.optimal.general`): float64 tables, one NumPy dispatch per
``(length, s)`` pair, no input sharing across arities.  It is retained for
two jobs:

* **Equivalence oracle** — fast enough at medium ``n`` (where the pure
  Python transcription in :mod:`repro.optimal.reference` is not) to pin
  the rewritten forward pass against the historical one in tests.
* **Benchmark baseline** — ``python -m repro bench-optimal`` times this
  implementation against the subsystem to record the before/after
  trajectory in ``benchmarks/results/BENCH_optimal_dp.json``.

Do not use it for new work: it drifts from exact integers once costs pass
2^53 and recomputes the boundary-crossing matrix per call.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import OptimizationError
from repro.optimal.wmatrix import boundary_crossing_matrix
from repro.workloads.demand import DemandMatrix

__all__ = ["legacy_forward", "legacy_optimal_cost_table"]


def _dense_demand(demand) -> np.ndarray:
    if isinstance(demand, DemandMatrix):
        return demand.dense()
    d = np.asarray(demand)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise OptimizationError(f"demand must be square, got shape {d.shape}")
    return d


def legacy_forward(dense: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The historical float64 DP forward pass; returns ``(B, W)``."""
    n = dense.shape[0]
    if k < 2:
        raise OptimizationError(f"arity k must be >= 2, got {k}")
    w = boundary_crossing_matrix(dense).astype(np.float64)
    inf = np.inf
    b = np.full((k + 1, n + 2, n + 1), inf)
    b[1:, :, 0] = 0.0
    t_table = b[1]  # alias: single-tree costs
    a0, a1 = b[2].strides  # strides of one (n+2, n+1) slice
    for length in range(1, n + 1):
        m = n - length + 1
        best = np.full(m, inf)
        for s in range(length):
            left = b[1:k, 0:m, s] if k > 2 else b[1:2, 0:m, s]
            right = b[k - 1 : 0 : -1, s + 1 : s + 1 + m, length - 1 - s]
            cand = (left + right).min(axis=0)
            np.minimum(best, cand, out=best)
        b[1, 0:m, length] = best + w[0:m, length]
        if length >= 2:
            tview = as_strided(
                t_table[:, 1:],
                shape=(length - 1, m),
                strides=(t_table.strides[1], t_table.strides[0]),
            )
            for t in range(2, k + 1):
                prev = b[t - 1]
                bview = as_strided(
                    prev[1:, length - 1 :],
                    shape=(length - 1, m),
                    strides=(a0 - a1, a0),
                )
                cand = (tview + bview).min(axis=0)
                b[t, 0:m, length] = np.minimum(b[t - 1, 0:m, length], cand)
        else:
            for t in range(2, k + 1):
                b[t, 0:m, length] = b[t - 1, 0:m, length]
    return b, w


def legacy_optimal_cost_table(demand, k: int) -> float:
    """The historical cost-only entry point (float64, no sharing)."""
    dense = _dense_demand(demand)
    b, _ = legacy_forward(dense, k)
    return float(b[1, 0, dense.shape[0]])
