"""The boundary-crossing matrix ``W`` of the optimal-tree DP (Claim 16).

For a demand matrix ``D`` and the identifier segment starting at 0-based
position ``i`` with length ``L``, ``W[i, L]`` counts the requests with
exactly one endpoint inside the segment — the potential of the edge from the
segment's subtree root to its parent.  The paper computes ``W`` in O(n³)
with prefix functions; 2-D prefix sums bring it to O(n²), which keeps the
whole DP's constant small.
"""

from __future__ import annotations

import numpy as np

__all__ = ["boundary_crossing_matrix", "uniform_boundary_crossing"]


def boundary_crossing_matrix(demand: np.ndarray) -> np.ndarray:
    """``W[i, L]`` for all segment starts ``i`` and lengths ``L``.

    ``demand`` is the dense 0-indexed ``n × n`` count matrix.  The returned
    array has shape ``(n + 1, n + 1)``; entries with ``i + L > n`` are 0 and
    unused by the DP.

    Derivation: with ``R[i, L]`` the total traffic incident to segment nodes
    (both directions) and ``S[i, L]`` the traffic internal to the segment,
    ``W = R - 2 S``; both terms come from prefix sums.
    """
    d = np.asarray(demand, dtype=np.int64)
    n = d.shape[0]
    if d.shape != (n, n):
        raise ValueError(f"demand must be square, got {d.shape}")
    incident = d.sum(axis=0) + d.sum(axis=1)  # per-node total traffic
    inc_prefix = np.concatenate(([0], np.cumsum(incident)))
    # 2-D prefix sums with a zero border: P[a, b] = sum(d[:a, :b]).
    p = np.zeros((n + 1, n + 1), dtype=np.int64)
    p[1:, 1:] = d.cumsum(axis=0).cumsum(axis=1)

    w = np.zeros((n + 1, n + 1), dtype=np.int64)
    for length in range(1, n + 1):
        starts = np.arange(0, n - length + 1)
        ends = starts + length
        r = inc_prefix[ends] - inc_prefix[starts]
        s = (
            p[ends, ends]
            - p[starts, ends]
            - p[ends, starts]
            + p[starts, starts]
        )
        w[starts, length] = r - 2 * s
    return w


def uniform_boundary_crossing(n: int) -> np.ndarray:
    """``W[L] = L (n - L)`` for the uniform workload (Lemma 18).

    The paper's finite uniform workload requests every *ordered* pair once,
    so crossing traffic doubles: ``W[L] = 2 L (n - L)``... except that the
    factor 2 scales every tree's cost identically and the paper states the
    matrix as upper-triangular ones (each unordered pair once).  We follow
    the paper: one request per unordered pair.
    """
    lengths = np.arange(n + 1, dtype=np.int64)
    return lengths * (n - lengths)
