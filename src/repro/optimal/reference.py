"""Slow reference implementations used to pin the vectorized DP.

Two independent oracles:

* :func:`reference_optimal_cost` — a direct, memoized transcription of the
  paper's recurrences (Appendix A.1) in pure Python.  Same asymptotics as
  the NumPy version but shares no code with it.
* :func:`brute_force_optimal_cost` — exhaustive enumeration of every
  routing-based k-ary search tree on a segment, scoring each by its true
  demand-weighted total distance.  Exponential; for n ≤ ~7 only.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import Iterator

import numpy as np

from repro.errors import OptimizationError

__all__ = ["reference_optimal_cost", "brute_force_optimal_cost", "enumerate_trees"]


def reference_optimal_cost(demand: np.ndarray, k: int) -> int:
    """The paper's DP, transcribed naively (0-indexed segments ``[i, j]``)."""
    d = np.asarray(demand, dtype=np.int64)
    n = d.shape[0]
    incident = d.sum(axis=0) + d.sum(axis=1)

    @lru_cache(maxsize=None)
    def w(i: int, j: int) -> int:
        """Requests with exactly one endpoint in ``[i, j]``."""
        inside = range(i, j + 1)
        internal = int(d[i : j + 1, i : j + 1].sum())
        return int(sum(incident[u] for u in inside)) - 2 * internal

    # Exactness note: finite values stay Python ints end to end (min() of
    # ints returns an int; float("inf") only ever propagates as itself),
    # so arbitrarily large demands never round through float64.
    @lru_cache(maxsize=None)
    def single(i: int, j: int) -> "int | float":
        """Cost of one routing-based tree on ``[i, j]`` (the paper's t=1)."""
        if i > j:
            return 0
        best: "int | float" = float("inf")
        for r in range(i, j + 1):
            for dl in range(1, k):
                cost = forest(i, r - 1, dl) + forest(r + 1, j, k - dl)
                best = min(best, cost)
        return best + w(i, j)

    @lru_cache(maxsize=None)
    def forest(i: int, j: int, t: int) -> "int | float":
        """Cost of at most ``t`` trees covering ``[i, j]``."""
        if i > j:
            return 0
        if t <= 0:
            return float("inf")
        best = single(i, j)
        for l in range(i, j):
            best = min(best, single(i, l) + forest(l + 1, j, t - 1))
        return best

    return int(single(0, n - 1))


# ----------------------------------------------------------------------
# exhaustive enumeration
# ----------------------------------------------------------------------
def enumerate_trees(i: int, j: int, k: int) -> Iterator[dict[int, int]]:
    """Yield every routing-based k-ary search tree on segment ``[i, j]``.

    Trees are emitted as child→parent maps over 0-based identifiers; the
    segment root has no entry.  Duplicate shapes may be emitted (different
    ``dl`` splits of the same child set); harmless for cost minimization.
    """
    if i > j:
        yield {}
        return
    seen: set[tuple[tuple[int, int], ...]] = set()
    for r in range(i, j + 1):
        for dl in range(1, k):
            for left in _enumerate_forests(i, r - 1, dl, k):
                for right in _enumerate_forests(r + 1, j, k - dl, k):
                    tree: dict[int, int] = {}
                    for part_root, part_map in left + right:
                        tree.update(part_map)
                        tree[part_root] = r
                    key = tuple(sorted(tree.items()))
                    if key not in seen:
                        seen.add(key)
                        yield tree


def _enumerate_forests(
    i: int, j: int, t: int, k: int
) -> list[list[tuple[int, dict[int, int]]]]:
    """All ways to cover ``[i, j]`` with at most ``t`` trees.

    Each forest is a list of ``(root, child→parent map)`` parts.
    """
    if i > j:
        return [[]]
    if t <= 0:
        return []
    out: list[list[tuple[int, dict[int, int]]]] = []
    emitted: set[tuple] = set()
    for split in range(i, j + 1):
        for rest in _enumerate_forests(split + 1, j, t - 1, k):
            for first_root, first_map in _enumerate_single(i, split, k):
                forest = [(first_root, first_map)] + rest
                key = tuple(sorted((c, p) for _, m in forest for c, p in m.items())) + tuple(
                    sorted(r for r, _ in forest)
                )
                if key not in emitted:
                    emitted.add(key)
                    out.append(forest)
    return out


def _enumerate_single(i: int, j: int, k: int) -> list[tuple[int, dict[int, int]]]:
    """All single routing-based trees on ``[i, j]`` as (root, map) pairs."""
    out = []
    seen = set()
    for tree in enumerate_trees(i, j, k):
        root = next(v for v in range(i, j + 1) if v not in tree)
        key = tuple(sorted(tree.items()))
        if (root, key) not in seen:
            seen.add((root, key))
            out.append((root, tree))
    return out


def _tree_cost(parent_map: dict[int, int], n: int, demand: np.ndarray) -> int:
    """Demand-weighted total distance of a parent-map tree (BFS distances)."""
    children: dict[int, list[int]] = {v: [] for v in range(n)}
    for c, p in parent_map.items():
        children[p].append(c)
    root = next(v for v in range(n) if v not in parent_map)
    depth = {root: 0}
    order = [root]
    for v in order:
        for c in children[v]:
            depth[c] = depth[v] + 1
            order.append(c)
    # pairwise distances via LCA by parent walking (n is tiny here)
    total = 0
    us, vs = np.nonzero(demand)
    for u, v in zip(us.tolist(), vs.tolist()):
        a, b = u, v
        da, db = depth[a], depth[b]
        while da > db:
            a = parent_map[a]
            da -= 1
        while db > da:
            b = parent_map[b]
            db -= 1
        while a != b:
            a = parent_map[a]
            b = parent_map[b]
            da -= 1
        total += int(demand[u, v]) * (depth[u] + depth[v] - 2 * da)
    return total


def brute_force_optimal_cost(demand: np.ndarray, k: int) -> int:
    """Exhaustive optimum over all routing-based k-ary search trees."""
    d = np.asarray(demand, dtype=np.int64)
    n = d.shape[0]
    if n > 8:
        raise OptimizationError("brute force is exponential; use n <= 8")
    best = None
    for tree in enumerate_trees(0, n - 1, k):
        cost = _tree_cost(tree, n, d)
        if best is None or cost < best:
            best = cost
    assert best is not None
    return best
