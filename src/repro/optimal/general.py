"""Theorem 2: the optimal static routing-based k-ary search tree network.

Dynamic programming over identifier segments, exactly as in Appendix A.1:

* ``B[t, i, L]`` — minimum cost of covering the segment of length ``L``
  starting at 0-based position ``i`` with **at most** ``t`` routing-based
  k-ary search trees (the paper's ``dp2``), where each tree's cost includes
  the crossing traffic ``W`` of its own segment (the potential of its
  root-to-parent edge).
* A single tree (``t = 1``) chooses a root ``r = i + s`` whose identifier
  joins the routing array, ``dl`` child trees on ``[i, r)`` and ``k - dl``
  on ``(r, i+L)`` — the routing-based constraint ``dl + dr <= k``.

The forward pass is pure NumPy; the two inner reductions walk *diagonal*
slices of ``B`` (entry ``[i+s, L-s]`` for fixed ``L``), which
``as_strided`` exposes as contiguous 2-D views, so the Python-call count is
O(n·k) while the arithmetic stays the paper's O(n³k).  Reconstruction
re-derives the argmins on the O(n) visited segments only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.core.keyspace import pad_values
from repro.core.node import KAryNode
from repro.core.tree import KAryTreeNetwork
from repro.errors import OptimizationError
from repro.optimal.wmatrix import boundary_crossing_matrix
from repro.workloads.demand import DemandMatrix

__all__ = ["OptimalTreeResult", "optimal_static_cost_table", "optimal_static_tree"]


@dataclass(frozen=True)
class OptimalTreeResult:
    """An optimal routing-based tree and its total distance."""

    tree: KAryTreeNetwork
    cost: int

    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def k(self) -> int:
        return self.tree.k


def _dense_demand(demand) -> np.ndarray:
    if isinstance(demand, DemandMatrix):
        return demand.dense()
    d = np.asarray(demand)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise OptimizationError(f"demand must be square, got shape {d.shape}")
    return d


def _forward(dense: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Run the DP forward pass; returns ``(B, W)``."""
    n = dense.shape[0]
    if k < 2:
        raise OptimizationError(f"arity k must be >= 2, got {k}")
    w = boundary_crossing_matrix(dense).astype(np.float64)
    inf = np.inf
    b = np.full((k + 1, n + 2, n + 1), inf)
    b[1:, :, 0] = 0.0
    t_table = b[1]  # alias: single-tree costs
    a0, a1 = b[2].strides  # strides of one (n+2, n+1) slice
    for length in range(1, n + 1):
        m = n - length + 1
        best = np.full(m, inf)
        for s in range(length):
            left = b[1:k, 0:m, s] if k > 2 else b[1:2, 0:m, s]
            right = b[k - 1 : 0 : -1, s + 1 : s + 1 + m, length - 1 - s]
            cand = (left + right).min(axis=0)
            np.minimum(best, cand, out=best)
        b[1, 0:m, length] = best + w[0:m, length]
        if length >= 2:
            tview = as_strided(
                t_table[:, 1:],
                shape=(length - 1, m),
                strides=(t_table.strides[1], t_table.strides[0]),
            )
            for t in range(2, k + 1):
                prev = b[t - 1]
                bview = as_strided(
                    prev[1:, length - 1 :],
                    shape=(length - 1, m),
                    strides=(a0 - a1, a0),
                )
                cand = (tview + bview).min(axis=0)
                b[t, 0:m, length] = np.minimum(b[t - 1, 0:m, length], cand)
        else:
            for t in range(2, k + 1):
                b[t, 0:m, length] = b[t - 1, 0:m, length]
    return b, w


def optimal_static_cost_table(demand, k: int) -> float:
    """Only the optimal total distance (no tree reconstruction)."""
    dense = _dense_demand(demand)
    b, _ = _forward(dense, k)
    return float(b[1, 0, dense.shape[0]])


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _single_tree_choice(
    b: np.ndarray, w: np.ndarray, i: int, length: int, k: int
) -> tuple[int, int]:
    """Recover ``(s, dl)`` attaining ``B[1, i, L]``."""
    best_val = np.inf
    best = (0, 1)
    for s in range(length):
        rest = length - 1 - s
        for dl in range(1, k):
            val = b[dl, i, s] + b[k - dl, i + s + 1, rest]
            if val < best_val:
                best_val = val
                best = (s, dl)
    target = b[1, i, length] - w[i, length]
    if not np.isclose(best_val, target, rtol=1e-12, atol=1e-6):
        raise OptimizationError(
            f"reconstruction mismatch at segment ({i}, {length}):"
            f" {best_val} != {target}"
        )
    return best


def _partition(
    b: np.ndarray, i: int, length: int, t: int
) -> list[tuple[int, int]]:
    """Split segment ``(i, L)`` into single-tree parts attaining ``B[t, i, L]``."""
    parts: list[tuple[int, int]] = []
    while length > 0:
        if t <= 1:
            parts.append((i, length))
            return parts
        if b[t, i, length] >= b[t - 1, i, length]:
            t -= 1
            continue
        t_table = b[1]
        best_val = np.inf
        best_s = length
        for s in range(1, length):
            val = t_table[i, s] + b[t - 1, i + s, length - s]
            if val < best_val:
                best_val = val
                best_s = s
        if best_s == length:  # pragma: no cover - defensive
            raise OptimizationError("partition backtrack failed")
        parts.append((i, best_s))
        i += best_s
        length -= best_s
        t -= 1
    return parts


def _build_tree(
    b: np.ndarray, w: np.ndarray, i: int, length: int, k: int
) -> KAryNode:
    """Materialize the optimal single tree on segment ``(i, L)``.

    Routing arrays are routing-based: the root's identifier is itself a
    separator, flanked by half-integer boundaries between sibling parts and
    private dyadic pads (see :mod:`repro.core.keyspace`).
    """
    s, dl = _single_tree_choice(b, w, i, length, k)
    root_id = i + s + 1  # identifiers are 1-based
    left_parts = _partition(b, i, s, dl)
    right_parts = _partition(b, i + s + 1, length - 1 - s, k - dl)
    node = KAryNode(root_id, k)

    separators: list[float] = [float(root_id)]
    for parts in (left_parts, right_parts):
        for (pi, plen) in parts[1:]:
            separators.append(pi + 0.5)  # boundary below part start (1-based: pi+1 - 0.5)
    pad_needed = (k - 1) - len(separators)
    separators.extend(pad_values(root_id, pad_needed))
    separators.sort()
    node.routing = separators

    from bisect import bisect_left

    for (pi, plen) in left_parts + right_parts:
        child = _build_tree(b, w, pi, plen, k)
        slot = bisect_left(separators, pi + 1)
        node.attach_child(child, slot)
    node.recompute_range()
    return node


def optimal_static_tree(demand, k: int) -> OptimalTreeResult:
    """Theorem 2: optimal static routing-based k-ary search tree network.

    ``demand`` is a :class:`DemandMatrix` or a dense 0-indexed count array.
    Runs in O(n³k) arithmetic / O(n k) NumPy dispatches and O(n²k) memory.
    """
    dense = _dense_demand(demand)
    n = dense.shape[0]
    if n < 1:
        raise OptimizationError("demand must cover at least one node")
    b, w = _forward(dense, k)
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 100))
    try:
        root = _build_tree(b, w, 0, n, k)
    finally:
        sys.setrecursionlimit(old_limit)
    tree = KAryTreeNetwork(k, root, validate=True, routing_based=True)
    return OptimalTreeResult(tree=tree, cost=int(round(float(b[1, 0, n]))))
