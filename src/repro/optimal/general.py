"""Theorem 2: the optimal static routing-based k-ary search tree network.

Dynamic programming over identifier segments, exactly as in Appendix A.1:

* ``B[t, i, L]`` — minimum cost of covering the segment of length ``L``
  starting at 0-based position ``i`` with **at most** ``t`` routing-based
  k-ary search trees (the paper's ``dp2``), where each tree's cost includes
  the crossing traffic ``W`` of its own segment (the potential of its
  root-to-parent edge).
* A single tree (``t = 1``) chooses a root ``r = i + s`` whose identifier
  joins the routing array, ``dl`` child trees on ``[i, r)`` and ``k - dl``
  on ``(r, i+L)`` — the routing-based constraint ``dl + dr <= k``.

The forward pass is exact int64 NumPy (a ``2^61`` sentinel plays infinity;
:mod:`repro.optimal.context` rejects demands whose costs could reach it).
For each length the two inner reductions run over *diagonal* slices of
``B`` (entry ``[i+s, L-s]`` for fixed ``L``) which ``as_strided`` exposes
as 2-D views, reduced one arity-split at a time into preallocated
buffers — O(n·k) NumPy dispatches while the arithmetic stays the paper's
O(n³k).  Demand-derived inputs (dense demand, the boundary-crossing
matrix, the short single-tree layers that are arity-independent) live in
a :class:`~repro.optimal.context.DemandContext` shared across every arity
of a sweep.  Reconstruction re-derives the argmins on the O(n) visited
segments only, with exact integer equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.core.keyspace import pad_values
from repro.core.node import KAryNode
from repro.core.tree import KAryTreeNetwork
from repro.errors import OptimizationError
from repro.optimal.context import INT_INF, DemandContext, demand_context

__all__ = ["OptimalTreeResult", "optimal_static_cost_table", "optimal_static_tree"]


@dataclass(frozen=True)
class OptimalTreeResult:
    """An optimal routing-based tree and its total distance."""

    tree: KAryTreeNetwork
    cost: int

    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def k(self) -> int:
        return self.tree.k


def _resolve_context(demand, context: Optional[DemandContext]) -> DemandContext:
    """The context to run on; guards explicit contexts against misuse.

    An explicit ``context`` must have been built from this ``demand`` —
    the tables inside it fully determine the answer.  A full content
    comparison would defeat the sharing, so the guard is the cheap
    invariant: matching dimension.
    """
    if context is None:
        return demand_context(demand)
    from repro.workloads.demand import DemandMatrix

    n = (
        demand.n
        if isinstance(demand, DemandMatrix)
        else np.asarray(demand).shape[0]
    )
    if context.n != n:
        raise OptimizationError(
            f"context was built for n={context.n} but the demand covers "
            f"n={n} nodes; pass the context built from this demand"
        )
    return context


def _forward(ctx: DemandContext, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Run the DP forward pass on a context; returns ``(B, W)``."""
    if k < 2:
        raise OptimizationError(f"arity k must be >= 2, got {k}")
    n = ctx.n
    w = ctx.w
    b = np.full((k + 1, n + 2, n + 1), INT_INF, dtype=np.int64)
    b[1:, :, 0] = 0
    t_table = b[1]  # alias: single-tree costs
    a0, a1 = b[2].strides  # strides of one (n+2, n+1) slice
    reuse_len, t1_prefix = ctx.reuse_for(k)
    # Preallocated scratch: the running minimum over roots and the
    # diagonal-sum buffer (reused by both inner reductions every length).
    acc = np.empty(n, dtype=np.int64)
    sbuf = np.empty((n, n + 1), dtype=np.int64)
    for length in range(1, n + 1):
        m = n - length + 1
        if length <= reuse_len and t1_prefix is not None:
            # Arity-independent short segments: every routing-based tree
            # on `length` identifiers splits at most `length - 1` ways at
            # any node, so B[1, :, length] matches the prefix recorded by
            # a previous run at arity >= length - 1.
            b[1, 0:m, length] = t1_prefix[0:m, length]
        else:
            best = acc[:m]
            best.fill(INT_INF)
            out = sbuf[:length, :m]
            for d in range(k - 1):  # dl = d + 1 left trees, k - dl right
                # left[s, j] = B[dl, i=j, s]  (left forest on [i, i+s))
                left = b[1 + d, 0:m, 0:length].T
                # right[s, j] = B[k-dl, i=j+s+1, length-1-s] — a diagonal
                # of the (i, L) plane, exposed as a contiguous 2-D view.
                slab = b[k - 1 - d]
                right = as_strided(
                    slab[1:, length - 1 :],
                    shape=(length, m),
                    strides=(a0 - a1, a0),
                )
                np.add(left, right, out=out)
                np.minimum(best, out.min(axis=0), out=best)
            np.add(best, w[0:m, length], out=b[1, 0:m, length])
        if length >= 2:
            tview = as_strided(
                t_table[:, 1:],
                shape=(length - 1, m),
                strides=(t_table.strides[1], t_table.strides[0]),
            )
            fout = sbuf[: length - 1, :m]
            for t in range(2, k + 1):
                prev = b[t - 1]
                bview = as_strided(
                    prev[1:, length - 1 :],
                    shape=(length - 1, m),
                    strides=(a0 - a1, a0),
                )
                np.add(tview, bview, out=fout)
                np.minimum(
                    b[t - 1, 0:m, length], fout.min(axis=0), out=b[t, 0:m, length]
                )
        else:
            for t in range(2, k + 1):
                b[t, 0:m, length] = b[t - 1, 0:m, length]
    ctx.offer(k, t_table)
    return b, w


def optimal_static_cost_table(
    demand, k: int, *, context: Optional[DemandContext] = None
) -> int:
    """Only the optimal total distance (no tree reconstruction).

    ``context`` pins an explicit :class:`DemandContext` **built from this
    demand** (an arity sweep over one demand shares inputs through it);
    by default the per-process memoized context for this demand is used,
    so repeated calls across arities share automatically.
    """
    ctx = _resolve_context(demand, context)
    b, _ = _forward(ctx, k)
    return int(b[1, 0, ctx.n])


# ----------------------------------------------------------------------
# reconstruction
# ----------------------------------------------------------------------
def _single_tree_choice(
    b: np.ndarray, w: np.ndarray, i: int, length: int, k: int
) -> tuple[int, int]:
    """Recover ``(s, dl)`` attaining ``B[1, i, L]``."""
    best_val = int(INT_INF)
    best = (0, 1)
    for s in range(length):
        rest = length - 1 - s
        for dl in range(1, k):
            val = int(b[dl, i, s]) + int(b[k - dl, i + s + 1, rest])
            if val < best_val:
                best_val = val
                best = (s, dl)
    target = int(b[1, i, length]) - int(w[i, length])
    if best_val != target:
        raise OptimizationError(
            f"reconstruction mismatch at segment ({i}, {length}):"
            f" {best_val} != {target}"
        )
    return best


def _partition(
    b: np.ndarray, i: int, length: int, t: int
) -> list[tuple[int, int]]:
    """Split segment ``(i, L)`` into single-tree parts attaining ``B[t, i, L]``."""
    parts: list[tuple[int, int]] = []
    while length > 0:
        if t <= 1:
            parts.append((i, length))
            return parts
        if b[t, i, length] >= b[t - 1, i, length]:
            t -= 1
            continue
        t_table = b[1]
        best_val = int(INT_INF)
        best_s = length
        for s in range(1, length):
            val = int(t_table[i, s]) + int(b[t - 1, i + s, length - s])
            if val < best_val:
                best_val = val
                best_s = s
        if best_s == length:  # pragma: no cover - defensive
            raise OptimizationError("partition backtrack failed")
        parts.append((i, best_s))
        i += best_s
        length -= best_s
        t -= 1
    return parts


def _build_tree(
    b: np.ndarray, w: np.ndarray, i: int, length: int, k: int
) -> KAryNode:
    """Materialize the optimal single tree on segment ``(i, L)``.

    Routing arrays are routing-based: the root's identifier is itself a
    separator, flanked by half-integer boundaries between sibling parts and
    private dyadic pads (see :mod:`repro.core.keyspace`).
    """
    s, dl = _single_tree_choice(b, w, i, length, k)
    root_id = i + s + 1  # identifiers are 1-based
    left_parts = _partition(b, i, s, dl)
    right_parts = _partition(b, i + s + 1, length - 1 - s, k - dl)
    node = KAryNode(root_id, k)

    separators: list[float] = [float(root_id)]
    for parts in (left_parts, right_parts):
        for (pi, plen) in parts[1:]:
            separators.append(pi + 0.5)  # boundary below part start (1-based: pi+1 - 0.5)
    pad_needed = (k - 1) - len(separators)
    separators.extend(pad_values(root_id, pad_needed))
    separators.sort()
    node.routing = separators

    from bisect import bisect_left

    for (pi, plen) in left_parts + right_parts:
        child = _build_tree(b, w, pi, plen, k)
        slot = bisect_left(separators, pi + 1)
        node.attach_child(child, slot)
    node.recompute_range()
    return node


def optimal_static_tree(
    demand, k: int, *, context: Optional[DemandContext] = None
) -> OptimalTreeResult:
    """Theorem 2: optimal static routing-based k-ary search tree network.

    ``demand`` is a :class:`DemandMatrix` or a dense 0-indexed count array.
    Runs in O(n³k) arithmetic / O(n k) NumPy dispatches and O(n²k) memory;
    ``context`` (default: the process-memoized one for this demand; an
    explicit one must be built from this demand) shares the
    demand-derived inputs across the arities of a sweep.
    """
    ctx = _resolve_context(demand, context)
    n = ctx.n
    if n < 1:
        raise OptimizationError("demand must cover at least one node")
    b, w = _forward(ctx, k)
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 100))
    try:
        root = _build_tree(b, w, 0, n, k)
    finally:
        sys.setrecursionlimit(old_limit)
    tree = KAryTreeNetwork(k, root, validate=True, routing_based=True)
    return OptimalTreeResult(tree=tree, cost=int(b[1, 0, n]))
