"""Shared demand-derived inputs of the optimal-tree DP (the DP subsystem).

A paper table row runs the Theorem 2 DP once per arity on the *same*
demand: the dense demand matrix, the boundary-crossing matrix ``W``
(Claim 16) and — where the recurrence permits — the short single-tree
layers are identical across those runs.  :class:`DemandContext` bundles
them so they are computed once per demand and shared across every arity,
and :func:`demand_context` memoizes contexts per process keyed on the
demand's content, so independent scenario cells over the same workload
share automatically.

Cross-arity reuse of the single-tree layer rests on a small observation:
a routing-based tree on a segment of ``L`` identifiers has at most
``L - 1`` child parts at any node, and the recurrence reserves one unit
of arity budget per side even when that side is empty — so for every
arity ``k >= L`` the feasible tree set, and hence ``B[1, i, L]``, is the
same.  A completed run at arity ``k'`` therefore seeds the ``t = 1``
rows for lengths ``L <= min(k', k)`` of any later run at arity ``k`` on
the same demand (see :meth:`DemandContext.reuse_for`).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

from repro.errors import OptimizationError
from repro.optimal.wmatrix import boundary_crossing_matrix
from repro.workloads.demand import DemandMatrix

__all__ = [
    "DemandContext",
    "demand_context",
    "clear_context_cache",
    "context_cache_stats",
]

#: Sentinel "infinity" for the exact int64 DP tables.  Chosen so that the
#: sum of two sentinels (the largest sum the forward pass ever forms)
#: stays far below 2^63 and any finite cost stays far below one sentinel.
INT_INF = np.int64(1) << np.int64(61)

#: Finite DP values are bounded by 2 * n * total_demand (at most ``n``
#: disjoint part segments, each crossed by at most twice the total
#: traffic); demands whose bound reaches this threshold are rejected
#: rather than silently overflowing the exact int64 tables.
_EXACT_LIMIT = 1 << 60


def _as_dense_int64(demand) -> np.ndarray:
    """Validate a demand input and return it as a dense int64 array."""
    if isinstance(demand, DemandMatrix):
        d = demand.dense()
    else:
        d = np.asarray(demand)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise OptimizationError(f"demand must be square, got shape {d.shape}")
    if d.dtype.kind == "f":
        if not np.all(np.isfinite(d)) or np.any(d != np.floor(d)):
            raise OptimizationError(
                "demand must hold integral request counts; got non-integral "
                "float entries (the DP accumulates exact int64 costs)"
            )
        d = d.astype(np.int64)
    elif d.dtype != np.int64:
        d = d.astype(np.int64)
    if np.any(d < 0):
        raise OptimizationError("demand counts must be non-negative")
    return d


def _exact_total(dense: np.ndarray) -> int:
    """``dense.sum()`` without int64 wraparound.

    The magnitude guard must not be defeated by the very overflow it
    exists to reject: when entries are large enough that an int64
    accumulator could wrap (sum bound ``n² · max`` past 2^62), fall back
    to arbitrary-precision Python ints.
    """
    n = dense.shape[0]
    if n == 0:
        return 0
    max_entry = int(dense.max())
    if max_entry and max_entry > (1 << 62) // (n * n):
        return int(sum(int(v) for v in dense.ravel()))
    return int(dense.sum())


class DemandContext:
    """Everything the Theorem 2 forward pass derives from one demand.

    Holds the dense int64 demand, the boundary-crossing matrix ``W`` and a
    mutable cross-arity reuse slot: the widest single-tree (``t = 1``)
    layer prefix completed so far.  Build one per demand (directly or via
    the memoized :func:`demand_context`) and pass it to
    ``optimal_static_cost_table`` / ``optimal_static_tree`` for every
    arity in a sweep.
    """

    __slots__ = ("dense", "w", "total", "_t1_arity", "_t1_prefix")

    def __init__(self, dense: np.ndarray, w: np.ndarray) -> None:
        self.dense = dense
        self.w = w
        self.total = _exact_total(dense)
        n = dense.shape[0]
        if 2 * n * self.total >= _EXACT_LIMIT:
            raise OptimizationError(
                f"demand too large for the exact int64 DP: bound "
                f"2*{n}*{self.total} exceeds 2^60"
            )
        self._t1_arity = 0
        self._t1_prefix: Optional[np.ndarray] = None

    @classmethod
    def from_demand(cls, demand) -> "DemandContext":
        dense = _as_dense_int64(demand)
        return cls(dense, boundary_crossing_matrix(dense))

    @property
    def n(self) -> int:
        return self.dense.shape[0]

    # -- cross-arity single-tree reuse ---------------------------------
    def reuse_for(self, k: int) -> tuple[int, Optional[np.ndarray]]:
        """``(max_length, t1_prefix)`` reusable by a run at arity ``k``.

        Rows ``B[1, :, L]`` for ``1 <= L <= max_length`` may be copied
        from the prefix instead of re-reduced: a routing-based tree on
        ``L`` identifiers splits at most ``L - 1`` ways at any node, and
        the root recurrence reserves one arity unit per side even when a
        side is empty, so the single-tree optimum is arity-independent
        once both arities are ``>= L``.
        """
        if self._t1_prefix is None:
            return 0, None
        return min(self._t1_arity, k), self._t1_prefix

    def offer(self, k: int, t1_table: np.ndarray) -> None:
        """Record the ``t = 1`` layer of a completed run at arity ``k``.

        Only the columns a future run could reuse (lengths up to ``k``)
        are copied; wider arities replace narrower prefixes.
        """
        if k <= self._t1_arity:
            return
        cols = min(k + 1, t1_table.shape[1])
        self._t1_arity = k
        self._t1_prefix = t1_table[:, :cols].copy()


# ----------------------------------------------------------------------
# per-process context memoization
# ----------------------------------------------------------------------
#: content-fingerprint -> context.  A table row's up-to-9 optimal-tree
#: cells all derive from one demand; without this memo each cell rebuilds
#: W and loses the cross-arity t=1 prefix.
_CONTEXT_CACHE: dict[str, DemandContext] = {}
#: Contexts are O(n²) ints apiece; a reproduction touches a handful of
#: distinct demands per process.
_CONTEXT_CACHE_MAX = 4
_context_hits = 0
_context_misses = 0


def _fingerprint(dense: np.ndarray) -> str:
    digest = hashlib.sha1(np.ascontiguousarray(dense).tobytes()).hexdigest()
    return f"{dense.shape[0]}:{digest}"


def demand_context(demand) -> DemandContext:
    """Memoized :meth:`DemandContext.from_demand` (per-process, bounded).

    Keyed on the demand's *content*, so every caller computing on the
    same matrix — successive arities of a table row, independent scenario
    cells, direct API use — shares one context and its reuse slot.
    """
    global _context_hits, _context_misses
    dense = _as_dense_int64(demand)
    key = _fingerprint(dense)
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is None:
        _context_misses += 1
        if len(_CONTEXT_CACHE) >= _CONTEXT_CACHE_MAX:
            _CONTEXT_CACHE.clear()
        ctx = DemandContext(dense, boundary_crossing_matrix(dense))
        _CONTEXT_CACHE[key] = ctx
    else:
        _context_hits += 1
    return ctx


def clear_context_cache() -> None:
    """Empty the per-process context memo and reset its counters."""
    global _context_hits, _context_misses
    _CONTEXT_CACHE.clear()
    _context_hits = 0
    _context_misses = 0


def context_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of this process's context memo (for tests)."""
    return {
        "hits": _context_hits,
        "misses": _context_misses,
        "size": len(_CONTEXT_CACHE),
    }
