"""Theorem 4: the optimal static k-ary search tree for the uniform workload.

Lemma 19 shows segment costs depend only on segment *length* under uniform
demand, so the general DP loses a dimension and runs in O(n²k).  Because the
uniform workload lets us fix the structure first and distribute identifiers
afterwards (Section 3.2), the root split collapses further: a single tree of
length ``L`` is a root plus **any** partition of the remaining ``L - 1``
nodes into at most ``k`` subtrees, i.e. ``T[L] = W[L] + B[k, L-1]`` — the
resulting tree need not be routing-based, exactly as the paper remarks.

Costs are in *unordered-pair* units (the paper's upper-triangular all-ones
demand): each pair ``{u, v}`` contributes ``d(u, v)`` once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.builders import Partition, build_from_partitioner
from repro.core.tree import KAryTreeNetwork
from repro.errors import OptimizationError
from repro.optimal.wmatrix import uniform_boundary_crossing

__all__ = [
    "UniformOptimalResult",
    "optimal_uniform_cost",
    "optimal_uniform_table",
    "optimal_uniform_tree",
]


@dataclass(frozen=True)
class UniformOptimalResult:
    """An optimal uniform-workload tree and its total distance.

    ``cost`` is Σ_{u<v} d(u, v) — unordered pairs, the paper's convention.
    """

    tree: KAryTreeNetwork
    cost: int


def optimal_uniform_table(n: int, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Forward DP: returns ``(T, B)``.

    ``T[L]`` is the optimal cost of a single tree on ``L`` nodes (including
    its boundary-crossing term), ``B[t, L]`` the optimal cost of a forest of
    at most ``t`` trees on ``L`` nodes.
    """
    if n < 1:
        raise OptimizationError("need n >= 1")
    if k < 2:
        raise OptimizationError(f"arity k must be >= 2, got {k}")
    w = uniform_boundary_crossing(n).astype(np.float64)
    t_cost = np.zeros(n + 1)
    b = np.full((k + 1, n + 1), np.inf)
    b[1:, 0] = 0.0
    for length in range(1, n + 1):
        t_cost[length] = w[length] + b[k, length - 1]
        b[1, length] = t_cost[length]
        for t in range(2, k + 1):
            cand = b[t - 1, length]
            if length >= 2:
                split = (t_cost[1:length] + b[t - 1, length - 1 : 0 : -1]).min()
                cand = min(cand, split)
            b[t, length] = cand
    return t_cost, b


def optimal_uniform_cost(n: int, k: int) -> int:
    """Optimal Σ_{u<v} d(u, v) over k-ary search trees on ``n`` nodes."""
    t_cost, _ = optimal_uniform_table(n, k)
    return int(round(float(t_cost[n])))


def optimal_uniform_tree(n: int, k: int) -> UniformOptimalResult:
    """Materialize an optimal tree by backtracking the O(n²k) DP."""
    t_cost, b = optimal_uniform_table(n, k)

    @lru_cache(maxsize=None)
    def forest_sizes(length: int, t: int) -> tuple[int, ...]:
        """Part sizes of an optimal ≤t-tree forest on ``length`` nodes."""
        if length == 0:
            return ()
        if t <= 1:
            return (length,)
        if b[t, length] >= b[t - 1, length]:
            return forest_sizes(length, t - 1)
        for s in range(1, length):
            if np.isclose(
                t_cost[s] + b[t - 1, length - s], b[t, length], rtol=1e-12, atol=1e-6
            ):
                return (s,) + forest_sizes(length - s, t - 1)
        raise OptimizationError(  # pragma: no cover - defensive
            f"uniform DP backtrack failed at length {length}, t {t}"
        )

    def partitioner(size: int) -> Partition:
        if size == 1:
            return 0, ()
        return 0, forest_sizes(size - 1, k)

    tree = build_from_partitioner(n, k, partitioner, validate=True)
    return UniformOptimalResult(tree=tree, cost=int(round(float(t_cost[n]))))
