"""optimal subpackage — the offline optimal-tree DP subsystem.

:mod:`repro.optimal.general` holds the Theorem 2 DP (exact int64 forward
pass + reconstruction); :mod:`repro.optimal.context` the demand-derived
inputs shared across the arities of a sweep; :mod:`repro.optimal.uniform`
the O(n²k) uniform-workload specialization; :mod:`repro.optimal.legacy`
the historical float64 forward pass kept as a regression/benchmark
baseline; :mod:`repro.optimal.reference` the slow independent oracles.
"""

from repro.optimal.context import (
    DemandContext,
    clear_context_cache,
    context_cache_stats,
    demand_context,
)
from repro.optimal.general import (
    OptimalTreeResult,
    optimal_static_cost_table,
    optimal_static_tree,
)

__all__ = [
    "DemandContext",
    "OptimalTreeResult",
    "clear_context_cache",
    "context_cache_stats",
    "demand_context",
    "optimal_static_cost_table",
    "optimal_static_tree",
]
