"""optimal subpackage — see module docstrings."""
