"""Ingress gateway benchmark: socket serving vs. the in-process farm.

Answers three questions about the network front door
(:mod:`repro.ingress`), on the house methodology (one fixed keyed Zipf
stream, exact cost-total cross-checks, wall-clock req/s):

* **what does the socket cost?** — the same stream through a direct
  in-process :class:`~repro.serving.farm.ServeFarm` versus through
  :class:`~repro.ingress.IngressServer` over a UNIX socket;
* **what does micro-batching buy?** — the socket path with the server's
  coalescing window enabled versus forced batch-size-1 dispatch (every
  request its own farm pipe round trip);
* **is it still exact?** — cost totals from every path must equal clean
  per-key :func:`~repro.net.session.open_session` runs
  (``totals_match``), since the gateway reorders *scheduling* but never
  per-key request order.

Latency percentiles are client-observed wall times recorded into the
constant-memory :class:`~repro.net.session.LatencyStats` histogram.
Run via ``repro bench-ingress`` or ``benchmarks/bench_ingress.py``;
records go to ``benchmarks/results/BENCH_ingress.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.errors import ExperimentError
from repro.ingress import AsyncIngressClient, IngressServer
from repro.net.session import open_session
from repro.serving.farm import ServeFarm
from repro.workloads.synthetic import zipf_trace

__all__ = ["ingress_benchmark", "write_ingress_record"]

_ALGORITHM = "kary-splaynet"


def _keyed_stream(trace, keys: int) -> list:
    """Deterministic keyed traffic: Zipf requests, keys round-robin."""
    sources = trace.sources.tolist()
    targets = trace.targets.tolist()
    return [
        (f"key-{i % keys}", sources[i], targets[i])
        for i in range(len(sources))
    ]


def _clean_totals(stream, n: int, k: int) -> tuple[int, int, int, int]:
    """Oracle totals: one fresh session per key, requests in order."""
    per_key: dict[str, list] = {}
    for key, u, v in stream:
        per_key.setdefault(key, []).append((u, v))
    totals = [0, 0, 0, 0]
    for key in per_key:
        session = open_session(_ALGORITHM, n=n, k=k)
        sources = [u for u, _ in per_key[key]]
        targets = [v for _, v in per_key[key]]
        batch = session.serve_stream(sources, targets)
        totals[0] += batch.m
        totals[1] += batch.total_routing
        totals[2] += batch.total_rotations
        totals[3] += batch.total_links_changed
    return tuple(totals)


def _direct_farm(stream, n: int, k: int, shards: int) -> dict:
    """The same stream through an in-process farm (no socket)."""
    with ServeFarm(_ALGORITHM, n=n, k=k, shards=shards) as farm:
        started = time.perf_counter()
        batch = farm.serve_stream(stream)
        elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "requests_per_second": len(stream) / elapsed if elapsed > 0 else 0.0,
        "totals": [
            batch.m,
            batch.total_routing,
            batch.total_rotations,
            batch.total_links_changed,
        ],
    }


async def _socket_run(
    stream,
    n: int,
    k: int,
    shards: int,
    *,
    batch_window: float,
    batch_max: int,
    concurrency: int,
) -> dict:
    farm = ServeFarm(_ALGORITHM, n=n, k=k, shards=shards)
    with tempfile.TemporaryDirectory(prefix="repro-ingress-") as tmp:
        server = IngressServer(
            farm,
            path=os.path.join(tmp, "ingress.sock"),
            batch_window=batch_window,
            batch_max=batch_max,
        )
        await server.start()
        try:
            async with AsyncIngressClient(path=server.address) as client:
                started = time.perf_counter()
                totals, latency = await client.serve_stream(
                    stream, concurrency=concurrency
                )
                elapsed = time.perf_counter() - started
        finally:
            await server.drain()
    return {
        "seconds": elapsed,
        "requests_per_second": len(stream) / elapsed if elapsed > 0 else 0.0,
        "latency_p50_seconds": latency.p50,
        "latency_p99_seconds": latency.p99,
        "batch_window_seconds": batch_window,
        "batch_max": batch_max,
        "totals": [
            totals.m,
            totals.total_routing,
            totals.total_rotations,
            totals.total_links_changed,
        ],
    }


def ingress_benchmark(
    n: int = 256,
    k: int = 4,
    *,
    m: int = 4_000,
    keys: int = 8,
    shards: int = 2,
    zipf_alpha: float = 1.2,
    seed: int = 0,
    batch_window: float = 0.002,
    batch_max: int = 256,
    concurrency: int = 256,
) -> dict:
    """Measure the socket path against the in-process farm.

    Returns a JSON-serializable record with a ``direct`` (in-process
    farm) section and two socket sections — ``socket_batched`` (the
    server's micro-batching window) and ``socket_unbatched``
    (``batch_max=1``: one farm round trip per request) — each with wall
    req/s and client-observed p50/p99, plus ``totals_match`` against
    clean per-key session runs and
    ``speedup_batched_over_unbatched``.
    """
    if m < 1:
        raise ExperimentError(f"m must be >= 1, got {m}")
    if keys < 1:
        raise ExperimentError(f"keys must be >= 1, got {keys}")
    if shards < 1:
        raise ExperimentError(f"shards must be >= 1, got {shards}")
    if concurrency < 1:
        raise ExperimentError(f"concurrency must be >= 1, got {concurrency}")
    trace = zipf_trace(n, m, zipf_alpha, seed)
    stream = _keyed_stream(trace, keys)

    clean = _clean_totals(stream, n, k)
    direct = _direct_farm(stream, n, k, shards)
    batched = asyncio.run(
        _socket_run(
            stream, n, k, shards,
            batch_window=batch_window,
            batch_max=batch_max,
            concurrency=concurrency,
        )
    )
    unbatched = asyncio.run(
        _socket_run(
            stream, n, k, shards,
            batch_window=0.0,
            batch_max=1,
            concurrency=concurrency,
        )
    )

    result = {
        "benchmark": "ingress",
        "config": {
            "n": n,
            "k": k,
            "m": m,
            "keys": keys,
            "shards": shards,
            "zipf_alpha": zipf_alpha,
            "seed": seed,
            "batch_window_seconds": batch_window,
            "batch_max": batch_max,
            "concurrency": concurrency,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "clean_totals": list(clean),
        "direct": direct,
        "socket_batched": batched,
        "socket_unbatched": unbatched,
        "totals_match": (
            list(clean)
            == direct["totals"]
            == batched["totals"]
            == unbatched["totals"]
        ),
    }
    if unbatched["requests_per_second"] > 0:
        result["speedup_batched_over_unbatched"] = (
            batched["requests_per_second"]
            / unbatched["requests_per_second"]
        )
    if direct["requests_per_second"] > 0:
        result["socket_overhead_vs_direct"] = (
            batched["requests_per_second"] / direct["requests_per_second"]
        )
    return result


def write_ingress_record(result: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out
