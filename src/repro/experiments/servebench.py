"""Serve-farm benchmark: resident scalar serving + shard-scaling farm.

Two measurements back the PR's perf claims, emitted as one
machine-readable record (``python -m repro bench-servefarm``,
``benchmarks/bench_servefarm.py``, recorded under
``benchmarks/results/BENCH_servefarm.json``):

* **Scalar modes** — single ``serve(u, v)`` calls on one network, per
  serving mode: ``resident`` (native kernel owning the tree state across
  calls), ``marshalled`` (native kernel with residency disabled — full
  list→C→list round trip per call, the pre-resident behaviour), and
  ``flat`` (the pure-Python array engine).  Methodology is PR 5's: modes
  interleaved across repeats, CPU time next to wall clock, best-of kept,
  CPU-based speedups, exact cost-total cross-check.
* **Farm scaling** — a :class:`~repro.serving.ServeFarm` under keyed Zipf
  traffic at increasing shard counts, recording p50/p99 per-request
  latency and aggregate requests/second two ways: observed wall clock,
  and *capacity* (requests over the busiest shard's summed worker-side
  serve time — the farm's critical path).  The recorded scaling factor
  uses capacity: it is what adding shards buys, and wall clock tracks it
  exactly when the host has a core per shard (PR 6 precedent: observed
  speedups are informational — CI boxes vary — while equality gates are
  hard, so the host's ``cpu_count`` is recorded alongside).  Per-key
  cost totals must agree exactly across shard counts (same keyed
  streams, shard-count-independent discipline).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import native_available
from repro.errors import ExperimentError
from repro.net.registry import build_network
from repro.workloads.synthetic import zipf_trace

__all__ = [
    "SCALAR_MODES",
    "default_scalar_modes",
    "servefarm_benchmark",
    "write_servefarm_record",
]

#: Scalar serving modes, fastest first.
SCALAR_MODES = ("resident", "marshalled", "flat")


def default_scalar_modes() -> tuple[str, ...]:
    """Every scalar mode measurable in this process.

    The two native modes need the compiled kernel; without it only the
    flat engine is measured (benchmarking the silent fallback as
    "native" would record a lie).
    """
    if native_available():
        return SCALAR_MODES
    return ("flat",)


def _scalar_network(mode: str, n: int, k: int, policy: str):
    engine = "flat" if mode == "flat" else "native"
    return build_network(
        "kary-splaynet", n=n, k=k, engine=engine, params={"policy": policy}
    )


def _measure_scalar(mode: str, n: int, k: int, policy: str, sources, targets):
    """One timed scalar-serve pass; returns (wall, cpu, totals)."""
    from repro.core.native import set_resident

    net = _scalar_network(mode, n, k, policy)
    serve = net.serve
    previous = set_resident(mode == "resident")
    try:
        routing = rotations = links = 0
        w0 = time.perf_counter()
        c0 = time.process_time()
        for u, v in zip(sources, targets):
            result = serve(u, v)
            routing += result.routing_cost
            rotations += result.rotations
            links += result.links_changed
        cpu = time.process_time() - c0
        wall = time.perf_counter() - w0
    finally:
        set_resident(previous)
    return wall, cpu, (routing, rotations, links)


def _keyed_stream(trace, keys: int) -> list:
    """Deterministic keyed traffic: Zipf requests, keys round-robin."""
    sources = trace.sources.tolist()
    targets = trace.targets.tolist()
    return [
        (f"key-{i % keys}", sources[i], targets[i])
        for i in range(len(sources))
    ]


def servefarm_benchmark(
    n: int = 1024,
    k: int = 4,
    *,
    scalar_m: int = 2_000,
    farm_m: int = 100_000,
    zipf_alpha: float = 1.2,
    seed: int = 0,
    policy: str = "center",
    repeats: int = 1,
    scalar_modes: Optional[Sequence[str]] = None,
    shard_counts: Sequence[int] = (1, 2),
    keys: int = 8,
    window: int = 8_192,
) -> dict:
    """Measure resident scalar serving and farm shard scaling.

    Returns a JSON-serializable dict with per-mode scalar throughput
    (wall and CPU, CPU-based speedups, exact totals cross-check) and
    per-shard-count farm throughput (aggregate wall req/s, p50/p99
    latency, exact totals cross-check).  ``scalar_modes`` defaults to
    :func:`default_scalar_modes`; requesting a native mode on a machine
    without the kernel is an error rather than a silently mislabeled
    flat measurement.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if keys < 1:
        raise ExperimentError(f"keys must be >= 1, got {keys}")
    if scalar_modes is None:
        scalar_modes = default_scalar_modes()
    scalar_modes = tuple(scalar_modes)
    for mode in scalar_modes:
        if mode not in SCALAR_MODES:
            raise ExperimentError(
                f"unknown scalar mode {mode!r}; choose from {SCALAR_MODES}"
            )
    if (
        any(mode != "flat" for mode in scalar_modes)
        and not native_available()
    ):
        from repro.core import _native

        raise ExperimentError(
            "native scalar modes requested but the compiled kernel is"
            f" unavailable ({_native.build_error()}); use"
            " scalar_modes=('flat',) or fix the toolchain"
        )
    shard_counts = tuple(shard_counts)
    if not shard_counts or any(s < 1 for s in shard_counts):
        raise ExperimentError(
            f"shard_counts must be positive, got {shard_counts!r}"
        )

    result: dict = {
        "benchmark": "servefarm",
        "config": {
            "n": n,
            "k": k,
            "scalar_m": scalar_m,
            "farm_m": farm_m,
            "trace": "zipf",
            "zipf_alpha": zipf_alpha,
            "seed": seed,
            "policy": policy,
            "repeats": repeats,
            "scalar_modes": list(scalar_modes),
            "shard_counts": list(shard_counts),
            "keys": keys,
            "window": window,
            "interleaved": True,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "native_available": native_available(),
        "scalar": {"modes": {}},
        "farm": {"shards": {}},
    }

    # -- scalar modes (interleaved repeats, best-of kept) ---------------
    if scalar_modes and scalar_m:
        trace = zipf_trace(n, scalar_m, zipf_alpha, seed)
        sources = trace.sources.tolist()
        targets = trace.targets.tolist()
        best_wall: dict[str, float] = {}
        best_cpu: dict[str, float] = {}
        totals: dict[str, tuple[int, int, int]] = {}
        for _ in range(repeats):
            for mode in scalar_modes:
                wall, cpu, mode_totals = _measure_scalar(
                    mode, n, k, policy, sources, targets
                )
                if mode not in best_wall or wall < best_wall[mode]:
                    best_wall[mode] = wall
                if mode not in best_cpu or cpu < best_cpu[mode]:
                    best_cpu[mode] = cpu
                totals[mode] = mode_totals
        for mode in scalar_modes:
            wall, cpu = best_wall[mode], best_cpu[mode]
            routing, rotations, links = totals[mode]
            result["scalar"]["modes"][mode] = {
                "seconds": wall,
                "cpu_seconds": cpu,
                "requests_per_second": scalar_m / wall,
                "requests_per_second_cpu": (
                    scalar_m / cpu if cpu > 0 else float("inf")
                ),
                "total_routing": routing,
                "total_rotations": rotations,
                "total_links_changed": links,
            }
        if len(totals) > 1:
            reference = next(iter(totals.values()))
            result["scalar"]["totals_match"] = all(
                t == reference for t in totals.values()
            )
        for fast, slow in (
            ("resident", "marshalled"),
            ("resident", "flat"),
            ("flat", "marshalled"),
        ):
            if fast in best_cpu and slow in best_cpu and best_cpu[fast] > 0:
                result["scalar"][f"speedup_{fast}_over_{slow}"] = (
                    best_cpu[slow] / best_cpu[fast]
                )

    # -- farm scaling (best wall per shard count) -----------------------
    if shard_counts and farm_m:
        from repro.serving import ServeFarm

        farm_trace = zipf_trace(n, farm_m, zipf_alpha, seed + 1)
        stream = _keyed_stream(farm_trace, keys)
        farm_totals: dict[int, tuple[int, int, int]] = {}
        for shards in shard_counts:
            best: Optional[dict] = None
            for _ in range(repeats):
                with ServeFarm(
                    "kary-splaynet",
                    n=n,
                    k=k,
                    params={"policy": policy},
                    shards=shards,
                    window=window,
                ) as farm:
                    w0 = time.perf_counter()
                    batch = farm.serve_stream(stream)
                    wall = time.perf_counter() - w0
                    busy = farm.metrics.critical_path_seconds
                    if best is None or busy < best["busy_seconds_max"]:
                        best = {
                            "seconds": wall,
                            "requests_per_second": farm_m / wall,
                            "busy_seconds_max": busy,
                            "busy_seconds_per_shard": {
                                str(s): t
                                for s, t in sorted(
                                    farm.metrics.busy_seconds.items()
                                )
                            },
                            "capacity_requests_per_second": (
                                farm_m / busy if busy > 0 else float("inf")
                            ),
                            "latency_p50_seconds": farm.metrics.latency_p50,
                            "latency_p99_seconds": farm.metrics.latency_p99,
                            "windows": farm.metrics.windows,
                            "total_routing": batch.total_routing,
                            "total_rotations": batch.total_rotations,
                            "total_links_changed": batch.total_links_changed,
                        }
            farm_totals[shards] = (
                best["total_routing"],
                best["total_rotations"],
                best["total_links_changed"],
            )
            result["farm"]["shards"][str(shards)] = best
        if len(farm_totals) > 1:
            reference = next(iter(farm_totals.values()))
            result["farm"]["totals_match"] = all(
                t == reference for t in farm_totals.values()
            )
        base = min(shard_counts)
        base_entry = result["farm"]["shards"][str(base)]
        for shards in shard_counts:
            if shards == base:
                continue
            entry = result["farm"]["shards"][str(shards)]
            if base_entry["capacity_requests_per_second"] > 0:
                result["farm"][f"scaling_{shards}_over_{base}"] = (
                    entry["capacity_requests_per_second"]
                    / base_entry["capacity_requests_per_second"]
                )
            if base_entry["requests_per_second"] > 0:
                result["farm"][f"scaling_{shards}_over_{base}_wall"] = (
                    entry["requests_per_second"]
                    / base_entry["requests_per_second"]
                )
    return result


def write_servefarm_record(result: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out
