"""End-to-end experiment orchestration.

``run_all`` regenerates every table of the paper at the selected scale and
writes the rendered reports (plus a machine-readable summary) to an output
directory — the one-command reproduction entry point used by
``examples/reproduce_paper.py`` and the benchmark suite.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.experiments.presets import Scale, WORKLOADS, get_scale
from repro.experiments.report import (
    render_kary_table,
    render_remark10,
    render_table8,
)
from repro.experiments.tables import (
    TABLE_WORKLOAD,
    KAryTableResult,
    Remark10Result,
    Table8Result,
    run_kary_table,
    run_remark10,
    run_table8,
)
from repro.network.cost import ROUTING_ONLY, UNIT_ROTATIONS

__all__ = ["ReproductionReport", "run_all", "kary_table_summary", "table8_summary"]


def kary_table_summary(result: KAryTableResult) -> dict:
    """JSON-friendly summary of one of Tables 1-7."""
    return {
        "workload": result.workload,
        "n": result.n,
        "m": result.m,
        "base_cost": result.base_cost,
        "splaynet_ratio": {k: result.splaynet_ratio(k) for k in result.ks},
        "fulltree_ratio": {k: result.fulltree_ratio(k) for k in result.ks},
        "optimal_ratio": {k: result.optimal_ratio(k) for k in result.ks},
        "rotations": dict(result.rotations),
    }


def table8_summary(result: Table8Result) -> dict:
    """JSON-friendly summary of Table 8 under both cost conventions."""
    out = {}
    for model_name, model in (("routing", ROUTING_ONLY), ("unit_rotations", UNIT_ROTATIONS)):
        out[model_name] = {
            row.workload: {
                "average_cost": row.average_cost(model),
                "vs_splaynet": row.ratio_splaynet(model),
                "vs_full_binary": row.ratio_full(model),
                "vs_optimal_bst": row.ratio_optimal(model),
            }
            for row in result.rows
        }
    return out


@dataclass
class ReproductionReport:
    """Everything ``run_all`` produced."""

    scale: str
    kary_tables: dict[int, KAryTableResult] = field(default_factory=dict)
    table8: Optional[Table8Result] = None
    remark10: Optional[Remark10Result] = None
    elapsed_seconds: float = 0.0
    engine: Optional[str] = None

    def render(self) -> str:
        parts = [f"=== ksan reproduction (scale: {self.scale}) ==="]
        for number in sorted(self.kary_tables):
            parts.append(
                render_kary_table(
                    self.kary_tables[number], title=f"--- Table {number} ---"
                )
            )
        if self.table8 is not None:
            parts.append(render_table8(self.table8, model=ROUTING_ONLY,
                                       title="--- Table 8 (routing cost) ---"))
            parts.append(render_table8(self.table8, model=UNIT_ROTATIONS,
                                       title="--- Table 8 (routing + unit rotations) ---"))
        if self.remark10 is not None:
            parts.append("--- Remark 10 ---")
            parts.append(render_remark10(self.remark10))
        parts.append(f"(total wall time: {self.elapsed_seconds:.1f}s)")
        return "\n\n".join(parts)

    def summary(self) -> dict:
        return {
            "scale": self.scale,
            "engine": self.engine,
            "tables": {
                str(num): kary_table_summary(res)
                for num, res in self.kary_tables.items()
            },
            "table8": table8_summary(self.table8) if self.table8 else None,
            "remark10_all_optimal": (
                self.remark10.all_optimal if self.remark10 else None
            ),
            "elapsed_seconds": self.elapsed_seconds,
        }


def run_all(
    *,
    scale: Optional[Scale] = None,
    tables: tuple[int, ...] = tuple(range(1, 8)),
    include_table8: bool = True,
    include_remark10: bool = True,
    output_dir: Optional[str | Path] = None,
    verbose: bool = True,
    jobs: int = 1,
    engine: Optional[str] = None,
    cache: Optional[object] = None,
    refresh: bool = False,
) -> ReproductionReport:
    """Regenerate every requested table; optionally persist the reports.

    Every table executes through the scenario core
    (:mod:`repro.scenarios.core`): ``jobs > 1`` (or 0 for all cores) fans
    table cells out across worker processes with results identical to the
    serial path, and ``engine`` selects the tree-engine backend for the
    self-adjusting cells (``None`` = the flat engine, the fast default;
    ``"object"`` = the reference backend — totals are identical either
    way, see ``tests/scenarios/``).  ``cache``/``refresh`` select the
    per-cell result cache (:mod:`repro.scenarios.cache`): with a warm
    cache a re-run recomputes only cells whose work is new.
    """
    scale = scale or get_scale()
    report = ReproductionReport(scale=scale.name, engine=engine or "flat")
    start = time.perf_counter()
    for number in tables:
        workload = TABLE_WORKLOAD[number]
        if verbose:
            print(f"[run_all] table {number} ({workload}) ...", flush=True)
        report.kary_tables[number] = run_kary_table(
            workload, scale=scale, jobs=jobs, engine=engine,
            cache=cache, refresh=refresh,
        )
    if include_table8:
        if verbose:
            print("[run_all] table 8 (centroid case study) ...", flush=True)
        report.table8 = run_table8(
            scale=scale, jobs=jobs, engine=engine, cache=cache, refresh=refresh
        )
    if include_remark10:
        if verbose:
            print("[run_all] remark 10 (centroid optimality) ...", flush=True)
        report.remark10 = run_remark10(jobs=jobs, cache=cache, refresh=refresh)
    report.elapsed_seconds = time.perf_counter() - start
    if output_dir is not None:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"report_{scale.name}.txt").write_text(report.render() + "\n")
        (out / f"summary_{scale.name}.json").write_text(
            json.dumps(report.summary(), indent=2, default=str) + "\n"
        )
    return report
