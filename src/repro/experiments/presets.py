"""Experiment scales and workload registry for the evaluation harness.

Two presets:

* ``quick`` — laptop/CI-sized runs (default): every table regenerates in
  minutes while preserving the paper's ratio *shapes* (which are stable in
  ``m`` and ``n``; the scale-stability ablation bench verifies this).
* ``paper`` — the paper's sizes (10⁶ requests; n = 500/100/10⁴/1023/100);
  hours of pure-Python compute.

Select with the ``REPRO_SCALE`` environment variable or pass a
:class:`Scale` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.synthetic import temporal_trace, uniform_trace
from repro.workloads.trace import Trace

__all__ = ["Scale", "QUICK", "SMOKE", "PAPER", "get_scale", "make_workload", "WORKLOADS"]


@dataclass(frozen=True)
class Scale:
    """Node/request counts for each workload family plus harness knobs."""

    name: str
    m: int
    uniform_n: int
    hpc_n: int
    projector_n: int
    facebook_n: int
    temporal_n: int
    ks: tuple[int, ...] = tuple(range(2, 11))
    #: skip the O(n³k) optimal-tree DP above this node count (the paper
    #: skipped it for the Facebook workload for the same reason)
    optimal_tree_max_n: int = 1100
    seed: int = 2024

    def workload_n(self, workload: str) -> int:
        try:
            return {
                "uniform": self.uniform_n,
                "hpc": self.hpc_n,
                "projector": self.projector_n,
                "facebook": self.facebook_n,
            }.get(workload, self.temporal_n)
        except KeyError:  # pragma: no cover
            raise ExperimentError(f"unknown workload {workload!r}") from None


#: CI-sized default scale.
QUICK = Scale(
    name="quick",
    m=20_000,
    uniform_n=100,
    hpc_n=216,
    projector_n=100,
    facebook_n=1024,
    temporal_n=255,
)

#: Tiny scale for unit tests.
SMOKE = Scale(
    name="smoke",
    m=2_000,
    uniform_n=40,
    hpc_n=64,
    projector_n=40,
    facebook_n=64,
    temporal_n=63,
    ks=(2, 3, 5),
    optimal_tree_max_n=128,
)

#: The paper's sizes (Section 5 "Setup and data").
PAPER = Scale(
    name="paper",
    m=1_000_000,
    uniform_n=100,
    hpc_n=500,
    projector_n=100,
    facebook_n=10_000,
    temporal_n=1023,
)

_SCALES = {"quick": QUICK, "smoke": SMOKE, "paper": PAPER}


def get_scale(name: str | None = None) -> Scale:
    """Resolve a scale by name, or from ``REPRO_SCALE`` (default quick)."""
    name = name or os.environ.get("REPRO_SCALE", "quick")
    try:
        return _SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


#: Workload names in the order the paper's tables use them.
WORKLOADS = (
    "uniform",
    "hpc",
    "projector",
    "facebook",
    "temporal-0.25",
    "temporal-0.5",
    "temporal-0.75",
    "temporal-0.9",
)


def make_workload(name: str, scale: Scale) -> Trace:
    """Instantiate one of the paper's eight workloads at a given scale."""
    seed = scale.seed
    m = scale.m
    if name == "uniform":
        return uniform_trace(scale.uniform_n, m, seed)
    if name == "hpc":
        return hpc_trace(scale.hpc_n, m, seed)
    if name == "projector":
        return projector_trace(scale.projector_n, m, seed)
    if name == "facebook":
        return facebook_trace(scale.facebook_n, m, seed)
    if name.startswith("temporal-"):
        p = float(name.split("-", 1)[1])
        return temporal_trace(scale.temporal_n, m, p, seed)
    raise ExperimentError(f"unknown workload {name!r}; choose from {WORKLOADS}")
