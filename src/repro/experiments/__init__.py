"""experiments subpackage — see module docstrings."""
