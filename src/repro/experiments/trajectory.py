"""Perf-trajectory report over the recorded benchmark JSON files.

Every performance PR records its headline measurement as a pretty-printed
``benchmarks/results/BENCH_*.json`` file (hotpath, pipeline, optimal DP,
serve farm, ...).  This module renders that directory into one markdown
table — the repo's performance trajectory at a glance — for
``python -m repro bench-report``.

The extraction is deliberately schema-free: any numeric key named
``speedup_*`` / ``scaling_*`` (formatted as a ratio), any
``*requests_per_second*`` (formatted as throughput), any
``latency_p50/p99_seconds``, any ``mean_time_to_*_seconds`` (the chaos
soak's detection/recovery summary) and any ``rounds_survived`` found
anywhere in a record becomes a row, and any boolean ``*match*`` key
becomes an equality check.  New benchmark records that follow the house
conventions show up in the report without touching this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import ExperimentError

__all__ = [
    "DEFAULT_RESULTS_DIR",
    "campaign_records",
    "load_benchmark_records",
    "record_checks",
    "record_metrics",
    "render_trajectory",
]

DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"


def load_benchmark_records(
    results_dir: Union[str, Path, None] = None,
) -> dict[str, dict]:
    """All ``BENCH_*.json`` records in a directory, by file name (sorted)."""
    directory = Path(results_dir) if results_dir else DEFAULT_RESULTS_DIR
    if not directory.is_dir():
        raise ExperimentError(f"no results directory at {directory}")
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(f"unreadable record {path}: {exc}") from exc
        if isinstance(data, dict):
            records[path.name] = data
    return records


def _walk(record: dict, prefix: str = "") -> Iterator[tuple[str, object]]:
    for key in sorted(record):
        value = record[key]
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from _walk(value, path)
        else:
            yield path, value


def _format_throughput(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M req/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k req/s"
    return f"{value:.0f} req/s"


def record_metrics(record: dict) -> list[tuple[str, str]]:
    """The (metric path, formatted value) rows of one benchmark record."""
    rows: list[tuple[str, str]] = []
    for path, value in _walk(record):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        leaf = path.rsplit(".", 1)[-1]
        if leaf.startswith("speedup_") or leaf.startswith("scaling_"):
            rows.append((path, f"{value:.2f}x"))
        elif "requests_per_second" in leaf:
            rows.append((path, _format_throughput(value)))
        elif leaf in ("latency_p50_seconds", "latency_p99_seconds"):
            rows.append((path, f"{value * 1e6:.1f} us"))
        elif leaf.startswith("mean_time_to") and leaf.endswith("_seconds"):
            rows.append((path, f"{value * 1e3:.1f} ms"))
        elif leaf == "rounds_survived":
            rows.append((path, f"{int(value)} rounds"))
    return rows


def record_checks(record: dict) -> list[tuple[str, bool]]:
    """The (check path, passed) equality gates of one benchmark record."""
    return [
        (path, bool(value))
        for path, value in _walk(record)
        if isinstance(value, bool) and "match" in path.rsplit(".", 1)[-1]
    ]


def campaign_records(
    results_dir: Union[str, Path, None] = None,
) -> list[tuple[str, str, int]]:
    """The directory's scenario result records, read through the store API.

    Every ``scenario_*`` record file — either backend — becomes a
    ``(file name, backend, cell count)`` row, so the report shows the
    recorded campaigns next to the benchmark metrics regardless of which
    store wrote them.
    """
    from repro.results import open_store

    directory = Path(results_dir) if results_dir else DEFAULT_RESULTS_DIR
    if not directory.is_dir():
        return []
    rows: list[tuple[str, str, int]] = []
    for path in sorted(directory.glob("scenario_*")):
        if path.suffix not in (".jsonl", ".sqlite", ".sqlite3", ".db"):
            continue
        backend = "jsonl" if path.suffix == ".jsonl" else "sqlite"
        store = open_store(path)
        try:
            rows.append((path.name, backend, store.count_records()))
        finally:
            store.close()
    return rows


def render_trajectory(results_dir: Union[str, Path, None] = None) -> str:
    """Render the results directory as a markdown perf-trajectory report."""
    records = load_benchmark_records(results_dir)
    lines = ["# Performance trajectory", ""]
    if not records:
        lines.append("No `BENCH_*.json` records found.")
        return "\n".join(lines) + "\n"
    lines += [
        "| record | metric | value |",
        "| --- | --- | --- |",
    ]
    for name, record in records.items():
        label: Optional[str] = name
        for path, value in record_metrics(record):
            lines.append(f"| {label or ''} | `{path}` | {value} |")
            label = None  # record name printed once per group
        if label is not None:
            lines.append(f"| {label} | | (no trajectory metrics) |")
    checks = [
        (name, path, passed)
        for name, record in records.items()
        for path, passed in record_checks(record)
    ]
    if checks:
        lines += ["", "## Equality checks", ""]
        for name, path, passed in checks:
            mark = "PASS" if passed else "**FAIL**"
            lines.append(f"- {mark} `{name}` `{path}`")
    campaigns = campaign_records(results_dir)
    if campaigns:
        lines += [
            "",
            "## Recorded campaigns",
            "",
            "| record | backend | cells |",
            "| --- | --- | --- |",
        ]
        for name, backend, count in campaigns:
            lines.append(f"| {name} | {backend} | {count} |")
    return "\n".join(lines) + "\n"
