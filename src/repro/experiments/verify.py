"""Executable verification of the paper's qualitative claims.

DESIGN.md §3 lists the *expected shapes* that constitute a successful
reproduction (who wins, where crossovers fall).  This module turns each
prose claim into a :class:`ClaimCheck` evaluated against live experiment
results, so "the reproduction holds" is one function call —
:func:`verify_reproduction` — rather than a human diff of tables.

Checks are deliberately tolerant (shape, not absolute numbers): they
encode directions, orderings and bounded constants, with the tolerance
recorded on each check for auditability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.runner import ReproductionReport
from repro.experiments.tables import KAryTableResult, Table8Result

__all__ = ["ClaimCheck", "VerificationSummary", "verify_reproduction",
           "check_kary_table", "check_table8"]

#: Workloads the paper calls high-locality (SplayNet beats static trees).
HIGH_LOCALITY = {"temporal-0.75", "temporal-0.9"}
#: Workloads where the paper reports 3-SplayNet ahead of SplayNet.
CENTROID_WINS = {"uniform", "projector", "facebook", "temporal-0.25", "temporal-0.5"}


@dataclass(frozen=True)
class ClaimCheck:
    """One verified claim: where it came from, what held, with what margin."""

    claim: str
    source: str           # paper locus, e.g. "Tables 1-7", "Table 8"
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.source}: {self.claim}{tail}"


@dataclass
class VerificationSummary:
    """All checks for a reproduction run."""

    checks: list[ClaimCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> list[ClaimCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = [str(check) for check in self.checks]
        verdict = (
            f"{len(self.checks)} claims checked, all passed"
            if self.passed
            else f"{len(self.failures())} of {len(self.checks)} claims FAILED"
        )
        return "\n".join(lines + [verdict])


def check_kary_table(result: KAryTableResult) -> list[ClaimCheck]:
    """Shape checks for one of Tables 1-7."""
    checks: list[ClaimCheck] = []
    ks = sorted(result.ks)
    k_max = ks[-1]

    # Claim 1: routing cost falls with k (allowing small non-monotone noise:
    # the endpoint must be decisively below the k=2 anchor).
    end_ratio = result.splaynet_ratio(k_max)
    checks.append(
        ClaimCheck(
            claim=f"k-ary SplayNet cost falls with k on {result.workload}",
            source="Tables 1-7 / §5.1",
            passed=end_ratio < 0.97,
            detail=f"ratio at k={k_max}: {end_ratio:.3f}",
        )
    )

    # Claim 2: the full-tree comparison worsens as k grows (the static full
    # tree gains ground at high arity).  A 0.05 tolerance absorbs the noise
    # of tiny (smoke-scale) runs where the trend is flat within jitter.
    first, last = result.fulltree_ratio(ks[0]), result.fulltree_ratio(k_max)
    checks.append(
        ClaimCheck(
            claim=f"full-tree ratio grows with k on {result.workload}",
            source="Tables 1-7",
            passed=last > first - 0.05,
            detail=f"{first:.2f} at k={ks[0]} → {last:.2f} at k={k_max}",
        )
    )

    # Claim 3: high-locality workloads — SplayNet beats the full tree at
    # every k; low-locality — the optimal tree stays within a bounded
    # constant (≤ 3.5x, the paper's "no more than 3 times" with slack).
    if result.workload in HIGH_LOCALITY:
        worst_full = max(result.fulltree_ratio(k) for k in ks)
        checks.append(
            ClaimCheck(
                claim="SplayNet beats the full tree at every k (high locality)",
                source="§5.1 observation 2",
                passed=worst_full < 1.0,
                detail=f"worst full-tree ratio {worst_full:.2f}",
            )
        )
    optimal_ratios = [
        result.optimal_ratio(k) for k in ks if result.optimal_ratio(k)
    ]
    if optimal_ratios:
        worst_optimal = max(optimal_ratios)
        checks.append(
            ClaimCheck(
                claim="optimal static tree ahead by a bounded constant",
                source="§5.1 observation 2 ('no more than 3 times')",
                passed=worst_optimal < 3.5,
                detail=f"worst optimal ratio {worst_optimal:.2f}",
            )
        )
    return checks


def check_table8(result: Table8Result, *, model=None) -> list[ClaimCheck]:
    """Shape checks for Table 8 (the centroid case study)."""
    from repro.network.cost import UNIT_ROTATIONS

    model = model or UNIT_ROTATIONS
    checks: list[ClaimCheck] = []
    wins = []
    losses = []
    for row in result.rows:
        ratio = row.ratio_splaynet(model)
        (wins if ratio > 1.0 else losses).append((row.workload, ratio))

    won = {name for name, _ in wins}
    expected_wins = CENTROID_WINS & {row.workload for row in result.rows}
    overlap = len(won & expected_wins)
    checks.append(
        ClaimCheck(
            claim="3-SplayNet beats SplayNet on low/medium-locality workloads",
            source="Table 8",
            passed=overlap >= max(1, len(expected_wins) - 1),
            detail=f"won {sorted(won)}; expected ⊇ {sorted(expected_wins)}",
        )
    )
    high = [row for row in result.rows if row.workload == "temporal-0.9"]
    if high:
        ratio = high[0].ratio_splaynet(model)
        checks.append(
            ClaimCheck(
                claim="3-SplayNet loses on the highest-locality workload",
                source="Table 8 (temporal 0.9: 0.856)",
                passed=ratio < 1.0,
                detail=f"ratio {ratio:.3f}",
            )
        )
    return checks


def verify_reproduction(report: ReproductionReport) -> VerificationSummary:
    """Evaluate every shape claim against a :func:`run_all` report."""
    summary = VerificationSummary()
    for number in sorted(report.kary_tables):
        summary.checks.extend(check_kary_table(report.kary_tables[number]))
    if report.table8 is not None:
        summary.checks.extend(check_table8(report.table8))
    if report.remark10 is not None:
        summary.checks.append(
            ClaimCheck(
                claim="centroid tree exactly optimal on the uniform grid",
                source="Remark 10 / Remark 37",
                passed=report.remark10.all_optimal,
                detail=(
                    "all grid points optimal"
                    if report.remark10.all_optimal
                    else f"mismatches: {report.remark10.mismatches()[:3]}"
                ),
            )
        )
    return summary
