"""Results-store benchmark: ingest and lookup, JSONL vs SQLite.

The measurement behind the pluggable :mod:`repro.results` layer: stream a
large synthetic campaign (default 50k cells) into each backend through
its batched ``append_many`` path — the record generator yields one cell
at a time and both backends consume it incrementally, so memory stays
bounded regardless of campaign size — then time indexed spec-hash
lookups, where the SQLite backend's B-tree should beat the JSONL
backend's whole-file scan by a wide margin (the recorded
``speedup_sqlite_lookup``).  A full record comparison across the two
backends pins conversion fidelity (``roundtrip_match``).

Record home: ``benchmarks/results/BENCH_results_store.json`` (see
``python -m repro bench-store``).
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.results import JsonlStore, SqliteStore, spec_store_hash

__all__ = [
    "results_store_benchmark",
    "synthetic_results",
    "write_store_record",
]

#: Axes the synthetic campaign cycles through — enough variety that the
#: indexed columns carry real selectivity, cheap enough to generate 50k+.
_WORKLOADS = ("uniform", "temporal-0.5", "zipf-1.2", "hpc")
_ALGORITHMS = ("kary-splaynet", "full-tree")
_KS = (2, 3, 4)
_NS = (64, 128, 256)


def synthetic_results(cells: int, seed: int = 0) -> Iterator[object]:
    """Yield ``cells`` distinct, deterministic results one at a time.

    Specs cycle the workload/algorithm/arity/size axes with a unique
    ``seed`` per cell (so every spec — and every spec hash — is
    distinct); totals are cheap arithmetic functions of the index, not
    simulations: this benchmark measures storage, not tree serving.
    """
    from repro.scenarios.core import ScenarioResult
    from repro.scenarios.spec import ScenarioSpec

    for index in range(cells):
        spec = ScenarioSpec(
            workload=_WORKLOADS[index % len(_WORKLOADS)],
            n=_NS[index % len(_NS)],
            m=1000,
            seed=seed + index,
            algorithm=_ALGORITHMS[index % len(_ALGORITHMS)],
            k=_KS[index % len(_KS)],
            group="storebench",
        )
        yield ScenarioResult(
            spec=spec,
            total_routing=1000 + index * 7 % 9973,
            total_rotations=index * 3 % 4999,
            total_links_changed=index * 5 % 4999,
            elapsed_seconds=0.0,
        )


def _store_bytes(path: Path) -> int:
    """On-disk footprint including WAL/SHM sidecars (pre-checkpoint)."""
    total = path.stat().st_size
    for sidecar in ("-wal", "-shm"):
        side = Path(str(path) + sidecar)
        if side.exists():
            total += side.stat().st_size
    return total


def _time_lookups(store, hashes: list[str]) -> float:
    """Mean seconds per spec-hash query (results fully materialized)."""
    start = time.perf_counter()
    for spec_hash in hashes:
        matched = list(store.query(spec_hash=spec_hash))
        if not matched:
            raise AssertionError(f"lookup lost {spec_hash} in {store.path}")
    return (time.perf_counter() - start) / max(1, len(hashes))


def results_store_benchmark(
    *,
    cells: int = 50_000,
    lookups: int = 5,
    batch: int = 1000,
    seed: int = 0,
    workdir: "str | Path | None" = None,
) -> dict:
    """Ingest + lookup timing for both backends; returns the JSON record.

    ``workdir`` (default: a fresh temporary directory) holds the two
    record files; pass a path to keep them for inspection.
    """
    base = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="storebench-"))
    base.mkdir(parents=True, exist_ok=True)

    # The spec hashes to look up afterwards: spread across the campaign,
    # computed from the same deterministic generator (no storage needed).
    lookups = max(1, min(lookups, cells))
    stride = max(1, cells // lookups)
    targets = {i * stride for i in range(lookups)}
    hashes = [
        spec_store_hash(result.spec)
        for index, result in enumerate(synthetic_results(cells, seed))
        if index in targets
    ]

    record: dict = {"cells": cells, "lookups": len(hashes), "batch": batch}
    stores = {
        "jsonl": JsonlStore(base / "storebench.jsonl", overwrite=True),
        "sqlite": SqliteStore(
            base / "storebench.sqlite", overwrite=True, batch=batch
        ),
    }
    for name, store in stores.items():
        with store:
            start = time.perf_counter()
            appended = store.append_many(synthetic_results(cells, seed))
            ingest = time.perf_counter() - start
            assert appended == cells
            per_query = _time_lookups(store, hashes)
            record[name] = {
                "ingest_seconds": round(ingest, 6),
                "ingest_cells_per_second": round(cells / ingest, 1),
                "lookup_seconds_per_query": round(per_query, 6),
                "file_bytes": _store_bytes(store.path),
            }

    record["speedup_sqlite_ingest"] = round(
        record["jsonl"]["ingest_seconds"] / record["sqlite"]["ingest_seconds"], 2
    )
    record["speedup_sqlite_lookup"] = round(
        record["jsonl"]["lookup_seconds_per_query"]
        / record["sqlite"]["lookup_seconds_per_query"],
        2,
    )

    # Cell-for-cell equality across the backends (conversion fidelity).
    jsonl_iter = iter(stores["jsonl"])
    sqlite_iter = iter(stores["sqlite"])
    match = all(a == b for a, b in zip(jsonl_iter, sqlite_iter))
    match = match and next(jsonl_iter, None) is None
    match = match and next(sqlite_iter, None) is None
    record["roundtrip_match"] = match
    for store in stores.values():
        store.close()
    return record


def write_store_record(record: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out
