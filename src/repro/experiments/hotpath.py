"""Serve-loop throughput benchmark: object vs. flat vs. native engine.

The paper's experiments are traces of 10^5–10^6 ``serve(u, v)`` calls, so
end-to-end reproduction time is dominated by the serve hot loop.  This
module measures that loop in isolation — requests/second and
rotations/second for each engine on the same Zipf trace — and emits a
machine-readable dict, used by ``python -m repro bench-hotpath``, by
``benchmarks/bench_engine_hotpath.py`` and by the tier-1 smoke test.

Methodology (PR 5): engines are *interleaved* across repeats (engine A,
B, C, then A, B, C again, ...) rather than measured back to back, so slow
thermal/load drift hits every engine equally; and every measurement
records CPU time (``time.process_time``) next to wall clock, with the
best-of-``repeats`` kept per engine for both.  Recorded speedups are
computed from CPU time — on a loaded box wall-clock ratios wander by
±15%, CPU ratios do not.

The engines are also cross-checked: their cost totals must agree exactly
(they implement the same discipline), so a benchmark run doubles as an
end-to-end equivalence check at benchmark scale.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import ENGINES, native_available
from repro.errors import ExperimentError
from repro.net.registry import build_network
from repro.workloads.synthetic import zipf_trace

__all__ = [
    "SPEEDUP_PAIRS",
    "default_hotpath_engines",
    "hotpath_benchmark",
    "write_hotpath_record",
]

_HOTPATH_ALGORITHMS = {
    "ksplaynet": "kary-splaynet",
    "centroid-splaynet": "centroid-splaynet",
}

#: Engine pairs reported as ``speedup_<fast>_over_<slow>`` when both ran.
SPEEDUP_PAIRS = (("flat", "object"), ("native", "object"), ("native", "flat"))


def default_hotpath_engines() -> tuple[str, ...]:
    """Every engine measurable in this process.

    ``"native"`` is included only when the compiled kernel is available —
    benchmarking its silent flat fallback would record a lie.
    """
    return tuple(
        engine
        for engine in ENGINES
        if engine != "native" or native_available()
    )


def _build_network(network: str, n: int, k: int, policy: str, engine: str):
    algorithm = _HOTPATH_ALGORITHMS.get(network)
    if algorithm is None:
        raise ExperimentError(
            f"unknown hotpath network {network!r};"
            " choose 'ksplaynet' or 'centroid-splaynet'"
        )
    return build_network(
        algorithm, n=n, k=k, engine=engine, params={"policy": policy}
    )


def hotpath_benchmark(
    n: int = 1024,
    k: int = 4,
    m: int = 100_000,
    *,
    network: str = "ksplaynet",
    zipf_alpha: float = 1.2,
    seed: int = 0,
    policy: str = "center",
    repeats: int = 1,
    engines: Optional[Sequence[str]] = None,
) -> dict:
    """Measure serve-loop throughput per engine on one Zipf trace.

    Each engine serves the identical trace on a freshly built network;
    the ``repeats`` rounds interleave the engines and the best wall-clock
    and best CPU time are kept per engine (self-adjustment makes state
    carry over, so every measurement restarts from the initial topology).
    ``engines`` defaults to :func:`default_hotpath_engines`; requesting
    ``"native"`` explicitly on a machine without the kernel is an error
    rather than a silently mislabeled flat measurement.  Returns a
    JSON-serializable dict with per-engine throughput (wall and CPU),
    pairwise speedups, and an exact cross-engine totals check.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if engines is None:
        engines = default_hotpath_engines()
    engines = tuple(engines)
    if not engines:
        raise ExperimentError("need at least one engine to benchmark")
    for engine in engines:
        if engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
    if "native" in engines and not native_available():
        from repro.core import _native

        raise ExperimentError(
            "engine 'native' requested but the compiled kernel is"
            f" unavailable ({_native.build_error()}); drop it from"
            " --engines or fix the toolchain"
        )
    trace = zipf_trace(n, m, zipf_alpha, seed)
    result: dict = {
        "benchmark": "engine_hotpath",
        "config": {
            "network": network,
            "n": n,
            "k": k,
            "m": m,
            "trace": trace.name,
            "zipf_alpha": zipf_alpha,
            "seed": seed,
            "policy": policy,
            "repeats": repeats,
            "engines": list(engines),
            "interleaved": True,
            "python": platform.python_version(),
        },
        "engines": {},
    }
    best_wall: dict[str, float] = {}
    best_cpu: dict[str, float] = {}
    batches: dict[str, object] = {}
    for _ in range(repeats):
        for engine in engines:
            net = _build_network(network, n, k, policy, engine)
            w0 = time.perf_counter()
            c0 = time.process_time()
            batch = net.serve_trace(trace.sources, trace.targets)
            cpu = time.process_time() - c0
            wall = time.perf_counter() - w0
            if engine not in best_wall or wall < best_wall[engine]:
                best_wall[engine] = wall
            if engine not in best_cpu or cpu < best_cpu[engine]:
                best_cpu[engine] = cpu
            batches[engine] = batch

    totals: dict[str, tuple[int, int, int]] = {}
    for engine in engines:
        batch = batches[engine]
        wall = best_wall[engine]
        cpu = best_cpu[engine]
        totals[engine] = (
            batch.total_routing,
            batch.total_rotations,
            batch.total_links_changed,
        )
        result["engines"][engine] = {
            "seconds": wall,
            "cpu_seconds": cpu,
            "requests_per_second": m / wall,
            "requests_per_second_cpu": m / cpu if cpu > 0 else float("inf"),
            "rotations_per_second": batch.total_rotations / wall,
            "total_routing": batch.total_routing,
            "total_rotations": batch.total_rotations,
            "total_links_changed": batch.total_links_changed,
        }
    if len(totals) > 1:
        reference = next(iter(totals.values()))
        result["totals_match"] = all(t == reference for t in totals.values())
    for fast, slow in SPEEDUP_PAIRS:
        if fast in best_cpu and slow in best_cpu and best_cpu[fast] > 0:
            result[f"speedup_{fast}_over_{slow}"] = (
                best_cpu[slow] / best_cpu[fast]
            )
            result[f"speedup_{fast}_over_{slow}_wall"] = (
                best_wall[slow] / best_wall[fast]
            )
    return result


def write_hotpath_record(result: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out
