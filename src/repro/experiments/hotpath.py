"""Serve-loop throughput benchmark: object engine vs. flat engine.

The paper's experiments are traces of 10^5–10^6 ``serve(u, v)`` calls, so
end-to-end reproduction time is dominated by the serve hot loop.  This
module measures that loop in isolation — requests/second and
rotations/second for each engine on the same Zipf trace — and emits a
machine-readable dict, used by ``python -m repro bench-hotpath``, by
``benchmarks/bench_engine_hotpath.py`` and by the tier-1 smoke test.

The two engines are also cross-checked: their cost totals must agree
exactly (they implement the same discipline), so a benchmark run doubles as
an end-to-end equivalence check at benchmark scale.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import ENGINES
from repro.errors import ExperimentError
from repro.net.registry import build_network
from repro.workloads.synthetic import zipf_trace

__all__ = ["hotpath_benchmark", "write_hotpath_record"]

_HOTPATH_ALGORITHMS = {
    "ksplaynet": "kary-splaynet",
    "centroid-splaynet": "centroid-splaynet",
}


def _build_network(network: str, n: int, k: int, policy: str, engine: str):
    algorithm = _HOTPATH_ALGORITHMS.get(network)
    if algorithm is None:
        raise ExperimentError(
            f"unknown hotpath network {network!r};"
            " choose 'ksplaynet' or 'centroid-splaynet'"
        )
    return build_network(
        algorithm, n=n, k=k, engine=engine, params={"policy": policy}
    )


def hotpath_benchmark(
    n: int = 1024,
    k: int = 4,
    m: int = 100_000,
    *,
    network: str = "ksplaynet",
    zipf_alpha: float = 1.2,
    seed: int = 0,
    policy: str = "center",
    repeats: int = 1,
    engines: Sequence[str] = ENGINES,
) -> dict:
    """Measure serve-loop throughput per engine on one Zipf trace.

    Each engine serves the identical trace on a freshly built network
    (``repeats`` times, best time kept — self-adjustment makes state carry
    over, so every repeat restarts from the initial topology).  Returns a
    JSON-serializable dict with per-engine throughput, the flat/object
    speedup, and an exact cross-engine totals check.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    trace = zipf_trace(n, m, zipf_alpha, seed)
    result: dict = {
        "benchmark": "engine_hotpath",
        "config": {
            "network": network,
            "n": n,
            "k": k,
            "m": m,
            "trace": trace.name,
            "zipf_alpha": zipf_alpha,
            "seed": seed,
            "policy": policy,
            "repeats": repeats,
            "python": platform.python_version(),
        },
        "engines": {},
    }
    totals: dict[str, tuple[int, int, int]] = {}
    for engine in engines:
        best = None
        batch = None
        for _ in range(repeats):
            net = _build_network(network, n, k, policy, engine)
            t0 = time.perf_counter()
            batch = net.serve_trace(trace.sources, trace.targets)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        totals[engine] = (
            batch.total_routing,
            batch.total_rotations,
            batch.total_links_changed,
        )
        result["engines"][engine] = {
            "seconds": best,
            "requests_per_second": m / best,
            "rotations_per_second": batch.total_rotations / best,
            "total_routing": batch.total_routing,
            "total_rotations": batch.total_rotations,
            "total_links_changed": batch.total_links_changed,
        }
    if len(totals) > 1:
        reference = next(iter(totals.values()))
        result["totals_match"] = all(t == reference for t in totals.values())
    if "object" in result["engines"] and "flat" in result["engines"]:
        result["speedup_flat_over_object"] = (
            result["engines"]["flat"]["requests_per_second"]
            / result["engines"]["object"]["requests_per_second"]
        )
    return result


def write_hotpath_record(result: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out
