"""End-to-end reproduction-pipeline benchmark: object vs. flat engine.

Where :mod:`repro.experiments.hotpath` isolates the serve loop, this module
times the *whole* ``run_all`` reproduction pipeline — trace generation,
online simulation, static costing and the optimal-tree DPs — per tree
engine, so the perf trajectory in ``benchmarks/results/`` tracks what a
user actually waits for.  CPU time (``time.process_time``) is the primary
metric: wall clock on a loaded box is ±15% noisy, CPU time is stable.

Each engine runs the identical table subset ``repeats`` times (best kept);
the engines' table summaries are cross-checked for exact equality, so a
benchmark run doubles as an end-to-end engine-equivalence check at
pipeline scale.  Used by ``python -m repro bench-pipeline`` and
``benchmarks/bench_reproduce_pipeline.py``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import ENGINES, native_available
from repro.errors import ExperimentError
from repro.experiments.hotpath import SPEEDUP_PAIRS, default_hotpath_engines
from repro.experiments.presets import get_scale
from repro.experiments.runner import run_all
from repro.experiments.tables import TABLE_WORKLOAD

__all__ = [
    "DEFAULT_TABLES",
    "DEFAULT_REPEATS",
    "reproduce_pipeline_benchmark",
    "write_pipeline_record",
]

#: The recorded-trajectory defaults, shared by ``repro bench-pipeline`` and
#: ``benchmarks/bench_reproduce_pipeline.py`` so both frontends refresh
#: ``BENCH_reproduce_pipeline.json`` with comparable configurations.
#: Tables 3 and 8 are excluded: at quick scale both are dominated by the
#: engine-independent n=1024 optimal-tree DP, which dilutes the signal.
DEFAULT_TABLES = (1, 2, 4, 5, 6, 7)
DEFAULT_REPEATS = 2


def _comparable_summary(summary: dict) -> dict:
    """A summary with the timing/engine fields stripped (pure results)."""
    out = dict(summary)
    out.pop("elapsed_seconds", None)
    out.pop("engine", None)
    return out


def reproduce_pipeline_benchmark(
    scale: str = "quick",
    *,
    tables: tuple[int, ...] = DEFAULT_TABLES,
    include_table8: bool = False,
    include_remark10: bool = False,
    repeats: int = DEFAULT_REPEATS,
    engines: Optional[Sequence[str]] = None,
    jobs: int = 1,
    verbose: bool = False,
) -> dict:
    """Time ``run_all`` per engine on one table subset; best of ``repeats``.

    Defaults follow the recorded trajectory (:data:`DEFAULT_TABLES`,
    :data:`DEFAULT_REPEATS`): Table 8 and Remark 10 are excluded because
    their dominant costs (the n=1024 optimal-BST DP, analytic cells) are
    engine-independent and would only dilute the engine signal.  Returns a
    JSON-serializable record with per-engine CPU/wall seconds, the
    flat-over-object speedup and the cross-engine summary check.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if engines is None:
        engines = default_hotpath_engines()
    for engine in engines:
        if engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
    if "native" in engines and not native_available():
        from repro.core import _native

        raise ExperimentError(
            "engine 'native' requested but the compiled kernel is"
            f" unavailable ({_native.build_error()}); drop it from the"
            " engine list or fix the toolchain"
        )
    if not tables:
        raise ExperimentError("tables must name at least one of Tables 1-7")
    unknown = sorted(set(tables) - set(TABLE_WORKLOAD))
    if unknown:
        raise ExperimentError(
            f"unknown table numbers {unknown}; choose from "
            f"{sorted(TABLE_WORKLOAD)} (Table 8 via include_table8)"
        )
    scale_obj = get_scale(scale)
    record: dict = {
        "benchmark": "reproduce_pipeline",
        "config": {
            "scale": scale_obj.name,
            "tables": list(tables),
            "include_table8": include_table8,
            "include_remark10": include_remark10,
            "repeats": repeats,
            "jobs": jobs,
            "python": platform.python_version(),
        },
        "engines": {},
    }
    summaries: dict[str, dict] = {}
    # Interleave engines across repeats (A B A B ...) instead of timing one
    # engine's repeats back to back, so thermal/load drift cancels.
    best_cpu: dict[str, float] = {}
    best_wall: dict[str, float] = {}
    for repeat in range(repeats):
        for engine in engines:
            if verbose:
                print(
                    f"[bench-pipeline] {engine} repeat {repeat + 1}/{repeats} ...",
                    flush=True,
                )
            cpu0 = time.process_time()
            wall0 = time.perf_counter()
            report = run_all(
                scale=scale_obj,
                tables=tables,
                include_table8=include_table8,
                include_remark10=include_remark10,
                verbose=False,
                jobs=jobs,
                engine=engine,
            )
            cpu = time.process_time() - cpu0
            wall = time.perf_counter() - wall0
            if engine not in best_cpu or cpu < best_cpu[engine]:
                best_cpu[engine] = cpu
            if engine not in best_wall or wall < best_wall[engine]:
                best_wall[engine] = wall
            summaries[engine] = _comparable_summary(report.summary())
    for engine in engines:
        record["engines"][engine] = {
            "cpu_seconds": best_cpu[engine],
            "wall_seconds": best_wall[engine],
        }
    if len(summaries) > 1:
        reference = next(iter(summaries.values()))
        record["summaries_match"] = all(
            summary == reference for summary in summaries.values()
        )
    for fast, slow in SPEEDUP_PAIRS:
        if fast in best_cpu and slow in best_cpu and best_cpu[fast] > 0:
            record[f"speedup_{fast}_over_{slow}"] = (
                best_cpu[slow] / best_cpu[fast]
            )
    return record


def write_pipeline_record(record: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out
