"""Parallel regeneration of the paper's tables.

Produces *identical* result objects to :mod:`repro.experiments.tables` —
same traces (cells regenerate the workload from the scale's seed, memoized
per worker), same algorithms, same reductions — by fanning the grid of
(algorithm, k) cells out across worker processes.  Tables 1–7 have up to
27 cells (9 arities × 3 algorithms), Table 8 has up to 32 (8 workloads ×
4 algorithms), so even a four-core laptop sees a near-linear win on the
DP-heavy cells.

Since the scenario refactor the serial functions themselves take ``jobs``/
``config`` and execute through the one scenario core
(:mod:`repro.scenarios.core`); this module survives as the compatibility
facade.  Equality with the serial path is pinned by tests
(`tests/experiments/test_parallel_runner.py`), which is the point: the
parallel harness is an accelerator, never a fork of the experiment logic.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.presets import Scale
from repro.experiments.tables import (
    KAryTableResult,
    Table8Result,
    run_kary_table,
    run_table8,
)
from repro.parallel.pool import ParallelConfig

__all__ = ["run_kary_table_parallel", "run_table8_parallel"]


def run_kary_table_parallel(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    ks: Optional[tuple[int, ...]] = None,
    include_optimal: bool = True,
    engine: Optional[str] = None,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> KAryTableResult:
    """Tables 1–7, one cell per (algorithm, k), executed in parallel."""
    return run_kary_table(
        workload,
        scale=scale,
        ks=ks,
        include_optimal=include_optimal,
        engine=engine,
        jobs=jobs,
        config=config,
    )


def run_table8_parallel(
    *,
    scale: Optional[Scale] = None,
    workloads: Optional[tuple[str, ...]] = None,
    include_optimal: bool = True,
    engine: Optional[str] = None,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> Table8Result:
    """Table 8 (the k = 2 centroid case study), cells in parallel."""
    return run_table8(
        scale=scale,
        workloads=workloads,
        include_optimal=include_optimal,
        engine=engine,
        jobs=jobs,
        config=config,
    )
