"""Parallel regeneration of the paper's tables.

Produces *identical* result objects to :mod:`repro.experiments.tables` —
same traces (cells regenerate the workload from the scale's seed), same
algorithms, same reductions — but fans the grid of (algorithm, k) cells out
across worker processes.  Tables 1–7 have up to 27 cells (9 arities × 3
algorithms), Table 8 has up to 32 (8 workloads × 4 algorithms), so even a
four-core laptop sees a near-linear win on the DP-heavy cells.

Equality with the serial path is pinned by tests
(`tests/experiments/test_parallel_runner.py`), which is the point: the
parallel harness is an accelerator, never a fork of the experiment logic.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExperimentError
from repro.experiments.presets import Scale, WORKLOADS, get_scale
from repro.experiments.tables import KAryTableResult, Table8Result, Table8Row
from repro.network.simulator import SimulationResult
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.parallel.tasks import SimulationTask, SimulationTaskResult, run_simulation_task

__all__ = ["run_kary_table_parallel", "run_table8_parallel"]


def _series_free_result(cell: SimulationTaskResult, m: int) -> SimulationResult:
    """Rebuild a summary-only SimulationResult from a cell's scalar totals."""
    return SimulationResult(
        name=f"{cell.task.algorithm}@{cell.task.workload}",
        n=cell.task.n,
        m=m,
        total_routing=cell.total_routing,
        total_rotations=cell.total_rotations,
        total_links_changed=cell.total_links_changed,
        elapsed_seconds=0.0,
    )


def run_kary_table_parallel(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    ks: Optional[tuple[int, ...]] = None,
    include_optimal: bool = True,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> KAryTableResult:
    """Tables 1–7, one cell per (algorithm, k), executed in parallel."""
    scale = scale or get_scale()
    ks = ks or scale.ks
    n = scale.workload_n(workload)
    m = scale.m
    want_optimal = include_optimal and n <= scale.optimal_tree_max_n

    tasks: list[SimulationTask] = []
    for k in ks:
        tasks.append(SimulationTask(workload, n, m, scale.seed, "kary-splaynet", k))
        tasks.append(SimulationTask(workload, n, m, scale.seed, "full-tree", k))
        if want_optimal:
            tasks.append(SimulationTask(workload, n, m, scale.seed, "optimal-tree", k))

    cells = parallel_map(
        run_simulation_task, tasks, config=config, jobs=None if config else jobs
    )

    result = KAryTableResult(workload=workload, n=n, m=m, ks=tuple(ks))
    for cell in cells:
        k = cell.task.k
        if cell.task.algorithm == "kary-splaynet":
            result.splaynet[k] = cell.total_routing
            result.rotations[k] = cell.total_rotations
            result.links[k] = cell.total_links_changed
        elif cell.task.algorithm == "full-tree":
            result.fulltree[k] = cell.total_routing
        elif cell.task.algorithm == "optimal-tree":
            result.optimal[k] = cell.total_routing
        else:  # pragma: no cover - registry is fixed above
            raise ExperimentError(f"unexpected algorithm {cell.task.algorithm!r}")
    if not want_optimal:
        for k in ks:
            result.optimal[k] = None
    return result


def run_table8_parallel(
    *,
    scale: Optional[Scale] = None,
    workloads: Optional[tuple[str, ...]] = None,
    include_optimal: bool = True,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> Table8Result:
    """Table 8 (the k = 2 centroid case study), cells in parallel."""
    scale = scale or get_scale()
    chosen = workloads or WORKLOADS
    m = scale.m

    tasks: list[SimulationTask] = []
    for workload in chosen:
        n = scale.workload_n(workload)
        want_optimal = include_optimal and n <= scale.optimal_tree_max_n
        tasks.append(SimulationTask(workload, n, m, scale.seed, "centroid-splaynet", 2))
        tasks.append(SimulationTask(workload, n, m, scale.seed, "splaynet", 2))
        tasks.append(SimulationTask(workload, n, m, scale.seed, "full-tree", 2))
        if want_optimal:
            tasks.append(SimulationTask(workload, n, m, scale.seed, "optimal-bst", 2))

    cells = parallel_map(
        run_simulation_task, tasks, config=config, jobs=None if config else jobs
    )
    by_workload: dict[str, dict[str, SimulationTaskResult]] = {}
    for cell in cells:
        by_workload.setdefault(cell.task.workload, {})[cell.task.algorithm] = cell

    result = Table8Result()
    for workload in chosen:
        group = by_workload[workload]
        n = scale.workload_n(workload)
        optimal_cost: Optional[int] = None
        if "optimal-bst" in group:
            optimal_cost = group["optimal-bst"].total_routing
        result.rows.append(
            Table8Row(
                workload=workload,
                n=n,
                m=m,
                centroid3=_series_free_result(group["centroid-splaynet"], m),
                splaynet=_series_free_result(group["splaynet"], m),
                full_binary_cost=group["full-tree"].total_routing,
                optimal_bst_cost=optimal_cost,
            )
        )
    return result
