"""Paper-style text rendering of experiment results.

The renderers mirror the paper's table layout so EXPERIMENTS.md and the
benchmark outputs can be compared against the published numbers row by row.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import (
    KAryTableResult,
    Remark10Result,
    Table8Result,
)
from repro.network.cost import CostModel, ROUTING_ONLY, UNIT_ROTATIONS

__all__ = ["render_kary_table", "render_table8", "render_remark10"]


def _fmt_ratio(value: Optional[float]) -> str:
    return "   -  " if value is None else f"{value:5.2f}x"


def render_kary_table(result: KAryTableResult, *, title: str = "") -> str:
    """Render one of Tables 1-7 in the paper's row layout."""
    ks = result.ks
    lines = []
    header = title or (
        f"k-ary SplayNet on {result.workload}"
        f" (n={result.n}, m={result.m}, routing cost)"
    )
    lines.append(header)
    lines.append("k:            " + "".join(f"{k:>8d}" for k in ks))
    row = [f"{result.base_cost:>8d}"] + [
        f"{result.splaynet_ratio(k):7.2f}x" for k in ks if k != 2
    ]
    lines.append("SplayNet      " + "".join(row))
    lines.append(
        "Full Tree     "
        + "".join(f"{result.fulltree_ratio(k):7.2f}x" for k in ks)
    )
    opt_cells = []
    for k in ks:
        ratio = result.optimal_ratio(k)
        opt_cells.append("      - " if ratio is None else f"{ratio:7.2f}x")
    lines.append("Optimal Tree  " + "".join(opt_cells))
    return "\n".join(lines)


def render_table8(
    result: Table8Result,
    *,
    model: CostModel = ROUTING_ONLY,
    title: str = "",
) -> str:
    """Render Table 8: 3-SplayNet vs SplayNet / full binary / optimal BST."""
    lines = [
        title
        or f"3-SplayNet case study (cost model: {model.describe()})"
    ]
    lines.append(
        f"{'workload':16s} {'3-SplayNet':>11s} {'SplayNet':>9s}"
        f" {'FullBinary':>11s} {'StaticOpt':>10s}"
    )
    for row in result.rows:
        lines.append(
            f"{row.workload:16s} {row.average_cost(model):11.3f}"
            f" {_fmt_ratio(row.ratio_splaynet(model)):>9s}"
            f" {_fmt_ratio(row.ratio_full(model)):>11s}"
            f" {_fmt_ratio(row.ratio_optimal(model)):>10s}"
        )
    return "\n".join(lines)


def render_remark10(result: Remark10Result) -> str:
    """Render the centroid-optimality grid (Remark 10)."""
    lines = ["Centroid k-ary search tree vs uniform-workload optimum"]
    lines.append(
        f"{'n':>5s} {'k':>3s} {'centroid':>12s} {'optimal':>12s}"
        f" {'full':>12s} {'status':>8s}"
    )
    for n, k, centroid, optimal, full in result.entries:
        status = "OPT" if centroid == optimal else f"+{centroid - optimal}"
        lines.append(
            f"{n:>5d} {k:>3d} {centroid:>12d} {optimal:>12d} {full:>12d}"
            f" {status:>8s}"
        )
    verdict = (
        "centroid tree optimal on the whole grid"
        if result.all_optimal
        else f"mismatches: {result.mismatches()}"
    )
    lines.append(verdict)
    return "\n".join(lines)
