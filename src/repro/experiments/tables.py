"""Regeneration of the paper's Tables 1-8 and the Remark 10 experiment.

Each ``run_*`` function returns a structured result object whose
``render()`` (see :mod:`repro.experiments.report`) prints the same rows the
paper reports; EXPERIMENTS.md records paper-vs-measured values.

Since the scenario refactor these functions are thin adapters: they expand
their table into a :class:`~repro.scenarios.spec.ScenarioSpec` list via
:mod:`repro.scenarios.registry` and execute it through the one scenario
core (:func:`repro.scenarios.core.run_specs`) — serially by default,
across worker processes with ``jobs``/``config``, on the flat tree engine
unless ``engine="object"`` is requested.  Result objects are unchanged
(equality with the historical serial path is pinned by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.presets import Scale, WORKLOADS, get_scale
from repro.network.cost import CostModel, ROUTING_ONLY
from repro.network.simulator import SimulationResult
from repro.parallel.pool import ParallelConfig
from repro.scenarios.core import ScenarioResult, run_specs
from repro.scenarios.registry import (
    REMARK10_KS,
    REMARK10_NS,
    TABLE_WORKLOAD,
    kary_table_specs,
    remark10_specs,
    table8_specs,
)
from repro.workloads.trace import Trace

__all__ = [
    "KAryTableResult",
    "Table8Row",
    "Table8Result",
    "Remark10Result",
    "run_kary_table",
    "run_table8",
    "run_table8_row",
    "run_remark10",
    "TABLE_WORKLOAD",
]

# ----------------------------------------------------------------------
# Tables 1-7: k-ary SplayNet vs static trees, k = 2..10
# ----------------------------------------------------------------------
@dataclass
class KAryTableResult:
    """One of Tables 1-7.

    ``splaynet[k]`` / ``fulltree[k]`` / ``optimal[k]`` are total routing
    costs; ``rotations[k]`` the accumulated rotation counts of the online
    structure.  Ratios follow the paper's conventions (see DESIGN.md).
    """

    workload: str
    n: int
    m: int
    ks: tuple[int, ...]
    splaynet: dict[int, int] = field(default_factory=dict)
    rotations: dict[int, int] = field(default_factory=dict)
    links: dict[int, int] = field(default_factory=dict)
    fulltree: dict[int, int] = field(default_factory=dict)
    optimal: dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def base_cost(self) -> int:
        """Absolute total routing cost of 2-ary SplayNet (the paper's anchor)."""
        return self.splaynet[2]

    def splaynet_ratio(self, k: int) -> float:
        """cost(k-ary SplayNet) / cost(2-ary SplayNet)."""
        return self.splaynet[k] / self.splaynet[2]

    def fulltree_ratio(self, k: int) -> float:
        """cost(k-ary SplayNet) / cost(full k-ary tree)."""
        return self.splaynet[k] / self.fulltree[k]

    def optimal_ratio(self, k: int) -> Optional[float]:
        """cost(k-ary SplayNet) / cost(optimal static k-ary tree)."""
        opt = self.optimal.get(k)
        return None if not opt else self.splaynet[k] / opt


def _assemble_kary_table(
    results: Sequence[ScenarioResult],
    *,
    workload: str,
    n: int,
    m: int,
    ks: tuple[int, ...],
) -> KAryTableResult:
    """Fold scenario cells back into the paper's table shape."""
    table = KAryTableResult(workload=workload, n=n, m=m, ks=ks)
    for cell in results:
        k = cell.spec.k
        if cell.spec.algorithm == "kary-splaynet":
            table.splaynet[k] = cell.total_routing
            table.rotations[k] = cell.total_rotations
            table.links[k] = cell.total_links_changed
        elif cell.spec.algorithm == "full-tree":
            table.fulltree[k] = cell.total_routing
        elif cell.spec.algorithm == "optimal-tree":
            table.optimal[k] = cell.total_routing
        else:  # pragma: no cover - the registry emits exactly these three
            raise ExperimentError(
                f"unexpected algorithm {cell.spec.algorithm!r} in k-ary table"
            )
    for k in ks:
        table.optimal.setdefault(k, None)
    return table


def run_kary_table(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    trace: Optional[Trace] = None,
    ks: Optional[tuple[int, ...]] = None,
    include_optimal: bool = True,
    initial: str = "complete",
    engine: Optional[str] = None,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
    cache: Optional[object] = None,
    refresh: bool = False,
) -> KAryTableResult:
    """Regenerate one of the paper's Tables 1-7 for ``workload``.

    ``trace`` pins an explicit pre-built trace (serial only); otherwise the
    workload is materialized from the scale's coordinates — once per worker,
    thanks to the scenario core's trace memo.  ``cache``/``refresh`` select
    the per-cell result cache (see :func:`repro.scenarios.core.run_specs`).
    """
    scale = scale or get_scale()
    ks = tuple(ks or scale.ks)
    specs = kary_table_specs(
        workload,
        scale,
        n=trace.n if trace is not None else None,
        m=trace.m if trace is not None else None,
        ks=ks,
        include_optimal=include_optimal,
        initial=initial,
        engine=engine,
    )
    traces = {specs[0].trace_key(): trace} if trace is not None else None
    results = run_specs(
        specs, jobs=jobs, config=config, traces=traces, cache=cache, refresh=refresh
    )
    n = trace.n if trace is not None else scale.workload_n(workload)
    m = trace.m if trace is not None else scale.m
    return _assemble_kary_table(results, workload=workload, n=n, m=m, ks=ks)


# ----------------------------------------------------------------------
# Table 8: the centroid heuristic case study (k = 2)
# ----------------------------------------------------------------------
@dataclass
class Table8Row:
    """One workload row of Table 8 (average request cost + ratios)."""

    workload: str
    n: int
    m: int
    centroid3: SimulationResult
    splaynet: SimulationResult
    full_binary_cost: int
    optimal_bst_cost: Optional[int]

    def average_cost(self, model: CostModel = ROUTING_ONLY) -> float:
        """Average request cost of 3-SplayNet under a cost model."""
        return self.centroid3.total_cost(model) / self.m

    def ratio_splaynet(self, model: CostModel = ROUTING_ONLY) -> float:
        """cost(SplayNet) / cost(3-SplayNet); > 1 means 3-SplayNet wins."""
        return self.splaynet.total_cost(model) / self.centroid3.total_cost(model)

    def ratio_full(self, model: CostModel = ROUTING_ONLY) -> float:
        return self.full_binary_cost / self.centroid3.total_cost(model)

    def ratio_optimal(self, model: CostModel = ROUTING_ONLY) -> Optional[float]:
        if self.optimal_bst_cost is None:
            return None
        return self.optimal_bst_cost / self.centroid3.total_cost(model)


@dataclass
class Table8Result:
    """The paper's Table 8: 3-SplayNet vs SplayNet vs static binary trees."""

    rows: list[Table8Row] = field(default_factory=list)

    def row(self, workload: str) -> Table8Row:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 8 row for workload {workload!r}")


def _simulation_result(cell: ScenarioResult) -> SimulationResult:
    """A summary-only SimulationResult from a cell's scalar totals."""
    spec = cell.spec
    return SimulationResult(
        name=f"{spec.algorithm}@{spec.workload}",
        n=spec.n,
        m=spec.m,
        total_routing=cell.total_routing,
        total_rotations=cell.total_rotations,
        total_links_changed=cell.total_links_changed,
        elapsed_seconds=cell.elapsed_seconds,
    )


def _assemble_table8(
    results: Sequence[ScenarioResult], workloads: Sequence[str]
) -> Table8Result:
    by_workload: dict[str, dict[str, ScenarioResult]] = {}
    for cell in results:
        by_workload.setdefault(cell.spec.workload, {})[cell.spec.algorithm] = cell
    table = Table8Result()
    for workload in workloads:
        group = by_workload[workload]
        centroid = group["centroid-splaynet"]
        optimal = group.get("optimal-bst")
        table.rows.append(
            Table8Row(
                workload=workload,
                n=centroid.spec.n,
                m=centroid.spec.m,
                centroid3=_simulation_result(centroid),
                splaynet=_simulation_result(group["splaynet"]),
                full_binary_cost=group["full-tree"].total_routing,
                optimal_bst_cost=optimal.total_routing if optimal else None,
            )
        )
    return table


def run_table8(
    *,
    scale: Optional[Scale] = None,
    workloads: Optional[tuple[str, ...]] = None,
    include_optimal: bool = True,
    engine: Optional[str] = None,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
    cache: Optional[object] = None,
    refresh: bool = False,
) -> Table8Result:
    """Regenerate the full Table 8."""
    scale = scale or get_scale()
    chosen = tuple(workloads or WORKLOADS)
    specs = table8_specs(
        scale, workloads=chosen, include_optimal=include_optimal, engine=engine
    )
    results = run_specs(specs, jobs=jobs, config=config, cache=cache, refresh=refresh)
    return _assemble_table8(results, chosen)


def run_table8_row(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    trace: Optional[Trace] = None,
    include_optimal: bool = True,
    engine: Optional[str] = None,
) -> Table8Row:
    """Compute one row of Table 8 (serial; supports an explicit trace)."""
    scale = scale or get_scale()
    specs = table8_specs(
        scale,
        workloads=(workload,),
        n=trace.n if trace is not None else None,
        m=trace.m if trace is not None else None,
        include_optimal=include_optimal,
        engine=engine,
    )
    traces = {specs[0].trace_key(): trace} if trace is not None else None
    results = run_specs(specs, traces=traces)
    return _assemble_table8(results, (workload,)).rows[0]


# ----------------------------------------------------------------------
# Remark 10 / Remark 37: centroid-tree optimality on the uniform workload
# ----------------------------------------------------------------------
@dataclass
class Remark10Result:
    """Grid of (n, k) → (centroid cost, optimal cost, full-tree cost)."""

    entries: list[tuple[int, int, int, int, int]] = field(default_factory=list)

    @property
    def all_optimal(self) -> bool:
        """Whether the centroid tree matched the DP optimum everywhere."""
        return all(c == o for (_, _, c, o, _) in self.entries)

    def mismatches(self) -> list[tuple[int, int, int, int]]:
        return [
            (n, k, c, o) for (n, k, c, o, _) in self.entries if c != o
        ]


def run_remark10(
    ns: tuple[int, ...] = REMARK10_NS,
    ks: tuple[int, ...] = REMARK10_KS,
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
    cache: Optional[object] = None,
    refresh: bool = False,
) -> Remark10Result:
    """Check centroid-tree optimality against the O(n²k) uniform DP.

    Costs are in unordered-pair units (Σ_{u<v} d(u, v)).
    """
    specs = remark10_specs(ns, ks)
    results = run_specs(specs, jobs=jobs, config=config, cache=cache, refresh=refresh)
    by_cell: dict[tuple[int, int], dict[str, int]] = {}
    for cell in results:
        by_cell.setdefault((cell.spec.n, cell.spec.k), {})[
            cell.spec.algorithm
        ] = cell.total_routing
    result = Remark10Result()
    for k in ks:
        for n in ns:
            costs = by_cell[(n, k)]
            result.entries.append(
                (
                    n,
                    k,
                    costs["centroid-tree-distance"],
                    costs["optimal-uniform-distance"],
                    costs["complete-tree-distance"],
                )
            )
    return result
