"""Regeneration of the paper's Tables 1-8 and the Remark 10 experiment.

Each ``run_*`` function returns a structured result object whose
``render()`` (see :mod:`repro.experiments.report`) prints the same rows the
paper reports; EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.distance import TreeDistanceOracle, trace_static_cost
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.experiments.presets import Scale, get_scale, make_workload
from repro.network.cost import CostModel, ROUTING_ONLY, UNIT_ROTATIONS
from repro.network.simulator import SimulationResult, Simulator
from repro.optimal.general import optimal_static_tree
from repro.optimal.uniform import optimal_uniform_cost
from repro.analysis.distance import total_distance_via_potentials
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.splaynet import SplayNet
from repro.workloads.demand import DemandMatrix
from repro.workloads.trace import Trace

__all__ = [
    "KAryTableResult",
    "Table8Row",
    "Table8Result",
    "Remark10Result",
    "run_kary_table",
    "run_table8",
    "run_remark10",
    "TABLE_WORKLOAD",
]

#: Paper table number → workload name (Tables 1-7).
TABLE_WORKLOAD = {
    1: "hpc",
    2: "projector",
    3: "facebook",
    4: "temporal-0.25",
    5: "temporal-0.5",
    6: "temporal-0.75",
    7: "temporal-0.9",
}


# ----------------------------------------------------------------------
# Tables 1-7: k-ary SplayNet vs static trees, k = 2..10
# ----------------------------------------------------------------------
@dataclass
class KAryTableResult:
    """One of Tables 1-7.

    ``splaynet[k]`` / ``fulltree[k]`` / ``optimal[k]`` are total routing
    costs; ``rotations[k]`` the accumulated rotation counts of the online
    structure.  Ratios follow the paper's conventions (see DESIGN.md).
    """

    workload: str
    n: int
    m: int
    ks: tuple[int, ...]
    splaynet: dict[int, int] = field(default_factory=dict)
    rotations: dict[int, int] = field(default_factory=dict)
    links: dict[int, int] = field(default_factory=dict)
    fulltree: dict[int, int] = field(default_factory=dict)
    optimal: dict[int, Optional[int]] = field(default_factory=dict)

    @property
    def base_cost(self) -> int:
        """Absolute total routing cost of 2-ary SplayNet (the paper's anchor)."""
        return self.splaynet[2]

    def splaynet_ratio(self, k: int) -> float:
        """cost(k-ary SplayNet) / cost(2-ary SplayNet)."""
        return self.splaynet[k] / self.splaynet[2]

    def fulltree_ratio(self, k: int) -> float:
        """cost(k-ary SplayNet) / cost(full k-ary tree)."""
        return self.splaynet[k] / self.fulltree[k]

    def optimal_ratio(self, k: int) -> Optional[float]:
        """cost(k-ary SplayNet) / cost(optimal static k-ary tree)."""
        opt = self.optimal.get(k)
        return None if not opt else self.splaynet[k] / opt


def run_kary_table(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    trace: Optional[Trace] = None,
    ks: Optional[tuple[int, ...]] = None,
    include_optimal: bool = True,
    initial: str = "complete",
) -> KAryTableResult:
    """Regenerate one of the paper's Tables 1-7 for ``workload``."""
    scale = scale or get_scale()
    trace = trace if trace is not None else make_workload(workload, scale)
    ks = ks or scale.ks
    result = KAryTableResult(
        workload=workload, n=trace.n, m=trace.m, ks=tuple(ks)
    )
    demand = DemandMatrix.from_trace(trace)
    sim = Simulator()
    for k in ks:
        run = sim.run(KArySplayNet(trace.n, k, initial=initial), trace)
        result.splaynet[k] = run.total_routing
        result.rotations[k] = run.total_rotations
        result.links[k] = run.total_links_changed
        result.fulltree[k] = trace_static_cost(build_complete_tree(trace.n, k), trace)
        if include_optimal and trace.n <= scale.optimal_tree_max_n:
            opt = optimal_static_tree(demand, k)
            result.optimal[k] = trace_static_cost(opt.tree, trace)
        else:
            result.optimal[k] = None
    return result


# ----------------------------------------------------------------------
# Table 8: the centroid heuristic case study (k = 2)
# ----------------------------------------------------------------------
@dataclass
class Table8Row:
    """One workload row of Table 8 (average request cost + ratios)."""

    workload: str
    n: int
    m: int
    centroid3: SimulationResult
    splaynet: SimulationResult
    full_binary_cost: int
    optimal_bst_cost: Optional[int]

    def average_cost(self, model: CostModel = ROUTING_ONLY) -> float:
        """Average request cost of 3-SplayNet under a cost model."""
        return self.centroid3.total_cost(model) / self.m

    def ratio_splaynet(self, model: CostModel = ROUTING_ONLY) -> float:
        """cost(SplayNet) / cost(3-SplayNet); > 1 means 3-SplayNet wins."""
        return self.splaynet.total_cost(model) / self.centroid3.total_cost(model)

    def ratio_full(self, model: CostModel = ROUTING_ONLY) -> float:
        return self.full_binary_cost / self.centroid3.total_cost(model)

    def ratio_optimal(self, model: CostModel = ROUTING_ONLY) -> Optional[float]:
        if self.optimal_bst_cost is None:
            return None
        return self.optimal_bst_cost / self.centroid3.total_cost(model)


@dataclass
class Table8Result:
    """The paper's Table 8: 3-SplayNet vs SplayNet vs static binary trees."""

    rows: list[Table8Row] = field(default_factory=list)

    def row(self, workload: str) -> Table8Row:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 8 row for workload {workload!r}")


def run_table8_row(
    workload: str,
    *,
    scale: Optional[Scale] = None,
    trace: Optional[Trace] = None,
    include_optimal: bool = True,
) -> Table8Row:
    """Compute one row of Table 8."""
    scale = scale or get_scale()
    trace = trace if trace is not None else make_workload(workload, scale)
    sim = Simulator()
    centroid3 = sim.run(CentroidSplayNet(trace.n, 2), trace)
    splaynet = sim.run(SplayNet(trace.n), trace)
    full_cost = trace_static_cost(build_complete_tree(trace.n, 2), trace)
    optimal_cost: Optional[int] = None
    if include_optimal and trace.n <= scale.optimal_tree_max_n:
        demand = DemandMatrix.from_trace(trace)
        opt = optimal_static_bst(demand)
        optimal_cost = trace_static_cost(opt.network, trace)
    return Table8Row(
        workload=workload,
        n=trace.n,
        m=trace.m,
        centroid3=centroid3,
        splaynet=splaynet,
        full_binary_cost=full_cost,
        optimal_bst_cost=optimal_cost,
    )


def run_table8(
    *,
    scale: Optional[Scale] = None,
    workloads: Optional[tuple[str, ...]] = None,
    include_optimal: bool = True,
) -> Table8Result:
    """Regenerate the full Table 8."""
    from repro.experiments.presets import WORKLOADS

    scale = scale or get_scale()
    result = Table8Result()
    for workload in workloads or WORKLOADS:
        result.rows.append(
            run_table8_row(workload, scale=scale, include_optimal=include_optimal)
        )
    return result


# ----------------------------------------------------------------------
# Remark 10 / Remark 37: centroid-tree optimality on the uniform workload
# ----------------------------------------------------------------------
@dataclass
class Remark10Result:
    """Grid of (n, k) → (centroid cost, optimal cost, full-tree cost)."""

    entries: list[tuple[int, int, int, int, int]] = field(default_factory=list)

    @property
    def all_optimal(self) -> bool:
        """Whether the centroid tree matched the DP optimum everywhere."""
        return all(c == o for (_, _, c, o, _) in self.entries)

    def mismatches(self) -> list[tuple[int, int, int, int]]:
        return [
            (n, k, c, o) for (n, k, c, o, _) in self.entries if c != o
        ]


def run_remark10(
    ns: tuple[int, ...] = (10, 25, 50, 100, 200, 400, 600, 999),
    ks: tuple[int, ...] = (2, 3, 4, 5, 7, 10),
) -> Remark10Result:
    """Check centroid-tree optimality against the O(n²k) uniform DP.

    Costs are in unordered-pair units (Σ_{u<v} d(u, v)).
    """
    result = Remark10Result()
    for k in ks:
        for n in ns:
            centroid = total_distance_via_potentials(build_centroid_tree(n, k)) // 2
            optimal = optimal_uniform_cost(n, k)
            full = total_distance_via_potentials(build_complete_tree(n, k)) // 2
            result.entries.append((n, k, centroid, optimal, full))
    return result
