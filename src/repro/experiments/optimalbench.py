"""Optimal-tree DP subsystem benchmark: before/after + cache trajectory.

Two measurements, recorded together in ``BENCH_optimal_dp.json``:

* **DP before/after** — the historical float64 forward pass
  (:mod:`repro.optimal.legacy`, one cold run per arity, no input sharing)
  against the DP subsystem (exact int64 forward pass sharing one
  :class:`~repro.optimal.context.DemandContext` across the arity sweep),
  on the scale's DP-dominated demand (facebook, n = 1024 at quick scale).
  Costs are cross-checked, so the benchmark doubles as an equivalence
  check at pipeline scale.
* **Result-cache trajectory** — one DP-dominated table campaign run cold
  (empty cache directory, every cell computed and stored) and then warm
  (same directory, cells served from the cache), with the per-cell
  summaries compared for exact equality and the skip fraction recorded.

CPU time (``time.process_time``) is the primary metric, as everywhere in
``benchmarks/results/`` — wall clock on a loaded box is ±15% noisy.
Used by ``python -m repro bench-optimal``.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.presets import get_scale
from repro.optimal.context import DemandContext, clear_context_cache
from repro.optimal.general import optimal_static_cost_table
from repro.optimal.legacy import legacy_optimal_cost_table
from repro.parallel.tasks import clear_trace_cache, materialize_trace_cached
from repro.scenarios.cache import ResultCache
from repro.scenarios.core import ScenarioResult, run_specs
from repro.scenarios.registry import expand
from repro.workloads.demand import DemandMatrix

__all__ = ["DEFAULT_CAMPAIGN", "optimal_dp_benchmark", "write_optimal_record"]

#: The quick-scale campaign dominated by the n=1024 optimal-tree DP
#: (facebook is the workload whose DP the ROADMAP names the long pole).
DEFAULT_CAMPAIGN = "table3"

#: Workload the before/after DP timing runs on (the campaign's).
DEFAULT_WORKLOAD = "facebook"


def _cell_summary(results: Sequence[ScenarioResult]) -> list[tuple]:
    """Order-preserving, timing-free fingerprint of a campaign's results."""
    return [
        (
            r.spec.to_dict(),
            r.total_routing,
            r.total_rotations,
            r.total_links_changed,
        )
        for r in results
    ]


def optimal_dp_benchmark(
    scale: str = "quick",
    *,
    campaign: str = DEFAULT_CAMPAIGN,
    workload: str = DEFAULT_WORKLOAD,
    ks: Optional[Sequence[int]] = None,
    include_legacy: bool = True,
    cache_dir: "str | Path | None" = None,
    verbose: bool = False,
) -> dict:
    """Run both measurements; returns a JSON-serializable record.

    ``ks`` defaults to the scale's arity axis.  ``include_legacy=False``
    skips the (slow) historical forward pass — the record then carries
    only the subsystem timing and the cache trajectory.  ``cache_dir``
    pins the cache directory (default: a temporary directory, so the
    benchmark never pollutes the real cache with its own warm entries).
    """
    scale_obj = get_scale(scale)
    ks = tuple(ks or scale_obj.ks)
    if not ks:
        raise ExperimentError("ks must name at least one arity")
    n = scale_obj.workload_n(workload)
    record: dict = {
        "benchmark": "optimal_dp",
        "config": {
            "scale": scale_obj.name,
            "campaign": campaign,
            "workload": workload,
            "n": n,
            "m": scale_obj.m,
            "seed": scale_obj.seed,
            "ks": list(ks),
            "python": platform.python_version(),
        },
    }

    # ---- DP before/after across the arity sweep ----------------------
    trace = materialize_trace_cached(workload, n, scale_obj.m, scale_obj.seed)
    demand = DemandMatrix.from_trace(trace)
    per_k: dict[str, dict] = {}
    subsystem_costs: dict[int, int] = {}
    context = DemandContext.from_demand(demand)
    subsystem_total = 0.0
    for k in ks:
        if verbose:
            print(f"[bench-optimal] subsystem DP k={k} ...", flush=True)
        cpu0 = time.process_time()
        subsystem_costs[k] = optimal_static_cost_table(demand, k, context=context)
        cpu = time.process_time() - cpu0
        subsystem_total += cpu
        per_k[str(k)] = {"subsystem_cpu_seconds": cpu}
    dp: dict = {
        "per_k": per_k,
        "subsystem_cpu_seconds": subsystem_total,
    }
    if include_legacy:
        legacy_total = 0.0
        costs_match = True
        for k in ks:
            if verbose:
                print(f"[bench-optimal] legacy DP k={k} ...", flush=True)
            cpu0 = time.process_time()
            legacy_cost = legacy_optimal_cost_table(demand, k)
            cpu = time.process_time() - cpu0
            legacy_total += cpu
            per_k[str(k)]["legacy_cpu_seconds"] = cpu
            if int(round(legacy_cost)) != subsystem_costs[k]:
                costs_match = False
        dp["legacy_cpu_seconds"] = legacy_total
        dp["speedup_subsystem_over_legacy"] = (
            legacy_total / subsystem_total if subsystem_total else float("inf")
        )
        dp["costs_match"] = costs_match
    record["dp"] = dp

    # ---- result-cache trajectory on the DP-dominated campaign --------
    specs = expand(campaign, scale_obj)
    with tempfile.TemporaryDirectory(prefix="bench-optimal-cache-") as tmp:
        root = Path(cache_dir) if cache_dir is not None else Path(tmp)
        runs: dict[str, dict] = {}
        summaries: dict[str, list] = {}
        for phase in ("cold", "warm"):
            if verbose:
                print(
                    f"[bench-optimal] {phase} campaign {campaign} "
                    f"({len(specs)} cells) ...",
                    flush=True,
                )
            # Cold means cold end to end: no warm trace/demand/context
            # memos left over from the DP timing above.
            clear_trace_cache()
            clear_context_cache()
            cache = ResultCache(root)
            cpu0 = time.process_time()
            wall0 = time.perf_counter()
            results = run_specs(specs, cache=cache)
            runs[phase] = {
                "cpu_seconds": time.process_time() - cpu0,
                "wall_seconds": time.perf_counter() - wall0,
                "cache_hits": cache.hits,
                "cache_stores": cache.stores,
            }
            summaries[phase] = _cell_summary(results)
        record["cache"] = {
            "campaign": campaign,
            "cells": len(specs),
            "cold": runs["cold"],
            "warm": runs["warm"],
            "warm_skipped_cells": runs["warm"]["cache_hits"],
            "skip_fraction": (
                runs["warm"]["cache_hits"] / len(specs) if specs else 0.0
            ),
            "summaries_match": summaries["cold"] == summaries["warm"],
            "speedup_warm_over_cold": (
                runs["cold"]["cpu_seconds"] / runs["warm"]["cpu_seconds"]
                if runs["warm"]["cpu_seconds"]
                else float("inf")
            ),
        }
    return record


def write_optimal_record(record: dict, path: "str | Path") -> Path:
    """Persist a benchmark record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out
