"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidTreeError",
    "RotationError",
    "RoutingError",
    "WorkloadError",
    "OptimizationError",
    "ExperimentError",
    "EngineError",
    "ReliabilityError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidTreeError(ReproError):
    """A k-ary search tree network violates a structural invariant.

    Raised by :meth:`repro.core.tree.KAryTreeNetwork.validate` and by
    constructors that receive inconsistent node wiring.
    """


class RotationError(ReproError):
    """A rotation was requested on nodes where it is not applicable.

    Examples: ``k-semi-splay`` on nodes that are not in a parent/child
    relation, or ``k-splay`` on fewer than three chained nodes.
    """


class RoutingError(ReproError):
    """Greedy local routing failed to make progress toward the target."""


class WorkloadError(ReproError):
    """A trace or demand matrix is malformed (bad ids, self-loops, shape)."""


class OptimizationError(ReproError):
    """An offline optimization (DP) received infeasible input."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""


class EngineError(ReproError):
    """An unknown or unsupported tree-engine backend was requested."""


class ReliabilityError(ReproError):
    """A fault-tolerance guarantee could not be upheld.

    Raised by the reliability layer (:mod:`repro.reliability`) when
    recovery is impossible or corruption is detected: a task exceeded its
    retry budget or timeout, the worker pool kept dying across respawns,
    a restored checkpoint failed its post-restore audit, or a resume was
    requested without a readable campaign record.
    """


class FaultInjected(ReliabilityError):
    """Marker raised by a deterministic injected fault (never organically).

    The fault-injection harness (:mod:`repro.reliability.faults`) raises
    this from its named injection points so tests and CI can tell an
    injected failure apart from a real one.  Production code treats it as
    any other transient failure — retry/recovery paths must absorb it.
    """
