"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidTreeError",
    "RotationError",
    "RoutingError",
    "WorkloadError",
    "OptimizationError",
    "ExperimentError",
    "EngineError",
    "ReliabilityError",
    "FaultInjected",
    "IngressError",
    "IngressProtocolError",
    "IngressConnectionError",
    "IngressOverload",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidTreeError(ReproError):
    """A k-ary search tree network violates a structural invariant.

    Raised by :meth:`repro.core.tree.KAryTreeNetwork.validate` and by
    constructors that receive inconsistent node wiring.
    """


class RotationError(ReproError):
    """A rotation was requested on nodes where it is not applicable.

    Examples: ``k-semi-splay`` on nodes that are not in a parent/child
    relation, or ``k-splay`` on fewer than three chained nodes.
    """


class RoutingError(ReproError):
    """Greedy local routing failed to make progress toward the target."""


class WorkloadError(ReproError):
    """A trace or demand matrix is malformed (bad ids, self-loops, shape)."""


class OptimizationError(ReproError):
    """An offline optimization (DP) received infeasible input."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent."""


class EngineError(ReproError):
    """An unknown or unsupported tree-engine backend was requested."""


class ReliabilityError(ReproError):
    """A fault-tolerance guarantee could not be upheld.

    Raised by the reliability layer (:mod:`repro.reliability`) when
    recovery is impossible or corruption is detected: a task exceeded its
    retry budget or timeout, the worker pool kept dying across respawns,
    a restored checkpoint failed its post-restore audit, or a resume was
    requested without a readable campaign record.
    """


class IngressError(ReproError):
    """Base class for the socket ingress gateway (:mod:`repro.ingress`)."""


class IngressProtocolError(IngressError):
    """A malformed, truncated or version-mismatched wire frame.

    Raised on either side of the connection when the length-prefixed
    framing cannot be decoded: bad magic, unsupported protocol version,
    unknown opcode/status, or a frame that ends mid-field.
    """


class IngressConnectionError(IngressError):
    """The gateway connection failed (refused, reset, or closed mid-reply).

    The *retryable* ingress failure: :class:`repro.ingress.IngressClient`
    reconnects and re-sends under its
    :class:`~repro.reliability.retry.RetryPolicy` when it sees this.
    """


class IngressOverload(IngressError):
    """The server load-shed this request (explicit ``OVERLOAD`` response).

    Sent when admission control rejects a request (too many in flight),
    a shard's circuit breaker is open, or its deadline expired while
    queued — never a silent drop.  The request was *not* served; the
    caller may back off and resend.  :attr:`retry_after` carries the
    server's suggested resubmission delay in seconds (0.0 = no hint,
    e.g. for draining/admission sheds).
    """

    def __init__(self, message: str = "", *, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class FaultInjected(ReliabilityError):
    """Marker raised by a deterministic injected fault (never organically).

    The fault-injection harness (:mod:`repro.reliability.faults`) raises
    this from its named injection points so tests and CI can tell an
    injected failure apart from a real one.  Production code treats it as
    any other transient failure — retry/recovery paths must absorb it.
    """
