"""Shared access interface for the self-adjusting tree data structures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["AccessResult", "SelfAdjustingTree"]


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one access (search from the root).

    Attributes
    ----------
    cost:
        Number of nodes inspected on the downward search, i.e. the depth of
        the node containing the key plus one.  This is the standard splay
        tree cost measure ([24] charges ``depth + 1`` per access).
    rotations:
        Restructuring steps performed while self-adjusting.
    """

    cost: int
    rotations: int = 0

    def __add__(self, other: "AccessResult") -> "AccessResult":
        return AccessResult(self.cost + other.cost, self.rotations + other.rotations)


@runtime_checkable
class SelfAdjustingTree(Protocol):
    """A dictionary-shaped tree serving root accesses."""

    def access(self, key: int) -> AccessResult:
        """Search ``key`` from the root, self-adjust, report the cost."""
        ...

    def __contains__(self, key: int) -> bool: ...

    def __len__(self) -> int: ...
