"""The Allen–Munro move-to-root heuristic (1978).

Rotates the accessed node to the root with *single* rotations only — the
"obvious" self-adjusting rule that predates splay trees.  It is good on
independent skewed distributions (it converges to roughly the optimal static
tree order) but famously **not** amortized-efficient: alternating accesses
to two deep keys, or a cyclic scan, keep the tree degenerate and cost Θ(n)
per access where splaying pays O(log n) amortized.

Benchmarks pair it with :class:`~repro.datastructures.splay_tree.SplayTree`
to show that the zig-zig/zig-zag case analysis — which the paper's k-splay
rotations carefully mirror (Theorem 12's proof maps each k-rotation onto a
splay-tree case) — is what buys the amortized bounds, not merely moving hot
nodes up.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datastructures.protocols import AccessResult
from repro.datastructures.splay_tree import SplayNode, SplayTree
from repro.errors import ReproError

__all__ = ["MoveToRootTree"]


class MoveToRootTree(SplayTree):
    """A BST that rotates the accessed node to the root one step at a time.

    Shares the node layout, validation and statistics of
    :class:`SplayTree`; only the restructuring discipline differs.
    """

    def __init__(self, keys: Sequence[int]) -> None:
        super().__init__(keys, semi=False)

    def access(self, key: int) -> AccessResult:
        node: Optional[SplayNode] = self.root
        cost = 0
        target: Optional[SplayNode] = None
        while node is not None:
            cost += 1
            if key == node.key:
                target = node
                break
            node = node.left if key < node.key else node.right
        if target is None:
            raise ReproError(f"key {key} not in tree")
        rotations = 0
        while target.parent is not None:
            self._rotate_up(target)
            rotations += 1
        self.total_cost += cost
        self.total_rotations += rotations
        self.accesses += 1
        return AccessResult(cost, rotations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MoveToRootTree(n={len(self)})"
