"""The Sleator–Tarjan binary splay tree [24].

This is the *data structure* that SplayNet generalizes to networks and whose
Access Lemma the paper's Theorem 12 transfers to the k-ary rotations.  We
implement the full rotate-to-root discipline (zig, zig-zig, zig-zag), the
semi-splaying variant ([24] Section 3), and keep per-access statistics so
benchmarks can compare against the entropy lower bound.

Keys are arbitrary integers (no contiguity requirement — this is a data
structure, not a network; contrast :class:`repro.core.tree.KAryTreeNetwork`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.datastructures.protocols import AccessResult
from repro.errors import ReproError

__all__ = ["SplayTree", "SplayNode"]


class SplayNode:
    """One binary node; plain container, all logic lives in the tree."""

    __slots__ = ("key", "left", "right", "parent")

    def __init__(self, key: int) -> None:
        self.key = key
        self.left: Optional[SplayNode] = None
        self.right: Optional[SplayNode] = None
        self.parent: Optional[SplayNode] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplayNode({self.key})"


def _build_balanced(keys: Sequence[int], lo: int, hi: int) -> Optional[SplayNode]:
    if lo > hi:
        return None
    mid = (lo + hi) // 2
    node = SplayNode(keys[mid])
    node.left = _build_balanced(keys, lo, mid - 1)
    node.right = _build_balanced(keys, mid + 1, hi)
    if node.left is not None:
        node.left.parent = node
    if node.right is not None:
        node.right.parent = node
    return node


class SplayTree:
    """A self-adjusting binary search tree with rotate-to-root splaying.

    Parameters
    ----------
    keys:
        Initial key set; built balanced.  Duplicates are rejected.
    semi:
        If true, :meth:`access` uses *semi-splaying*: zig-zig steps only
        rotate the parent (halving the access path's depth) instead of
        carrying the accessed node all the way to the root.  Same O(log n)
        amortized bound, gentler restructuring ([24] Section 3).
    """

    def __init__(self, keys: Sequence[int], *, semi: bool = False) -> None:
        ordered = sorted(keys)
        for a, b in zip(ordered, ordered[1:]):
            if a == b:
                raise ReproError(f"duplicate key {a}")
        self.root: Optional[SplayNode] = _build_balanced(
            ordered, 0, len(ordered) - 1
        )
        self.semi = semi
        self._size = len(ordered)
        #: accumulated statistics (reset with :meth:`reset_stats`)
        self.total_cost = 0
        self.total_rotations = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        node = self.root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def keys(self) -> Iterator[int]:
        """In-order key iteration (always sorted — the search property)."""

        def visit(node: Optional[SplayNode]) -> Iterator[int]:
            if node is None:
                return
            yield from visit(node.left)
            yield node.key
            yield from visit(node.right)

        yield from visit(self.root)

    def height(self) -> int:
        """Longest root-to-leaf path in edges (−1 for the empty tree)."""
        best = -1
        stack = [(self.root, 0)] if self.root else []
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            if node.left:
                stack.append((node.left, d + 1))
            if node.right:
                stack.append((node.right, d + 1))
        return best

    def depth_of(self, key: int) -> int:
        """Current depth of ``key`` (root = 0); raises if absent."""
        node = self.root
        depth = 0
        while node is not None:
            if key == node.key:
                return depth
            node = node.left if key < node.key else node.right
            depth += 1
        raise ReproError(f"key {key} not in tree")

    # ------------------------------------------------------------------
    # rotations
    # ------------------------------------------------------------------
    def _rotate_up(self, x: SplayNode) -> None:
        """Single rotation lifting ``x`` above its parent."""
        p = x.parent
        if p is None:
            raise ReproError("cannot rotate the root")
        g = p.parent
        if p.left is x:
            p.left = x.right
            if x.right is not None:
                x.right.parent = p
            x.right = p
        else:
            p.right = x.left
            if x.left is not None:
                x.left.parent = p
            x.left = p
        p.parent = x
        x.parent = g
        if g is None:
            self.root = x
        elif g.left is p:
            g.left = x
        else:
            g.right = x

    def _splay(self, x: SplayNode) -> int:
        """Full splay of ``x`` to the root; returns rotation count."""
        rotations = 0
        while x.parent is not None:
            p = x.parent
            g = p.parent
            if g is None:  # zig
                self._rotate_up(x)
                rotations += 1
            elif (g.left is p) == (p.left is x):  # zig-zig
                self._rotate_up(p)
                self._rotate_up(x)
                rotations += 2
            else:  # zig-zag
                self._rotate_up(x)
                self._rotate_up(x)
                rotations += 2
        return rotations

    def _semi_splay(self, x: SplayNode) -> int:
        """Semi-splay: on zig-zig rotate only the parent, continue from it."""
        rotations = 0
        while x.parent is not None:
            p = x.parent
            g = p.parent
            if g is None:
                self._rotate_up(x)
                rotations += 1
                break
            if (g.left is p) == (p.left is x):  # zig-zig: lift p, resume at p
                self._rotate_up(p)
                rotations += 1
                x = p
            else:  # zig-zag: as in full splaying
                self._rotate_up(x)
                self._rotate_up(x)
                rotations += 2
        return rotations

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def access(self, key: int) -> AccessResult:
        """Search ``key`` from the root and splay it (or its last-visited
        ancestor, under semi-splaying) upward."""
        node = self.root
        cost = 0
        target: Optional[SplayNode] = None
        while node is not None:
            cost += 1
            if key == node.key:
                target = node
                break
            node = node.left if key < node.key else node.right
        if target is None:
            raise ReproError(f"key {key} not in tree")
        rotations = self._semi_splay(target) if self.semi else self._splay(target)
        self.total_cost += cost
        self.total_rotations += rotations
        self.accesses += 1
        return AccessResult(cost, rotations)

    def insert(self, key: int) -> None:
        """Insert ``key`` (splays it to the root); duplicate keys rejected."""
        if self.root is None:
            self.root = SplayNode(key)
            self._size = 1
            return
        node = self.root
        while True:
            if key == node.key:
                raise ReproError(f"duplicate key {key}")
            nxt = node.left if key < node.key else node.right
            if nxt is None:
                fresh = SplayNode(key)
                fresh.parent = node
                if key < node.key:
                    node.left = fresh
                else:
                    node.right = fresh
                self._size += 1
                self._splay(fresh)
                return
            node = nxt

    def delete(self, key: int) -> None:
        """Delete ``key``: splay it to the root, then join the subtrees."""
        self.access(key)
        assert self.root is not None and self.root.key == key
        left, right = self.root.left, self.root.right
        if left is not None:
            left.parent = None
        if right is not None:
            right.parent = None
        if left is None:
            self.root = right
        else:
            # splay the maximum of the left subtree to its root; it has no
            # right child afterwards, so the right subtree hangs there
            node = left
            while node.right is not None:
                node = node.right
            save_root, self.root = self.root, left
            self._splay(node)
            node.right = right
            if right is not None:
                right.parent = node
            del save_root
        self._size -= 1

    def reset_stats(self) -> None:
        self.total_cost = 0
        self.total_rotations = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the BST property and parent-pointer consistency."""
        count = 0
        prev: Optional[int] = None
        stack: list[tuple[SplayNode, bool]] = (
            [(self.root, False)] if self.root else []
        )
        if self.root is not None and self.root.parent is not None:
            raise ReproError("root has a parent")
        # iterative in-order with parent checks
        node = self.root
        trail: list[SplayNode] = []
        while node is not None or trail:
            while node is not None:
                if node.left is not None and node.left.parent is not node:
                    raise ReproError(f"bad parent pointer under {node.key}")
                if node.right is not None and node.right.parent is not node:
                    raise ReproError(f"bad parent pointer under {node.key}")
                trail.append(node)
                node = node.left
            node = trail.pop()
            if prev is not None and node.key <= prev:
                raise ReproError(
                    f"search property violated: {node.key} after {prev}"
                )
            prev = node.key
            count += 1
            node = node.right
        if count != self._size:
            raise ReproError(f"size mismatch: walked {count}, recorded {self._size}")
        del stack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "semi" if self.semi else "full"
        return f"SplayTree(n={self._size}, mode={mode})"
