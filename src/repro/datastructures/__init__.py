"""Classic self-adjusting *data structures* (keys move; nodes have no identity).

The paper's Section 1/4.1 distinguishes k-ary search tree *networks* (each
tree node is a physical rack with a permanent identifier) from k-ary search
tree *data structures* à la Sherk [23] and Martel [18], where keys migrate
between nodes during restructuring and therefore cannot serve as node
addresses.  This package implements the data-structure side of that
contrast:

* :class:`~repro.datastructures.splay_tree.SplayTree` — the Sleator–Tarjan
  binary splay tree [24], the base of SplayNet's analysis and the anchor of
  Theorem 12's static-optimality claim.
* :class:`~repro.datastructures.move_to_root.MoveToRootTree` — the
  Allen–Munro move-to-root heuristic, the classic strawman that is *not*
  statically optimal (its expected cost blows up on adversarial access
  distributions); benchmarks use it to show splaying's work is necessary.
* :class:`~repro.datastructures.sherk.SherkKarySplayTree` — a k-ary splay
  tree in Sherk's style: nodes hold up to ``k-1`` keys, and a ``k``-splay
  access merges-and-redistributes key blocks along the access path.  Its
  :meth:`~repro.datastructures.sherk.SherkKarySplayTree.key_locations`
  method makes the key-migration phenomenon observable — the exact property
  that rules it out as a network (Section 1).

All three expose ``access(key) -> AccessResult`` with the standard
"nodes inspected" cost, so they can be driven by the same harness.
"""

from repro.datastructures.move_to_root import MoveToRootTree
from repro.datastructures.protocols import AccessResult, SelfAdjustingTree
from repro.datastructures.sherk import SherkKarySplayTree
from repro.datastructures.splay_tree import SplayTree

__all__ = [
    "AccessResult",
    "SelfAdjustingTree",
    "SplayTree",
    "MoveToRootTree",
    "SherkKarySplayTree",
]
