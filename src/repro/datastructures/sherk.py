"""A k-ary splay tree with migrating keys, in the style of Sherk [23].

Nodes hold up to ``k - 1`` sorted keys and ``#keys + 1`` child slots, like a
B-tree node.  Accessing a key searches from the root and then repeatedly
*merges* the key's node with its parent and re-splits the merged block: a
window of up to ``k - 1`` consecutive keys containing the accessed key
becomes the new top node, and the left/right remainders become its outer
children.  Each step lifts the accessed key one level, so it reaches the
root in O(depth) steps — the multiway analogue of move-to-root, and the
core mechanism of self-adjusting k-ary search trees in the data-structure
literature.

Why this cannot be a network (the paper's Section 1 argument, made
executable): the merge-and-split moves *keys between nodes*.  After a few
accesses, :meth:`SherkKarySplayTree.key_locations` shows keys sitting in
different physical nodes than where they started — so a key cannot serve as
a rack's permanent address.  The paper's k-splay rotations
(:mod:`repro.core.rotations`) solve exactly this: node identifiers stay
put and only the *routing arrays* are reshuffled.  Tests pin the migration
behaviour as a regression-proof demonstration.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from repro.datastructures.protocols import AccessResult
from repro.errors import ReproError

__all__ = ["SherkKarySplayTree", "MultiwayNode"]


class MultiwayNode:
    """A multiway node: sorted keys plus ``len(keys) + 1`` child slots.

    ``serial`` is a birth certificate used only to *observe* key migration
    (it plays no role in the algorithm — that is the point).
    """

    __slots__ = ("keys", "children", "parent", "serial")

    _counter = itertools.count(1)

    def __init__(self, keys: list[int], children: Optional[list[Optional["MultiwayNode"]]] = None) -> None:
        if not keys:
            raise ReproError("a multiway node needs at least one key")
        self.keys = keys
        self.children: list[Optional[MultiwayNode]] = (
            children if children is not None else [None] * (len(keys) + 1)
        )
        if len(self.children) != len(keys) + 1:
            raise ReproError(
                f"node with {len(keys)} keys needs {len(keys) + 1} child slots,"
                f" got {len(self.children)}"
            )
        self.parent: Optional[MultiwayNode] = None
        self.serial = next(MultiwayNode._counter)
        for child in self.children:
            if child is not None:
                child.parent = self

    def slot_of_child(self, child: "MultiwayNode") -> int:
        for slot, candidate in enumerate(self.children):
            if candidate is child:
                return slot
        raise ReproError(f"node {self.serial} is not a child of {self.serial}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultiwayNode#{self.serial}({self.keys})"


def _build(keys: Sequence[int], k: int) -> Optional[MultiwayNode]:
    """Balanced multiway build: k-1 evenly spaced separators per node."""
    if not keys:
        return None
    if len(keys) <= k - 1:
        return MultiwayNode(list(keys))
    # choose k-1 separator positions splitting into k near-equal groups
    total = len(keys)
    boundaries = [round((i + 1) * (total + 1) / k) - 1 for i in range(k - 1)]
    # clamp into strictly increasing valid index range
    cleaned: list[int] = []
    prev = -1
    for b in boundaries:
        b = max(prev + 1, min(b, total - (k - 1 - len(cleaned))))
        cleaned.append(b)
        prev = b
    node_keys = [keys[b] for b in cleaned]
    children: list[Optional[MultiwayNode]] = []
    start = 0
    for b in cleaned:
        children.append(_build(keys[start:b], k))
        start = b + 1
    children.append(_build(keys[start:], k))
    return MultiwayNode(node_keys, children)


class SherkKarySplayTree:
    """Self-adjusting k-ary search tree where restructuring moves keys.

    Parameters
    ----------
    keys:
        Initial key set (built balanced, B-tree style).
    k:
        Arity: at most ``k - 1`` keys and ``k`` children per node.
    window_policy:
        Where to place the promoted key inside the new top node's window:
        ``"center"`` (default) or ``"left"``/``"right"`` edges — mirrors the
        block policies of the network rotations for the policy ablation.
    """

    def __init__(self, keys: Sequence[int], k: int, *, window_policy: str = "center") -> None:
        if k < 2:
            raise ReproError(f"arity k must be >= 2, got {k}")
        if window_policy not in ("center", "left", "right"):
            raise ReproError(f"unknown window policy {window_policy!r}")
        ordered = sorted(keys)
        for a, b in zip(ordered, ordered[1:]):
            if a == b:
                raise ReproError(f"duplicate key {a}")
        self.k = k
        self.window_policy = window_policy
        self.root = _build(ordered, k)
        self._size = len(ordered)
        self.total_cost = 0
        self.total_rotations = 0
        self.accesses = 0

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        node = self.root
        while node is not None:
            if key in node.keys:
                return True
            node = node.children[self._descend_slot(node, key)]
        return False

    @staticmethod
    def _descend_slot(node: MultiwayNode, key: int) -> int:
        slot = 0
        while slot < len(node.keys) and key > node.keys[slot]:
            slot += 1
        return slot

    def keys(self) -> Iterator[int]:
        """In-order key iteration (sorted iff the search property holds)."""

        def visit(node: Optional[MultiwayNode]) -> Iterator[int]:
            if node is None:
                return
            for slot, key in enumerate(node.keys):
                yield from visit(node.children[slot])
                yield key
            yield from visit(node.children[-1])

        yield from visit(self.root)

    def key_locations(self) -> dict[int, int]:
        """Map of key → serial of the physical node currently holding it.

        After accesses this mapping changes — the executable witness that
        keys cannot double as permanent node identifiers.
        """
        out: dict[int, int] = {}
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            for key in node.keys:
                out[key] = node.serial
            for child in node.children:
                if child is not None:
                    stack.append(child)
        return out

    def node_count(self) -> int:
        count = 0
        stack = [self.root] if self.root else []
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(c for c in node.children if c is not None)
        return count

    def depth_of(self, key: int) -> int:
        node = self.root
        depth = 0
        while node is not None:
            if key in node.keys:
                return depth
            node = node.children[self._descend_slot(node, key)]
            depth += 1
        raise ReproError(f"key {key} not in tree")

    def height(self) -> int:
        best = -1
        stack = [(self.root, 0)] if self.root else []
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in node.children:
                if child is not None:
                    stack.append((child, d + 1))
        return best

    # ------------------------------------------------------------------
    # the k-splay access
    # ------------------------------------------------------------------
    def access(self, key: int) -> AccessResult:
        """Search ``key`` and k-splay its node to the root by merge-splits."""
        node = self.root
        cost = 0
        target: Optional[MultiwayNode] = None
        while node is not None:
            cost += 1
            if key in node.keys:
                target = node
                break
            node = node.children[self._descend_slot(node, key)]
        if target is None:
            raise ReproError(f"key {key} not in tree")
        rotations = 0
        while target.parent is not None:
            target = self._merge_split(target, key)
            rotations += 1
        self.total_cost += cost
        self.total_rotations += rotations
        self.accesses += 1
        return AccessResult(cost, rotations)

    def _window_start(self, pos: int, width: int, total: int) -> int:
        """Window start index so the window covers ``pos`` under the policy."""
        lo = max(0, pos - width + 1)
        hi = min(pos, total - width)
        if self.window_policy == "left":
            start = pos  # key at the window's left edge
        elif self.window_policy == "right":
            start = pos - width + 1
        else:
            start = pos - (width - 1) // 2
        return max(lo, min(start, hi))

    def _merge_split(self, node: MultiwayNode, key: int) -> MultiwayNode:
        """Merge ``node`` into its parent and re-split around ``key``.

        Returns the new top node (which contains ``key`` and occupies the
        parent's former position).
        """
        parent = node.parent
        assert parent is not None
        grand = parent.parent
        gslot = grand.slot_of_child(parent) if grand is not None else -1
        slot = parent.slot_of_child(node)

        # merge: splice node's keys/children into the parent's slot
        merged_keys = parent.keys[:slot] + node.keys + parent.keys[slot:]
        merged_children = (
            parent.children[:slot] + node.children + parent.children[slot + 1 :]
        )
        total = len(merged_keys)
        pos = merged_keys.index(key)
        width = min(self.k - 1, total)
        start = self._window_start(pos, width, total)

        top_keys = merged_keys[start : start + width]
        # interior children of the window
        interior = merged_children[start + 1 : start + width]
        left_keys = merged_keys[:start]
        right_keys = merged_keys[start + width :]

        if left_keys:
            left_node: Optional[MultiwayNode] = MultiwayNode(
                left_keys, merged_children[: start + 1]
            )
        else:
            left_node = merged_children[0]
        if right_keys:
            right_node: Optional[MultiwayNode] = MultiwayNode(
                right_keys, merged_children[start + width :]
            )
        else:
            right_node = merged_children[-1]

        top = MultiwayNode(top_keys, [left_node] + interior + [right_node])
        top.parent = grand
        if grand is None:
            self.root = top
        else:
            grand.children[gslot] = top
        return top

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check arity bounds, parent wiring and the global search property."""
        if self.root is None:
            if self._size:
                raise ReproError("empty tree with nonzero recorded size")
            return
        if self.root.parent is not None:
            raise ReproError("root has a parent")
        walked = list(self.keys())
        if walked != sorted(walked):
            raise ReproError("search property violated (in-order not sorted)")
        if len(walked) != self._size:
            raise ReproError(
                f"size mismatch: walked {len(walked)}, recorded {self._size}"
            )
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not 1 <= len(node.keys) <= self.k - 1:
                raise ReproError(
                    f"node #{node.serial} holds {len(node.keys)} keys; arity {self.k}"
                    f" allows 1..{self.k - 1}"
                )
            if node.keys != sorted(node.keys):
                raise ReproError(f"node #{node.serial} keys not sorted")
            if len(node.children) != len(node.keys) + 1:
                raise ReproError(f"node #{node.serial} slot count mismatch")
            for child in node.children:
                if child is not None:
                    if child.parent is not node:
                        raise ReproError(
                            f"node #{child.serial} has a stale parent pointer"
                        )
                    stack.append(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SherkKarySplayTree(n={self._size}, k={self.k})"
