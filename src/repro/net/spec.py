"""Declarative network construction: the frozen :class:`NetworkSpec`.

The paper studies one object — a self-adjusting network serving an online
request stream — yet historically this repository needed four constructors,
two engines and three policy wrappers composed by hand to produce one.  A
:class:`NetworkSpec` names any such composition as *data*: the algorithm
(a key of the :mod:`repro.net.registry`), the size and arity, the tree
engine, the initial topology, free-form algorithm parameters, and an
optional chain of adjustment-policy wrappers.  Like
:class:`~repro.scenarios.spec.ScenarioSpec` it is frozen, hashable and
round-trips losslessly through JSON, so network configurations can be
exported, diffed and rebuilt anywhere (including inside worker processes).

``NetworkSpec`` describes *construction only* — traffic coordinates live in
:class:`~repro.scenarios.spec.ScenarioSpec`, which bridges to this layer.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.core.engine import ENGINES
from repro.errors import ExperimentError

__all__ = ["NetworkSpec", "PolicySpec", "freeze_params"]

#: Parameter values a spec may carry: JSON scalars only, so every spec
#: stays hashable and survives the JSON round-trip unchanged.
_SCALAR_TYPES = (bool, int, float, str, type(None))

ParamsLike = Union[Mapping[str, Any], "tuple[tuple[str, Any], ...]", None]


def freeze_params(params: ParamsLike) -> tuple[tuple[str, Any], ...]:
    """Normalize a parameter mapping to a sorted, hashable tuple of pairs.

    Accepts a mapping, an already-frozen pair tuple, or ``None``; rejects
    non-scalar values (they would break hashing and JSON round-tripping).
    """
    if params is None:
        return ()
    items = list(params.items()) if isinstance(params, Mapping) else list(params)
    frozen = []
    for pair in items:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            raise ExperimentError(
                f"params entries must be (name, value) pairs, got {pair!r}"
            )
        name, value = pair
        if not isinstance(name, str):
            raise ExperimentError(f"param names must be strings, got {name!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ExperimentError(
                f"param {name!r} must be a JSON scalar, got {type(value).__name__}"
            )
        frozen.append((name, value))
    frozen.sort()
    names = [name for name, _ in frozen]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate param names in {names}")
    return tuple(frozen)


@dataclass(frozen=True)
class PolicySpec:
    """One adjustment-policy wrapper in a spec's chain.

    Attributes
    ----------
    policy:
        A key of :data:`repro.net.registry.POLICY_WRAPPERS`
        (``"thresholded"``, ``"probabilistic"``, ``"frozen"``, or a
        user-registered name).
    params:
        Keyword arguments for the wrapper (e.g. ``threshold`` or ``q``),
        frozen to sorted pairs.
    """

    policy: str
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.policy:
            raise ExperimentError("policy name must be non-empty")
        object.__setattr__(self, "params", freeze_params(self.params))

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"policy": self.policy, "params": self.params_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicySpec":
        unknown = set(data) - {"policy", "params"}
        if unknown:
            raise ExperimentError(f"unknown PolicySpec fields {sorted(unknown)}")
        return cls(policy=data["policy"], params=freeze_params(data.get("params")))


def _coerce_policies(policies: Any) -> tuple[PolicySpec, ...]:
    """Normalize the ``policies`` field: specs, dicts or bare names."""
    if policies is None:
        return ()
    if isinstance(policies, (str, PolicySpec, Mapping)):
        policies = (policies,)
    coerced = []
    for item in policies:
        if isinstance(item, PolicySpec):
            coerced.append(item)
        elif isinstance(item, str):
            coerced.append(PolicySpec(item))
        elif isinstance(item, Mapping):
            coerced.append(PolicySpec.from_dict(item))
        else:
            raise ExperimentError(
                f"policies entries must be PolicySpec / name / mapping, got {item!r}"
            )
    return tuple(coerced)


@dataclass(frozen=True)
class NetworkSpec:
    """One network construction, fully described by data.

    Attributes
    ----------
    algorithm:
        A name registered in :mod:`repro.net.registry` (built-ins:
        ``kary-splaynet``, ``centroid-splaynet``, ``splaynet``, ``lazy``,
        ``full-tree``, ``centroid-tree``, ``optimal-tree``,
        ``optimal-bst``).
    n:
        Number of network nodes (identifiers ``1..n``).
    k:
        Tree arity (``>= 2``; the binary baselines ignore it).
    engine:
        Tree-engine backend for engine-capable algorithms (``"object"`` /
        ``"flat"`` / ``"native"``; ``None`` = the process default).
        Ignored by the rest.  ``"native"`` is always a valid spec value —
        construction degrades to ``"flat"`` (with a one-time warning)
        when the compiled kernel is unavailable, so specs round-trip
        between machines with and without a C toolchain.
    initial:
        Initial topology name for the self-adjusting k-ary networks.
    params:
        Algorithm-specific keyword arguments (e.g. ``alpha``/``window``
        for ``lazy``, ``policy``/``splay_depth``/``seed`` for
        ``kary-splaynet``), frozen to sorted ``(name, value)`` pairs.
        Mappings are accepted and normalized.
    policies:
        Adjustment-policy wrapper chain, applied innermost-first: the
        first entry wraps the bare network, the second wraps that, and so
        on.  Entries may be given as :class:`PolicySpec`, plain names or
        mappings.
    """

    algorithm: str
    n: int
    k: int = 2
    engine: Optional[str] = None
    initial: str = "complete"
    params: tuple[tuple[str, Any], ...] = ()
    policies: tuple[PolicySpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        object.__setattr__(self, "policies", _coerce_policies(self.policies))
        if self.n < 1:
            raise ExperimentError(f"n must be >= 1, got {self.n}")
        if self.k < 2:
            raise ExperimentError(f"k must be >= 2, got {self.k}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        # Validated against the live registry (lazy import: the registry
        # imports this module at load time).
        from repro.net.registry import require_algorithm

        require_algorithm(self.algorithm)

    # -- helpers -------------------------------------------------------
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def replace(self, **changes: Any) -> "NetworkSpec":
        """A copy with the given fields changed (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    def bare(self) -> "NetworkSpec":
        """The same spec without its policy chain (the inner network)."""
        return self.replace(policies=())

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON mapping; inverse of :meth:`from_dict`."""
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "k": self.k,
            "engine": self.engine,
            "initial": self.initial,
            "params": self.params_dict(),
            "policies": [policy.to_dict() for policy in self.policies],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ExperimentError(f"unknown NetworkSpec fields {sorted(unknown)}")
        payload = dict(data)
        payload["params"] = freeze_params(payload.get("params"))
        payload["policies"] = _coerce_policies(payload.get("policies"))
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NetworkSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ExperimentError("NetworkSpec JSON must be an object")
        return cls.from_dict(data)
