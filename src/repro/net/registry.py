"""The network construction registry: one way to build any network.

Every network in the repository — the paper's online self-adjusting
structures, the static baselines, the adjustment-policy wrappers, and any
user-registered algorithm — is built through :func:`build_network` from a
:class:`~repro.net.spec.NetworkSpec`.  The experiment layers
(:mod:`repro.parallel.tasks`, :mod:`repro.scenarios`), the CLI and the
examples all construct through here, so adding an algorithm is one
:func:`register_network` call away from every surface at once (scenario
grids, parallel sweeps, sessions, ``repro simulate``).

Built-in algorithms:

====================  ======  ===================================================
``kary-splaynet``     online  :class:`~repro.core.splaynet.KArySplayNet`
``centroid-splaynet`` online  :class:`~repro.core.centroid_splaynet.CentroidSplayNet`
``splaynet``          online  binary :class:`~repro.splaynet.splaynet.SplayNet`
``lazy``              online  :class:`~repro.network.lazy.LazyRebuildNetwork`
``full-tree``         static  complete k-ary tree
``centroid-tree``     static  centroid k-ary tree
``optimal-tree``      static  Theorem 2 DP tree (needs demand)
``optimal-bst``       static  optimal BST network [22] (needs demand)
====================  ======  ===================================================

Static algorithms are wrapped in
:class:`~repro.network.static.StaticTreeNetwork`, so every build result
speaks the same serving interface (``serve`` / ``serve_trace`` /
``distance``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.net.spec import NetworkSpec, PolicySpec
from repro.network.lazy import LazyRebuildNetwork
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.static import StaticTreeNetwork
from repro.splaynet.splaynet import SplayNet
from repro.workloads.demand import DemandMatrix

__all__ = [
    "BuildContext",
    "NetworkAlgorithm",
    "build_network",
    "engine_capable_algorithms",
    "network_algorithm",
    "network_algorithms",
    "online_algorithms",
    "register_network",
    "register_policy",
    "require_algorithm",
    "static_algorithms",
    "unregister_network",
]


@dataclass(frozen=True)
class BuildContext:
    """Demand-side inputs a factory may need beyond the spec itself.

    Only the demand-aware static constructions consume it; online
    algorithms build from the spec alone.  ``demand`` wins over ``trace``
    when both are given (callers holding a memoized matrix pass it
    directly so the trace is never re-counted).
    """

    trace: Optional[Any] = None
    demand: Optional[DemandMatrix] = None

    def require_demand(self, algorithm: str) -> DemandMatrix:
        """The demand matrix, derived from the trace when necessary."""
        if self.demand is not None:
            return self.demand
        if self.trace is not None:
            return DemandMatrix.from_trace(self.trace)
        raise ExperimentError(
            f"{algorithm!r} is demand-aware: pass trace= or demand= to"
            " build_network/open_session"
        )


@dataclass(frozen=True)
class NetworkAlgorithm:
    """One registry entry: a named network construction.

    Attributes
    ----------
    name:
        The registry key (``NetworkSpec.algorithm``).
    factory:
        ``factory(spec, context) -> network``.  The result must implement
        :class:`~repro.network.protocols.SelfAdjustingNetwork`; exposing
        ``serve_trace`` and ``snapshot_state``/``restore_state`` unlocks
        the batched and checkpointing session paths.
    kind:
        ``"online"`` (self-adjusting, simulated request by request) or
        ``"static"`` (built once, costed through the distance oracle).
    engine_capable:
        Whether the factory threads ``spec.engine`` through to the k-ary
        tree-engine backends of :mod:`repro.core.engine`.
    needs_demand:
        Whether the factory reads ``context.require_demand()`` (the
        demand-aware static constructions).
    description:
        One-line summary for listings.
    """

    name: str
    factory: Callable[[NetworkSpec, BuildContext], Any] = field(repr=False)
    kind: str = "online"
    engine_capable: bool = False
    needs_demand: bool = False
    description: str = ""


_REGISTRY: dict[str, NetworkAlgorithm] = {}

#: Policy-wrapper name → ``factory(inner, **params) -> wrapped network``.
POLICY_WRAPPERS: dict[str, Callable[..., Any]] = {}


def register_network(
    name: str,
    factory: Callable[[NetworkSpec, BuildContext], Any],
    *,
    kind: str = "online",
    engine_capable: bool = False,
    needs_demand: bool = False,
    description: str = "",
    replace: bool = False,
) -> NetworkAlgorithm:
    """Register a network algorithm under ``name``; returns the entry.

    Registered names are immediately buildable through
    :func:`build_network`, valid in :class:`~repro.net.spec.NetworkSpec`
    and (for traffic-carrying kinds) in
    :class:`~repro.scenarios.spec.ScenarioSpec` cells.
    """
    if not name:
        raise ExperimentError("algorithm name must be non-empty")
    if kind not in ("online", "static"):
        raise ExperimentError(
            f"kind must be 'online' or 'static', got {kind!r}"
        )
    if name in _REGISTRY and not replace:
        raise ExperimentError(
            f"algorithm {name!r} is already registered (pass replace=True)"
        )
    entry = NetworkAlgorithm(
        name=name,
        factory=factory,
        kind=kind,
        engine_capable=engine_capable,
        needs_demand=needs_demand,
        description=description,
    )
    _REGISTRY[name] = entry
    return entry


def unregister_network(name: str) -> None:
    """Remove a (typically user-registered) algorithm from the registry."""
    _REGISTRY.pop(name, None)


def network_algorithms() -> dict[str, NetworkAlgorithm]:
    """A snapshot of the registry (name → entry)."""
    return dict(_REGISTRY)


def network_algorithm(name: str) -> NetworkAlgorithm:
    """Look up one entry; raises with the known names on a miss."""
    return require_algorithm(name)


def require_algorithm(name: str) -> NetworkAlgorithm:
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ExperimentError(
            f"unknown algorithm {name!r}; choose from {sorted(_REGISTRY)}"
            " or register_network() it first"
        )
    return entry


def online_algorithms() -> frozenset[str]:
    """Names of the self-adjusting (simulated) algorithms."""
    return frozenset(n for n, e in _REGISTRY.items() if e.kind == "online")


def static_algorithms() -> frozenset[str]:
    """Names of the static (oracle-costed) constructions."""
    return frozenset(n for n, e in _REGISTRY.items() if e.kind == "static")


def engine_capable_algorithms() -> frozenset[str]:
    """Names whose factory threads the ``engine=`` backend selection."""
    return frozenset(n for n, e in _REGISTRY.items() if e.engine_capable)


def register_policy(
    name: str, factory: Callable[..., Any], *, replace: bool = False
) -> None:
    """Register a policy wrapper: ``factory(inner, **params) -> network``."""
    if name in POLICY_WRAPPERS and not replace:
        raise ExperimentError(
            f"policy {name!r} is already registered (pass replace=True)"
        )
    POLICY_WRAPPERS[name] = factory


def apply_policies(network: Any, policies: tuple[PolicySpec, ...]) -> Any:
    """Wrap ``network`` in a spec's policy chain, innermost-first."""
    for policy in policies:
        wrapper = POLICY_WRAPPERS.get(policy.policy)
        if wrapper is None:
            raise ExperimentError(
                f"unknown policy {policy.policy!r};"
                f" choose from {sorted(POLICY_WRAPPERS)}"
            )
        network = wrapper(network, **policy.params_dict())
    return network


def build_network(
    spec: Union[NetworkSpec, Mapping[str, Any], str, None] = None,
    *,
    trace: Optional[Any] = None,
    demand: Optional[DemandMatrix] = None,
    **kwargs: Any,
) -> Any:
    """Build any registered network from a spec (the one front door).

    ``spec`` may be a :class:`~repro.net.spec.NetworkSpec`, a mapping of
    its fields, an algorithm name (remaining fields as keyword arguments),
    or ``None`` with everything as keyword arguments::

        build_network(NetworkSpec("kary-splaynet", n=64, k=4))
        build_network({"algorithm": "lazy", "n": 64, "params": {"alpha": 500}})
        build_network("kary-splaynet", n=64, k=4, engine="flat")
        build_network(algorithm="optimal-tree", n=64, k=4, trace=trace)

    ``trace``/``demand`` feed the demand-aware static constructions; other
    algorithms ignore them.  The spec's policy chain is applied to the
    built network, innermost-first.
    """
    spec = coerce_network_spec(spec, **kwargs)
    entry = require_algorithm(spec.algorithm)
    context = BuildContext(trace=trace, demand=demand)
    network = entry.factory(spec, context)
    return apply_policies(network, spec.policies)


def coerce_network_spec(
    spec: Union[NetworkSpec, Mapping[str, Any], str, None] = None,
    **kwargs: Any,
) -> NetworkSpec:
    """Normalize :func:`build_network`-style arguments into a spec."""
    if isinstance(spec, NetworkSpec):
        return spec.replace(**kwargs) if kwargs else spec
    if isinstance(spec, str):
        return NetworkSpec(algorithm=spec, **kwargs)
    if isinstance(spec, Mapping):
        merged = {**spec, **kwargs}
        return NetworkSpec.from_dict(merged)
    if spec is None:
        if "algorithm" not in kwargs:
            raise ExperimentError(
                "build_network needs a spec, a mapping, or algorithm=..."
            )
        return NetworkSpec(**kwargs)
    raise ExperimentError(
        f"cannot build a network from {type(spec).__name__}: pass a"
        " NetworkSpec, a mapping, or an algorithm name"
    )


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
def _make_kary_splaynet(spec: NetworkSpec, context: BuildContext) -> KArySplayNet:
    return KArySplayNet(
        spec.n, spec.k, initial=spec.initial, engine=spec.engine,
        **spec.params_dict(),
    )


def _make_centroid_splaynet(
    spec: NetworkSpec, context: BuildContext
) -> CentroidSplayNet:
    return CentroidSplayNet(
        spec.n, spec.k, initial=spec.initial, engine=spec.engine,
        **spec.params_dict(),
    )


def _make_binary_splaynet(spec: NetworkSpec, context: BuildContext) -> SplayNet:
    # SplayNet is the k=2 baseline regardless of the axis value (and has a
    # single implementation — no engine selection).
    return SplayNet(spec.n, **spec.params_dict())


def _make_lazy(spec: NetworkSpec, context: BuildContext) -> LazyRebuildNetwork:
    return LazyRebuildNetwork(spec.n, spec.k, **spec.params_dict())


def _build_full(spec: NetworkSpec, context: BuildContext) -> StaticTreeNetwork:
    return StaticTreeNetwork(build_complete_tree(spec.n, spec.k))


def _build_centroid(spec: NetworkSpec, context: BuildContext) -> StaticTreeNetwork:
    return StaticTreeNetwork(build_centroid_tree(spec.n, spec.k))


def _build_optimal_kary(
    spec: NetworkSpec, context: BuildContext
) -> StaticTreeNetwork:
    from repro.optimal.general import optimal_static_tree

    demand = context.require_demand(spec.algorithm)
    return StaticTreeNetwork(optimal_static_tree(demand, spec.k).tree)


def _build_optimal_bst(
    spec: NetworkSpec, context: BuildContext
) -> StaticTreeNetwork:
    from repro.splaynet.optimal import optimal_static_bst

    demand = context.require_demand(spec.algorithm)
    return StaticTreeNetwork(optimal_static_bst(demand).network)


register_network(
    "kary-splaynet", _make_kary_splaynet, engine_capable=True,
    description="k-ary SplayNet (Section 4.1)",
)
register_network(
    "centroid-splaynet", _make_centroid_splaynet, engine_capable=True,
    description="(k+1)-SplayNet centroid heuristic (Section 4.2)",
)
register_network(
    "splaynet", _make_binary_splaynet,
    description="binary SplayNet baseline [22]",
)
register_network(
    "lazy", _make_lazy,
    description="threshold-triggered optimal-tree rebuilding [13]",
)
register_network(
    "full-tree", _build_full, kind="static",
    description="complete k-ary tree",
)
register_network(
    "centroid-tree", _build_centroid, kind="static",
    description="centroid k-ary tree (Theorem 7)",
)
register_network(
    "optimal-tree", _build_optimal_kary, kind="static", needs_demand=True,
    description="optimal routing-based k-ary tree (Theorem 2 DP)",
)
register_network(
    "optimal-bst", _build_optimal_bst, kind="static", needs_demand=True,
    description="optimal static BST network (the [22] DP)",
)

register_policy("thresholded", ThresholdedNetwork)
register_policy("probabilistic", ProbabilisticNetwork)
register_policy("frozen", FrozenNetwork)
