"""The unified network API: spec-driven construction + online sessions.

This package is the single public front door to every network in the
repository:

* :class:`NetworkSpec` / :class:`PolicySpec` — declarative, JSON
  round-tripping descriptions of any network composition (algorithm,
  size, arity, tree engine, initial topology, algorithm parameters, and
  an adjustment-policy wrapper chain);
* :func:`build_network` / :func:`register_network` — the construction
  registry: built-ins plus user algorithms, all buildable from one call;
* :func:`open_session` / :class:`Session` — first-class *online* serving
  (per-request and chunked-stream paths, incremental metrics,
  snapshot/restore state checkpointing).

Every construction site in the repository — the scenario pipeline, the
parallel experiment cells, the CLI, the examples — flows through this
layer, so a ``register_network`` call makes a new algorithm available to
all of them at once.
"""

from repro.net.registry import (
    BuildContext,
    NetworkAlgorithm,
    POLICY_WRAPPERS,
    build_network,
    engine_capable_algorithms,
    network_algorithm,
    network_algorithms,
    online_algorithms,
    register_network,
    register_policy,
    static_algorithms,
    unregister_network,
)
from repro.net.session import (
    LatencyStats,
    Session,
    SessionMetrics,
    SessionSnapshot,
    open_session,
)
from repro.net.spec import NetworkSpec, PolicySpec

__all__ = [
    "BuildContext",
    "LatencyStats",
    "NetworkAlgorithm",
    "NetworkSpec",
    "POLICY_WRAPPERS",
    "PolicySpec",
    "Session",
    "SessionMetrics",
    "SessionSnapshot",
    "build_network",
    "engine_capable_algorithms",
    "network_algorithm",
    "network_algorithms",
    "online_algorithms",
    "open_session",
    "register_network",
    "register_policy",
    "static_algorithms",
    "unregister_network",
]
