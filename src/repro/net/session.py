"""Online serving sessions: the paper's Section 2 model as a first-class API.

A self-adjusting network is a long-lived serving system, not a batch
experiment: requests arrive one by one (or in bursts), the network adjusts,
and costs accumulate over the life of the connection.  :class:`Session`
wraps any network behind exactly that interface:

* :meth:`Session.serve` — one online request, metrics updated in place;
* :meth:`Session.serve_stream` — a request stream (any iterable of
  ``(u, v)`` pairs, or a :class:`~repro.workloads.trace.Trace`), fed
  through the network's batched ``serve_trace`` fast path one chunk at a
  time, so throughput matches offline trace replay while the stream stays
  incremental;
* :attr:`Session.metrics` — running totals (and optional per-request
  series) in the Section 2 cost components;
* :meth:`Session.snapshot` / :meth:`Session.restore` — checkpoint the
  *full* serving state (topology, auxiliary demand counters, policy RNG
  streams, metrics) and rewind to it, identically on either tree engine;
* **auto-checkpointing** — ``open_session(..., checkpoint_every=N)``
  takes a :meth:`Session.snapshot` every ``N`` served requests,
  :meth:`Session.recover` rewinds to the latest one after a fault, and
  :meth:`Session.audit` re-validates every structural and buffer
  invariant — run automatically after **every** restore, so a corrupted
  checkpoint is detected at recovery time, never silently served.

``open_session`` accepts anything :func:`~repro.net.registry.build_network`
accepts, or an already-built network object.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Iterator, Mapping, Optional, Union

import numpy as np

from repro.errors import ExperimentError, ReliabilityError
from repro.net.registry import build_network
from repro.net.spec import NetworkSpec
from repro.network.cost import CostModel, ROUTING_ONLY
from repro.network.protocols import BatchServeResult, ServeResult
from repro.reliability.faults import fire_fault
from repro.workloads.demand import DemandMatrix

__all__ = [
    "LatencyStats",
    "Session",
    "SessionMetrics",
    "SessionSnapshot",
    "open_session",
]

#: Default request chunk for :meth:`Session.serve_stream`: large enough to
#: amortize the batched path's per-call overhead, small enough that
#: metrics stay fresh while a long stream is in flight.  Used when the
#: caller does not pass an explicit ``chunk`` (auto-sizing additionally
#: caps the chunk at ``checkpoint_every`` so auto-checkpoint cadence is
#: never stretched by a large chunk).
DEFAULT_CHUNK = 8192

#: Log2-bucket range of :class:`LatencyStats`: 2**-30 s (~1 ns) up to
#: 2**10 s (~17 min) — any real per-request latency lands inside.
_LAT_MIN_EXP = -30
_LAT_MAX_EXP = 10


class LatencyStats:
    """Constant-memory per-request latency histogram with percentiles.

    Latencies are counted in log2 buckets (factor-2 resolution from
    nanoseconds to minutes), so recording is O(1), memory is a fixed
    ~40-int list regardless of stream length, and histograms from
    different shards merge exactly — the aggregation path of the serve
    farm.  Percentile queries return the geometric midpoint of the
    bucket containing the requested rank: right for dashboards and
    regression tracking (is p99 1 µs or 1 ms?), not for microsecond-exact
    timing claims.
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * (_LAT_MAX_EXP - _LAT_MIN_EXP + 1)
        self.total = 0

    def record(self, seconds: float, count: int = 1) -> None:
        """Count ``count`` requests observed at ``seconds`` latency each."""
        if count <= 0:
            return
        if seconds > 0.0:
            exp = math.frexp(seconds)[1]  # seconds in [2**(exp-1), 2**exp)
        else:
            exp = _LAT_MIN_EXP
        idx = min(max(exp - _LAT_MIN_EXP, 0), len(self.counts) - 1)
        self.counts[idx] += count
        self.total += count

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 1]; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ExperimentError(f"quantile must be in [0, 1], got {q}")
        if not self.total:
            return 0.0
        rank = q * (self.total - 1)
        acc = 0
        for idx, count in enumerate(self.counts):
            acc += count
            if acc > rank:
                exp = idx + _LAT_MIN_EXP
                # Geometric midpoint of [2**(exp-1), 2**exp).
                return 1.5 * 2.0 ** (exp - 1)
        return 1.5 * 2.0 ** (_LAT_MAX_EXP - 1)  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def merge(self, other: "LatencyStats") -> None:
        """Fold another histogram in (exact — buckets are aligned)."""
        for idx, count in enumerate(other.counts):
            self.counts[idx] += count
        self.total += other.total

    def copy(self) -> "LatencyStats":
        twin = LatencyStats()
        twin.counts = list(self.counts)
        twin.total = self.total
        return twin

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.total,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyStats(count={self.total}, p50={self.p50:.2e},"
            f" p99={self.p99:.2e})"
        )


@dataclass
class SessionMetrics:
    """Running Section 2 cost totals of one serving session.

    ``requests`` counts served requests; the three totals mirror
    :class:`~repro.network.protocols.ServeResult`.  When the session was
    opened with ``record_series=True``, the per-request routing/rotation
    series accumulate in :attr:`routing_series` / :attr:`rotation_series`
    (Python lists — cheap appends; convert via :meth:`series_arrays`).
    """

    requests: int = 0
    total_routing: int = 0
    total_rotations: int = 0
    total_links_changed: int = 0
    routing_series: Optional[list[int]] = field(default=None, repr=False)
    rotation_series: Optional[list[int]] = field(default=None, repr=False)
    latency: LatencyStats = field(default_factory=LatencyStats, repr=False)

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.requests if self.requests else 0.0

    @property
    def latency_p50(self) -> float:
        """Median observed per-request latency (seconds; see LatencyStats)."""
        return self.latency.p50

    @property
    def latency_p99(self) -> float:
        """Tail (99th percentile) per-request latency in seconds."""
        return self.latency.p99

    @property
    def average_rotations(self) -> float:
        return self.total_rotations / self.requests if self.requests else 0.0

    def total_cost(self, model: CostModel = ROUTING_ONLY) -> float:
        """Total service cost under a :class:`CostModel` (Section 2)."""
        return (
            model.routing_weight * self.total_routing
            + model.rotation_cost * self.total_rotations
            + model.link_cost * self.total_links_changed
        )

    def series_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The recorded series as int64 arrays (empty when not recording)."""
        return (
            np.asarray(self.routing_series or [], dtype=np.int64),
            np.asarray(self.rotation_series or [], dtype=np.int64),
        )

    def copy(self) -> "SessionMetrics":
        return SessionMetrics(
            requests=self.requests,
            total_routing=self.total_routing,
            total_rotations=self.total_rotations,
            total_links_changed=self.total_links_changed,
            routing_series=(
                list(self.routing_series) if self.routing_series is not None else None
            ),
            rotation_series=(
                list(self.rotation_series)
                if self.rotation_series is not None
                else None
            ),
            latency=self.latency.copy(),
        )

    def to_dict(self) -> dict[str, Any]:
        # Deliberately excludes latency: this dict is the *deterministic*
        # metrics view, compared cell for cell across runs by the
        # reliability suites (timing never is deterministic).
        return {
            "requests": self.requests,
            "total_routing": self.total_routing,
            "total_rotations": self.total_rotations,
            "total_links_changed": self.total_links_changed,
        }


@dataclass(frozen=True)
class SessionSnapshot:
    """An opaque checkpoint of a session (network state + metrics)."""

    state: Any = field(repr=False)
    metrics: SessionMetrics = field(repr=False)
    spec: Optional[NetworkSpec] = None


def _pair_chunks(
    pairs: Iterable[tuple[int, int]], chunk: int
) -> Iterator[tuple[list[int], list[int]]]:
    """Slice an arbitrary pair iterable into endpoint-list chunks."""
    iterator = iter(pairs)
    while True:
        block = list(islice(iterator, chunk))
        if not block:
            return
        sources = [int(u) for u, _ in block]
        targets = [int(v) for _, v in block]
        yield sources, targets


class Session:
    """An open online serving session over one network.

    Construct via :func:`open_session`.  The session owns its running
    :class:`SessionMetrics`; the underlying network object is exposed as
    :attr:`network` for inspection (topology export, validation).
    """

    def __init__(
        self,
        network: Any,
        *,
        spec: Optional[NetworkSpec] = None,
        record_series: bool = False,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if not hasattr(network, "serve"):
            raise ExperimentError(
                f"{type(network).__name__} does not expose serve(u, v)"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ExperimentError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.network = network
        self.spec = spec
        self.record_series = record_series
        self.checkpoint_every = checkpoint_every
        self._auto_checkpoint: Optional[SessionSnapshot] = None
        self._since_checkpoint = 0
        self.metrics = SessionMetrics(
            routing_series=[] if record_series else None,
            rotation_series=[] if record_series else None,
        )

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    # -- introspection -------------------------------------------------
    @property
    def n(self) -> int:
        return self.network.n

    def distance(self, u: int, v: int) -> int:
        """Endpoint distance in the current topology (no adjustment)."""
        return self.network.distance(u, v)

    def validate(self) -> None:
        validate = getattr(self.network, "validate", None)
        if validate is not None:
            validate()

    # -- serving -------------------------------------------------------
    def serve(self, u: int, v: int) -> ServeResult:
        """Serve one online request; the session metrics accumulate it."""
        t0 = time.perf_counter()
        result = self.network.serve(u, v)
        metrics = self.metrics
        metrics.latency.record(time.perf_counter() - t0)
        metrics.requests += 1
        metrics.total_routing += result.routing_cost
        metrics.total_rotations += result.rotations
        metrics.total_links_changed += result.links_changed
        if metrics.routing_series is not None:
            metrics.routing_series.append(result.routing_cost)
            metrics.rotation_series.append(result.rotations)
        self._count_toward_checkpoint(1)
        return result

    def _auto_chunk(self) -> int:
        """Chunk size when the caller does not pick one.

        :data:`DEFAULT_CHUNK`, capped at ``checkpoint_every`` so the
        auto-checkpoint cadence the session was opened with is honoured
        chunk by chunk instead of being stretched to chunk granularity.
        """
        chunk = DEFAULT_CHUNK
        if self.checkpoint_every is not None:
            chunk = min(chunk, self.checkpoint_every)
        return max(1, chunk)

    def serve_stream(
        self,
        requests: Union[Iterable[tuple[int, int]], Any],
        targets: Optional[Any] = None,
        *,
        chunk: Optional[int] = None,
    ) -> BatchServeResult:
        """Serve a request stream through the batched fast path, chunkwise.

        ``requests`` may be any iterable of ``(u, v)`` pairs (including a
        generator — the stream is consumed lazily, ``chunk`` requests at a
        time), a :class:`~repro.workloads.trace.Trace`, or parallel
        ``(sources, targets)`` arrays.  Each chunk is fed to the network's
        ``serve_trace`` (networks without one fall back to the scalar
        serve loop), so a session drives the same engine hot path as
        offline trace replay.  ``chunk=None`` (the default) auto-sizes via
        :meth:`_auto_chunk`; small explicit chunks are fine on every
        engine — the native engine keeps its tree state resident in the
        kernel handle, so a chunk of 1 costs one ctypes call, not a full
        state marshalling round trip.  Returns the accumulated
        :class:`~repro.network.protocols.BatchServeResult` for *this*
        stream; :attr:`metrics` advances by the same amounts.
        """
        if chunk is None:
            chunk = self._auto_chunk()
        elif chunk < 1:
            raise ExperimentError(f"chunk must be >= 1, got {chunk}")
        if targets is not None:
            sources = np.asarray(requests, dtype=np.int64)
            targets = np.asarray(targets, dtype=np.int64)
            if sources.shape != targets.shape or sources.ndim != 1:
                raise ExperimentError(
                    "serve_stream arrays must be equal-length and 1-D"
                )
            chunks: Iterable[tuple[Any, Any]] = (
                (sources[i : i + chunk], targets[i : i + chunk])
                for i in range(0, len(sources), chunk)
            )
        elif hasattr(requests, "sources"):
            trace = requests
            chunks = (
                (trace.sources[i : i + chunk], trace.targets[i : i + chunk])
                for i in range(0, trace.m, chunk)
            )
        else:
            chunks = _pair_chunks(requests, chunk)

        serve_trace = getattr(self.network, "serve_trace", None)
        if serve_trace is None:
            serve_trace = self._fallback_serve_trace
        metrics = self.metrics
        record = metrics.routing_series is not None
        total_m = total_routing = total_rotations = total_links = 0
        routing_parts: list[np.ndarray] = []
        rotation_parts: list[np.ndarray] = []
        for sources_chunk, targets_chunk in chunks:
            t0 = time.perf_counter()
            batch = serve_trace(
                sources_chunk, targets_chunk, record_series=record
            )
            if batch.m:
                # Per-request latency attributed evenly across the chunk —
                # the right granularity for p50/p99 of a batched stream.
                metrics.latency.record(
                    (time.perf_counter() - t0) / batch.m, batch.m
                )
            total_m += batch.m
            total_routing += batch.total_routing
            total_rotations += batch.total_rotations
            total_links += batch.total_links_changed
            if record and batch.routing_series is not None:
                routing_parts.append(batch.routing_series)
                rotation_parts.append(batch.rotation_series)
                metrics.routing_series.extend(batch.routing_series.tolist())
                metrics.rotation_series.extend(batch.rotation_series.tolist())
            # Auto-checkpoint between chunks: metrics must already cover
            # the chunk when the snapshot is cut, so advance them first.
            metrics.requests += batch.m
            metrics.total_routing += batch.total_routing
            metrics.total_rotations += batch.total_rotations
            metrics.total_links_changed += batch.total_links_changed
            self._count_toward_checkpoint(batch.m)
        return BatchServeResult(
            total_m,
            total_routing,
            total_rotations,
            total_links,
            np.concatenate(routing_parts) if routing_parts else None,
            np.concatenate(rotation_parts) if rotation_parts else None,
        )

    def _fallback_serve_trace(
        self, sources, targets=None, *, record_series: bool = False
    ) -> BatchServeResult:
        """Per-request fallback for networks without ``serve_trace``."""
        from repro.core.engine import batch_serve

        serve = self.network.serve

        def serve_totals(u: int, v: int) -> tuple[int, int, int]:
            result = serve(u, v)
            return result.routing_cost, result.rotations, result.links_changed

        return batch_serve(
            serve_totals, sources, targets, record_series=record_series
        )

    # -- checkpointing -------------------------------------------------
    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the full serving state (topology + aux + metrics).

        The snapshot is independent of subsequent serving: restoring it
        reproduces the exact topology (proven engine-identical by
        ``tests/net/test_snapshot.py``) and the exact costs of any request
        sequence replayed after the checkpoint.
        """
        snapshot_state = getattr(self.network, "snapshot_state", None)
        if snapshot_state is None:
            raise ExperimentError(
                f"{type(self.network).__name__} does not support snapshots"
                " (no snapshot_state/restore_state)"
            )
        state = snapshot_state()
        fault = fire_fault("session.snapshot", context=type(state).__name__)
        if fault is not None and fault.mode == "corrupt":
            state = _corrupt_state(state)
        return SessionSnapshot(
            state=state, metrics=self.metrics.copy(), spec=self.spec
        )

    def restore(self, snapshot: SessionSnapshot) -> None:
        """Rewind the session to a :meth:`snapshot` checkpoint.

        Every restore is followed by a full :meth:`audit`, so a snapshot
        corrupted between checkpoint and recovery raises
        :class:`~repro.errors.ReliabilityError` here instead of silently
        serving a broken topology.
        """
        restore_state = getattr(self.network, "restore_state", None)
        if restore_state is None:
            raise ExperimentError(
                f"{type(self.network).__name__} does not support snapshots"
                " (no snapshot_state/restore_state)"
            )
        restore_state(snapshot.state)
        self.metrics = snapshot.metrics.copy()
        self._since_checkpoint = 0
        self.audit()

    def _count_toward_checkpoint(self, served: int) -> None:
        """Advance the auto-checkpoint counter; cut one when due."""
        if self.checkpoint_every is None:
            return
        self._since_checkpoint += served
        if self._since_checkpoint >= self.checkpoint_every:
            self._auto_checkpoint = self.snapshot()
            self._since_checkpoint = 0

    @property
    def last_checkpoint(self) -> Optional[SessionSnapshot]:
        """The most recent auto-checkpoint (``None`` before the first)."""
        return self._auto_checkpoint

    def recover(self) -> SessionSnapshot:
        """Rewind to the latest auto-checkpoint and re-audit everything.

        The crash-recovery entry point for sessions opened with
        ``checkpoint_every``: after an exception mid-stream (or any
        suspicion the in-memory state is bad), ``recover()`` restores the
        last checkpoint — topology, auxiliary state and metrics — runs
        the full :meth:`audit`, and returns the snapshot it recovered to,
        so the caller knows exactly which requests to replay.
        """
        if self._auto_checkpoint is None:
            raise ReliabilityError(
                "no auto-checkpoint to recover to: open the session with"
                " checkpoint_every=N (or restore an explicit snapshot)"
            )
        self.restore(self._auto_checkpoint)
        return self._auto_checkpoint

    def audit(self) -> None:
        """Invariant pass over the live serving state; raises on corruption.

        Three layers, all fatal via
        :class:`~repro.errors.ReliabilityError`:

        * **structural** — the network's own ``validate()`` (for the flat
          and native engines that is the full cross-check against a
          rebuilt object tree, cached subtree ranges included);
        * **buffer consistency** — flat/native array lengths must match
          the declared shape (``n``, ``k``), catching truncated or
          mis-sized state smuggled in through a bad checkpoint;
        * **metrics sanity** — totals non-negative and recorded series
          exactly ``requests`` long.
        """
        try:
            self.validate()
        except Exception as exc:
            raise ReliabilityError(
                f"session audit failed structural validation: {exc}"
            ) from exc
        self._audit_buffers()
        self._audit_metrics()

    def _audit_buffers(self) -> None:
        """Flat/native engines: array shapes must match the topology."""
        flat = getattr(self.network, "_flat", None)
        if flat is None or not hasattr(flat, "parent"):
            return
        n, k = flat.n, flat.k
        expected = {
            "parent": n + 1,
            "pslot": n + 1,
            "child_rows": n + 1,
            "routing_rows": n + 1,
        }
        for name, length in expected.items():
            rows = getattr(flat, name, None)
            if rows is not None and len(rows) != length:
                raise ReliabilityError(
                    f"session audit: {name} has {len(rows)} entries,"
                    f" expected {length} (n={n})"
                )
        for nid in range(1, n + 1):
            if len(flat.child_rows[nid]) != k:
                raise ReliabilityError(
                    f"session audit: node {nid} has"
                    f" {len(flat.child_rows[nid])} child slots, expected {k}"
                )

    def _audit_metrics(self) -> None:
        metrics = self.metrics
        if (
            metrics.requests < 0
            or metrics.total_routing < 0
            or metrics.total_rotations < 0
            or metrics.total_links_changed < 0
        ):
            raise ReliabilityError(
                f"session audit: negative metrics {metrics.to_dict()}"
            )
        if metrics.routing_series is not None and (
            len(metrics.routing_series) != metrics.requests
            or len(metrics.rotation_series) != metrics.requests
        ):
            raise ReliabilityError(
                "session audit: recorded series length"
                f" {len(metrics.routing_series)} does not match"
                f" requests={metrics.requests}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(network={type(self.network).__name__}, n={self.n},"
            f" requests={self.metrics.requests})"
        )


def _corrupt_state(state: Any) -> Any:
    """Deliberately damage a checkpoint state (``session.snapshot`` fault).

    Tree-engine states (anything carrying a ``parent`` array) get one
    self-parenting entry — invisible to shallow use, guaranteed fatal to
    a structural ``validate()``.  States this helper cannot tamper raise
    :class:`FaultInjected` outright instead of pretending.
    """
    from repro.errors import FaultInjected

    parent = getattr(state, "parent", None)
    if parent is not None and getattr(state, "n", 0) >= 1:
        parent[1] = 1
        return state
    raise FaultInjected(
        f"injected snapshot corruption: cannot tamper {type(state).__name__}"
    )


def open_session(
    spec: Union[NetworkSpec, Mapping[str, Any], str, None] = None,
    *,
    network: Optional[Any] = None,
    trace: Optional[Any] = None,
    demand: Optional[DemandMatrix] = None,
    record_series: bool = False,
    checkpoint_every: Optional[int] = None,
    **kwargs: Any,
) -> Session:
    """Open an online serving session.

    Accepts everything :func:`~repro.net.registry.build_network` accepts —
    a :class:`~repro.net.spec.NetworkSpec`, a mapping, an algorithm name
    plus keyword arguments — or a pre-built network object via
    ``network=``.  ``trace``/``demand`` feed demand-aware static
    constructions; ``record_series=True`` accumulates per-request series
    on the session metrics; ``checkpoint_every=N`` auto-snapshots the
    full serving state every ``N`` requests so
    :meth:`Session.recover` can rewind past a crash (each restore is
    audited — see :meth:`Session.audit`).

    >>> session = open_session("kary-splaynet", n=64, k=4, engine="flat")
    >>> session.serve(3, 60).routing_cost  # doctest: +SKIP
    5
    """
    if network is not None:
        if spec is not None or kwargs:
            raise ExperimentError(
                "pass either network= or spec/kwargs to open_session, not both"
            )
        return Session(
            network,
            record_series=record_series,
            checkpoint_every=checkpoint_every,
        )
    from repro.net.registry import coerce_network_spec

    resolved = coerce_network_spec(spec, **kwargs)
    built = build_network(resolved, trace=trace, demand=demand)
    return Session(
        built,
        spec=resolved,
        record_series=record_series,
        checkpoint_every=checkpoint_every,
    )
