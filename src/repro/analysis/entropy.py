"""Entropy bounds for self-adjusting tree networks (Theorems 12-13).

Theorem 13 bounds the k-ary SplayNet's total cost on a request sequence σ by
the empirical entropies of its endpoint marginals:

    O( Σ_x a_x · log(m / a_x)  +  Σ_x b_x · log(m / b_x) )

with ``a_x`` / ``b_x`` the number of requests having ``x`` as source /
destination.  This module computes the bound (in "log₂" units, without the
hidden constant) so experiments can report the measured-cost-to-bound ratio,
which should stay bounded by a modest constant across workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import Trace

__all__ = ["entropy_bound", "EntropyBoundReport", "entropy_bound_report"]


def _marginal_term(counts: np.ndarray, m: int) -> float:
    counts = counts[counts > 0].astype(np.float64)
    return float((counts * np.log2(m / counts)).sum())


def entropy_bound(trace: Trace) -> float:
    """The Theorem 13 bound (log₂ units, constant factor omitted).

    Equals ``m · (H(sources) + H(destinations))`` for the empirical
    marginals — the classic static-optimality entropy bound of [22] that
    the paper shows carries over to k-ary SplayNet.
    """
    m = trace.m
    if m == 0:
        return 0.0
    _, a = np.unique(trace.sources, return_counts=True)
    _, b = np.unique(trace.targets, return_counts=True)
    return _marginal_term(a, m) + _marginal_term(b, m)


@dataclass(frozen=True, slots=True)
class EntropyBoundReport:
    """Measured cost vs the Theorem 13 entropy bound."""

    m: int
    measured_cost: float
    bound: float

    @property
    def ratio(self) -> float:
        """measured / bound; Theorem 13 promises this stays O(1)."""
        if self.bound == 0:
            return 0.0
        return self.measured_cost / self.bound

    def __str__(self) -> str:
        return (
            f"cost={self.measured_cost:.0f} entropy-bound={self.bound:.0f}"
            f" ratio={self.ratio:.3f}"
        )


def entropy_bound_report(trace: Trace, measured_cost: float) -> EntropyBoundReport:
    """Bundle a measured total cost with the trace's entropy bound."""
    return EntropyBoundReport(
        m=trace.m, measured_cost=float(measured_cost), bound=entropy_bound(trace)
    )
