"""Local-routing stretch: how greedy routing compares to true tree paths.

Definition 1 promises local greedy routing on k-ary search tree networks.
This reproduction found (DESIGN.md, "Local routing") that after rotations a
non-routing-based tree can force a greedy packet into *backtracking*: an
ancestor's identifier may sit inside a descendant range gap, where no local
interval rule can rule the subtree out.  The simulator therefore measures
cost on true tree paths (the paper's cost definition), while
:meth:`~repro.core.tree.KAryTreeNetwork.local_route` carries per-packet
backtracking state with a ``≤ 2n`` hop guarantee.

This module quantifies the gap: the *stretch* of a routed pair is
``(hops taken by local routing) / (true tree distance)``.  On freshly built
trees the stretch is exactly 1.0 (subtrees are contiguous segments); after
rotation storms it stays close to 1 on average — the experiments harness
records the distribution so the claim is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.tree import KAryTreeNetwork
from repro.errors import ReproError

__all__ = ["StretchReport", "measure_stretch", "stretch_after_storm"]


@dataclass(frozen=True)
class StretchReport:
    """Distribution of local-routing stretch over a set of pairs.

    ``max_stretch == 1.0`` certifies that greedy routing was exact on every
    measured pair; ``backtrack_fraction`` is the share of pairs whose local
    route was longer than the tree path.
    """

    pairs: int
    mean_stretch: float
    max_stretch: float
    backtrack_fraction: float
    mean_distance: float
    max_hops: int

    def __str__(self) -> str:
        return (
            f"stretch over {self.pairs} pairs: mean {self.mean_stretch:.4f},"
            f" max {self.max_stretch:.3f}, backtracked"
            f" {self.backtrack_fraction:.1%}, mean distance"
            f" {self.mean_distance:.2f}, max hops {self.max_hops}"
        )


def measure_stretch(
    tree: KAryTreeNetwork,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    *,
    sample: Optional[int] = None,
    seed: int = 0,
) -> StretchReport:
    """Route pairs with :meth:`local_route` and compare to tree distance.

    ``pairs`` defaults to all ordered pairs when ``sample`` is None (only
    sensible for small trees) or to ``sample`` random distinct pairs.
    """
    n = tree.n
    if n < 2:
        raise ReproError("stretch needs at least two nodes")
    if pairs is None:
        if sample is None:
            chosen: Sequence[tuple[int, int]] = [
                (u, v)
                for u in range(1, n + 1)
                for v in range(1, n + 1)
                if u != v
            ]
        else:
            rng = np.random.default_rng(seed)
            src = rng.integers(1, n + 1, size=sample)
            off = rng.integers(1, n, size=sample)
            dst = (src - 1 + off) % n + 1
            chosen = list(zip(src.tolist(), dst.tolist()))
    else:
        chosen = list(pairs)
        if not chosen:
            raise ReproError("no pairs to measure")

    stretches = np.empty(len(chosen), dtype=np.float64)
    distances = np.empty(len(chosen), dtype=np.float64)
    backtracked = 0
    max_hops = 0
    for i, (u, v) in enumerate(chosen):
        true_distance = tree.distance(u, v)
        hops = len(tree.local_route(u, v)) - 1
        distances[i] = true_distance
        stretches[i] = hops / true_distance if true_distance else 1.0
        max_hops = max(max_hops, hops)
        if hops > true_distance:
            backtracked += 1
    return StretchReport(
        pairs=len(chosen),
        mean_stretch=float(stretches.mean()),
        max_stretch=float(stretches.max()),
        backtrack_fraction=backtracked / len(chosen),
        mean_distance=float(distances.mean()),
        max_hops=max_hops,
    )


def stretch_after_storm(
    n: int,
    k: int,
    *,
    serves: int = 500,
    sample: int = 500,
    seed: int = 0,
) -> StretchReport:
    """Stretch of a k-ary SplayNet's tree after a random serve storm.

    Builds a complete tree, serves ``serves`` random requests (each one
    rotating the topology), then measures local-routing stretch on
    ``sample`` random pairs of the *final* tree.
    """
    from repro.net.registry import build_network

    rng = np.random.default_rng(seed)
    net = build_network("kary-splaynet", n=n, k=k, initial="complete")
    for _ in range(serves):
        u = int(rng.integers(1, n + 1))
        v = int(rng.integers(1, n + 1))
        if u != v:
            net.serve(u, v)
    net.validate()
    return measure_stretch(net.tree, sample=sample, seed=seed + 1)
