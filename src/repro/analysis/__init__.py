"""analysis subpackage — see module docstrings."""
