"""Trace-complexity estimation à la Avin, Ghobadi, Griner and Schmid [2].

The paper's Section 5 characterizes workloads by their *temporal
complexity* (the probability of repeating the last request, the knob of the
synthetic traces) and implicitly by their *spatial/non-temporal* complexity
(how skewed the demand matrix is).  [2] places real traces on a 2-D
"complexity map" whose axes measure how much a trace can be compressed
using (i) temporal structure and (ii) spatial structure.  This module
implements laptop-friendly estimators of both coordinates so that our
synthetic datacenter stand-ins can be *audited* against the regimes the
substitution table in DESIGN.md claims for them:

* ``spatial_complexity`` — entropy of the empirical pair distribution over
  the log of the support of all ordered pairs: 1.0 for uniform all-to-all
  traffic, → 0 for a few elephant pairs.
* ``temporal_complexity`` — 1 minus the excess adjacent-repeat probability
  over the i.i.d. baseline: 1.0 when requests are independent of history,
  → 0 when the next request is (almost) always the previous one.  The
  excess statistic estimates exactly the ``p`` knob of the paper's
  synthetic generator.  (:func:`recurrence_excess` extends it to bursty,
  windowed locality; :func:`markov_temporal_ratio` keeps the textbook
  conditional-entropy plug-in, with its large-alphabet bias documented.)
* ``lz_complexity`` — a nonparametric LZ78 estimate that needs no Markov
  assumption (the estimator family used by [2]); reported normalized so
  i.i.d. uniform sequences score near 1.

Entropy plug-ins are biased downward for short traces over large
alphabets; :func:`complexity_report` records the support sizes so callers
can judge the bias.  Tests assert *orderings* (e.g. temporal-0.9 scores
below temporal-0.25), which are robust to the bias, rather than absolute
values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Trace

__all__ = [
    "spatial_complexity",
    "temporal_complexity",
    "repeat_excess",
    "recurrence_excess",
    "markov_temporal_ratio",
    "lz78_phrase_count",
    "lz_complexity",
    "ComplexityReport",
    "complexity_report",
    "classify_trace",
]


def _pair_ids(trace: Trace) -> np.ndarray:
    """Encode each request as a single integer ``src * n + dst``."""
    return trace.sources.astype(np.int64) * trace.n + trace.targets.astype(np.int64)


def _entropy_from_counts(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


def spatial_complexity(trace: Trace) -> float:
    """Pair-distribution entropy over the uniform-trace maximum — ``[0, 1]``.

    1.0 means demand is spread as evenly as a uniform trace of the same
    length could manage (nothing for a demand-aware design to exploit);
    near 0 means a few hot pairs dominate (static demand-aware trees
    shine).  Normalizing by ``log2(min(n·(n−1), m))`` rather than the full
    pair count follows [2]'s convention of measuring non-temporal
    complexity *relative to a uniform trace*: a short trace cannot touch
    more than ``m`` distinct pairs, and penalizing it for that would
    conflate trace length with skew.
    """
    n = trace.n
    if n < 2:
        raise WorkloadError("spatial complexity needs at least two nodes")
    ids = _pair_ids(trace)
    _, counts = np.unique(ids, return_counts=True)
    max_entropy = math.log2(min(n * (n - 1), max(2, trace.m)))
    return min(1.0, _entropy_from_counts(counts) / max_entropy)


def repeat_excess(trace: Trace) -> float:
    """Adjacent-repeat probability beyond the i.i.d. baseline, in ``[0, 1]``.

    ``P(pair_t = pair_{t−1})`` would be ``Σ_j p_j²`` if requests were
    independent draws from the empirical distribution; the excess over that
    baseline (normalized to at most 1) is exactly the paper's *temporal
    complexity parameter*: the synthetic generator repeats the last request
    with probability ``p``, so its excess estimates ``p``.
    """
    ids = _pair_ids(trace)
    if len(ids) < 2:
        raise WorkloadError("repeat excess needs at least two requests")
    p_repeat = float(np.mean(ids[1:] == ids[:-1]))
    _, counts = np.unique(ids, return_counts=True)
    p = counts / counts.sum()
    collision = float((p * p).sum())
    if collision >= 1.0:
        return 1.0  # a single pair repeated forever
    return max(0.0, min(1.0, (p_repeat - collision) / (1.0 - collision)))


def recurrence_excess(trace: Trace, window: int = 64) -> float:
    """Probability that a request recurs within ``window`` past requests,
    beyond the i.i.d. expectation — captures *bursty* locality (HPC phases)
    that adjacent repeats miss.
    """
    if window < 1:
        raise WorkloadError(f"window must be >= 1, got {window}")
    ids = _pair_ids(trace)
    if len(ids) <= window:
        raise WorkloadError("trace shorter than the recurrence window")
    hits = 0
    total = 0
    recent: dict[int, int] = {}
    for t, pair in enumerate(ids.tolist()):
        if t > 0:
            lo = t - window
            total += 1
            last = recent.get(pair)
            if last is not None and last >= lo:
                hits += 1
        recent[pair] = t
    observed = hits / total
    _, counts = np.unique(ids, return_counts=True)
    p = counts / counts.sum()
    expected = float((p * (1.0 - (1.0 - p) ** window)).sum())
    if expected >= 1.0:
        return 1.0
    return max(0.0, min(1.0, (observed - expected) / (1.0 - expected)))


def temporal_complexity(trace: Trace) -> float:
    """``1 − repeat_excess`` ∈ [0, 1]: 1.0 for history-free (i.i.d.) traces,
    low for the strong temporal locality where SANs beat every static tree
    (paper Tables 6–7).

    The naive plug-in estimator of ``H(pair_t | pair_{t−1}) / H(pair)`` is
    biased to near zero whenever the pair alphabet is comparable to the
    trace length (any datacenter trace), so the complexity map uses the
    repeat-excess statistic, which is unbiased at any alphabet size and is
    the exact knob of the paper's synthetic generator.
    """
    return 1.0 - repeat_excess(trace)


def markov_temporal_ratio(trace: Trace) -> float:
    """Plug-in ``H(pair_t | pair_{t−1}) / H(pair)`` ∈ [0, 1].

    Only meaningful when ``m`` is much larger than the *square* of the
    number of distinct pairs; retained for small-alphabet studies and to
    document the estimator's bias (tests pin it).
    """
    ids = _pair_ids(trace)
    if len(ids) < 2:
        raise WorkloadError("temporal ratio needs at least two requests")
    _, inverse = np.unique(ids, return_inverse=True)
    prev, nxt = inverse[:-1], inverse[1:]
    support = int(inverse.max()) + 1
    joint = prev.astype(np.int64) * support + nxt.astype(np.int64)
    _, joint_counts = np.unique(joint, return_counts=True)
    _, prev_counts = np.unique(prev, return_counts=True)
    h_conditional = max(
        0.0, _entropy_from_counts(joint_counts) - _entropy_from_counts(prev_counts)
    )
    _, marginal_counts = np.unique(inverse, return_counts=True)
    h_marginal = _entropy_from_counts(marginal_counts)
    if h_marginal == 0.0:
        return 0.0  # a single repeated pair: fully predictable
    return min(1.0, h_conditional / h_marginal)


def lz78_phrase_count(sequence: Sequence[int]) -> int:
    """Number of phrases in the LZ78 parse of ``sequence``.

    LZ78 greedily splits the input into the shortest phrases never seen
    before; the phrase count ``c`` satisfies ``c log c ≈ m · H`` for
    stationary ergodic sources, making it a model-free entropy probe.
    """
    dictionary: dict[tuple[int, int], int] = {}
    phrases = 0
    node = 0  # trie node id; 0 = root
    next_id = 1
    for symbol in sequence:
        key = (node, int(symbol))
        child = dictionary.get(key)
        if child is None:
            dictionary[key] = next_id
            next_id += 1
            phrases += 1
            node = 0
        else:
            node = child
    if node != 0:
        phrases += 1  # trailing partial phrase
    return phrases


def lz_complexity(trace: Trace) -> float:
    """Normalized LZ78 complexity of the pair sequence (≈1 for i.i.d. uniform).

    Computed as ``c · log2(c) / (m · log2(A))`` where ``c`` is the LZ78
    phrase count, ``m`` the trace length and ``A`` the number of distinct
    pairs observed.  Values are clipped to ``[0, 1]``.
    """
    ids = _pair_ids(trace)
    m = len(ids)
    if m == 0:
        raise WorkloadError("cannot measure an empty trace")
    alphabet = len(np.unique(ids))
    if alphabet < 2:
        return 0.0
    c = lz78_phrase_count(ids.tolist())
    score = c * math.log2(max(c, 2)) / (m * math.log2(alphabet))
    return max(0.0, min(1.0, score))


@dataclass(frozen=True)
class ComplexityReport:
    """Complexity-map coordinates of a trace plus support diagnostics."""

    n: int
    m: int
    distinct_pairs: int
    spatial: float
    temporal: float
    recurrence: float
    lz: float

    @property
    def locality(self) -> float:
        """Temporal locality: adjacent repeats or windowed bursts, whichever
        is stronger (``max(1 − temporal, recurrence)``)."""
        return max(1.0 - self.temporal, self.recurrence)

    @property
    def quadrant(self) -> str:
        """Coarse classification matching the paper's workload regimes."""
        spatial_high = self.spatial >= 0.7
        local = self.locality >= 0.35
        if spatial_high and not local:
            return "uniform-like"           # full trees competitive
        if spatial_high and local:
            return "temporally-local"       # SANs win (p=0.75/0.9 regime)
        if not spatial_high and not local:
            return "spatially-skewed"       # static demand-aware trees win
        return "doubly-structured"          # HPC-like: both kinds of locality

    def __str__(self) -> str:
        return (
            f"n={self.n} m={self.m} pairs={self.distinct_pairs} "
            f"spatial={self.spatial:.3f} temporal={self.temporal:.3f} "
            f"recurrence={self.recurrence:.3f} lz={self.lz:.3f} "
            f"[{self.quadrant}]"
        )


def complexity_report(trace: Trace, *, window: int = 64) -> ComplexityReport:
    """Compute all complexity coordinates of one trace."""
    ids = _pair_ids(trace)
    return ComplexityReport(
        n=trace.n,
        m=trace.m,
        distinct_pairs=int(len(np.unique(ids))),
        spatial=spatial_complexity(trace),
        temporal=temporal_complexity(trace),
        recurrence=recurrence_excess(trace, window) if trace.m > window else 0.0,
        lz=lz_complexity(trace),
    )


def classify_trace(trace: Trace) -> str:
    """Shorthand for ``complexity_report(trace).quadrant``."""
    return complexity_report(trace).quadrant
