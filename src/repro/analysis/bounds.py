"""Classical splay-tree cost bounds, evaluated on concrete traces.

Theorem 12 gives the k-ary splay tree the *static-optimality* bound (the
entropy bound of :mod:`repro.analysis.entropy` covers the network form,
Theorem 13).  The splay-tree literature [24] provides two further bounds
that transfer through the same Access Lemma machinery, and which make good
empirical probes of how much structure a workload offers:

* **Working-set bound** — the amortized cost of accessing ``x`` is
  ``O(log ws(x) + 1)`` where ``ws(x)`` is the number of *distinct* items
  accessed since the previous access to ``x``.  Low working-set traces
  (temporal locality) are cheap regardless of the key distribution.
* **Static-finger bound** — cost ``O(log (|x − f| + 1))`` around any fixed
  finger ``f``; a cheap proxy for spatial locality around a hot key.

Both are computed for *access sequences* (single keys).  For communication
traces, apply them to the source and destination streams separately — the
paper's Theorem 13 does exactly this for the entropy bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "working_set_sizes",
    "working_set_bound",
    "static_finger_bound",
    "BoundComparison",
    "compare_with_bound",
]


def working_set_sizes(accesses: Sequence[int]) -> np.ndarray:
    """``ws[t]`` = distinct keys accessed since the previous access to
    ``accesses[t]`` (the key's first access counts all keys seen so far).

    O(m log m) via last-seen timestamps and a sorted structure would be
    overkill; we use the standard O(m · distinct-window) sparse approach
    with a Fenwick tree over time indices, O(m log m) overall.
    """
    m = len(accesses)
    if m == 0:
        raise WorkloadError("empty access sequence")
    # Fenwick (BIT) over positions 1..m marking "this position is the most
    # recent occurrence of its key"
    tree = [0] * (m + 1)

    def add(i: int, delta: int) -> None:
        while i <= m:
            tree[i] += delta
            i += i & (-i)

    def prefix(i: int) -> int:
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last_pos: dict[int, int] = {}
    out = np.empty(m, dtype=np.int64)
    for t, key in enumerate(accesses, start=1):
        prev = last_pos.get(key)
        if prev is None:
            # first access: working set = all distinct keys so far (+ itself)
            out[t - 1] = prefix(m) + 1
        else:
            # distinct keys strictly after prev = marked positions in (prev, t)
            out[t - 1] = prefix(m) - prefix(prev) + 1
            add(prev, -1)
        add(t, 1)
        last_pos[key] = t
    return out


def working_set_bound(accesses: Sequence[int]) -> float:
    """``Σ_t log2(ws_t + 1)`` — the working-set theorem's leading sum."""
    sizes = working_set_sizes(accesses)
    return float(np.log2(sizes.astype(np.float64) + 1.0).sum())


def static_finger_bound(accesses: Sequence[int], finger: int) -> float:
    """``Σ_t log2(|x_t − finger| + 2)`` — the static-finger leading sum."""
    if len(accesses) == 0:
        raise WorkloadError("empty access sequence")
    arr = np.asarray(accesses, dtype=np.float64)
    return float(np.log2(np.abs(arr - finger) + 2.0).sum())


@dataclass(frozen=True)
class BoundComparison:
    """A measured cost next to a theoretical bound (with its linear slack).

    The theorems are asymptotic (``O(·)`` with an additive ``O(n log n)``
    restructuring term), so the check is ``measured ≤ c·bound + slack``;
    ``ratio`` reports ``measured / (bound + slack)`` for the chosen ``c=1``
    normalization — a diagnostic, not a proof.
    """

    measured: float
    bound: float
    slack: float

    @property
    def ratio(self) -> float:
        denominator = self.bound + self.slack
        return self.measured / denominator if denominator else math.inf

    def within(self, constant: float) -> bool:
        return self.measured <= constant * self.bound + self.slack

    def __str__(self) -> str:
        return (
            f"measured {self.measured:.0f} vs bound {self.bound:.0f}"
            f" (+slack {self.slack:.0f}) → ratio {self.ratio:.3f}"
        )


def compare_with_bound(
    measured_cost: float, bound: float, *, n: int, m: int
) -> BoundComparison:
    """Package a measurement with a bound and the standard ``n log n + m``
    additive slack (initial-tree restructuring plus the per-access +1)."""
    if n < 1 or m < 1:
        raise WorkloadError("need n >= 1 and m >= 1")
    slack = n * math.log2(n + 1) + m
    return BoundComparison(measured=measured_cost, bound=bound, slack=slack)
