"""Empirical verification of the Access Lemma (Theorem 12's engine).

The paper proves k-ary splay trees statically optimal by re-proving the
Sleator–Tarjan Access Lemma [24] for the new rotations: with the potential
``Φ(T) = Σ_v log₂ w(v)`` (``w(v)`` = subtree size of ``v``), the amortized
number of splay steps when splaying ``x`` to the root is at most

    3 · (r(root) − r(x)) + 1,      r(v) = log₂ w(v),

because ``k-semi-splay`` changes the potential like *zig*, k-splay case 1
like *zig-zag*, and k-splay case 2 like *zig-zig*.  This module instruments
any network/tree so that every access produces an :class:`AccessAudit`
carrying both sides of that inequality — turning the proof sketch into a
property the test suite checks on thousands of random accesses.

Works on any rooted structure: pass a ``children(node)`` callable, or use
the ready-made adapters for :class:`~repro.core.splaynet.KArySplayNet` and
:class:`~repro.datastructures.splay_tree.SplayTree`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.splaynet import KArySplayNet
from repro.datastructures.splay_tree import SplayTree
from repro.errors import ReproError

__all__ = [
    "AccessAudit",
    "subtree_sizes",
    "tree_potential",
    "audit_splaynet_accesses",
    "audit_splaytree_accesses",
]


def subtree_sizes(root, children: Callable[[object], Iterable]) -> dict[int, int]:
    """Subtree size of every node, keyed by ``id(node)`` (one O(n) pass)."""
    sizes: dict[int, int] = {}
    stack: list[tuple[object, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            sizes[id(node)] = 1 + sum(
                sizes[id(child)] for child in children(node)
            )
        else:
            stack.append((node, True))
            for child in children(node):
                stack.append((child, False))
    return sizes


def tree_potential(root, children: Callable[[object], Iterable]) -> float:
    """``Φ(T) = Σ_v log₂ w(v)`` with unit node weights."""
    return sum(math.log2(w) for w in subtree_sizes(root, children).values())


@dataclass(frozen=True)
class AccessAudit:
    """Both sides of the Access Lemma inequality for one access.

    ``amortized = steps + Φ_after − Φ_before`` must not exceed
    ``bound = 3 (r(root) − r(x)) + 1`` (ranks measured in the pre-access
    tree).  ``margin`` is ``bound − amortized`` (non-negative when the
    lemma holds).
    """

    key: int
    steps: int
    phi_before: float
    phi_after: float
    rank_root: float
    rank_node: float

    @property
    def amortized(self) -> float:
        return self.steps + self.phi_after - self.phi_before

    @property
    def bound(self) -> float:
        return 3.0 * (self.rank_root - self.rank_node) + 1.0

    @property
    def margin(self) -> float:
        return self.bound - self.amortized

    @property
    def holds(self) -> bool:
        return self.margin >= -1e-9


# ----------------------------------------------------------------------
# adapters
# ----------------------------------------------------------------------
def _kary_children(node) -> Iterable:
    return list(node.child_iter())


def _bst_children(node) -> Iterable:
    return [c for c in (node.left, node.right) if c is not None]


def audit_splaynet_accesses(
    net: KArySplayNet, keys: Sequence[int]
) -> list[AccessAudit]:
    """Drive :meth:`KArySplayNet.access` for each key, auditing the lemma.

    Each ``access(x)`` splays ``x`` all the way to the root; the network
    counts one step per ``k-semi-splay``/``k-splay``, exactly the step
    granularity of the paper's potential argument.
    """
    audits: list[AccessAudit] = []
    for key in keys:
        # Materialize the topology once per step: on the flat engine every
        # ``net.tree`` access builds a fresh snapshot, so identity-keyed
        # lookups must all come from the same materialization.
        tree = net.tree
        root = tree.root
        sizes = subtree_sizes(root, _kary_children)
        phi_before = sum(math.log2(w) for w in sizes.values())
        rank_root = math.log2(sizes[id(root)])
        rank_node = math.log2(sizes[id(tree.node(key))])
        result = net.access(key)
        phi_after = tree_potential(net.tree.root, _kary_children)
        audits.append(
            AccessAudit(
                key=key,
                steps=result.rotations,
                phi_before=phi_before,
                phi_after=phi_after,
                rank_root=rank_root,
                rank_node=rank_node,
            )
        )
    return audits


def _find_bst_node(tree: SplayTree, key: int):
    node = tree.root
    while node is not None:
        if key == node.key:
            return node
        node = node.left if key < node.key else node.right
    raise ReproError(f"key {key} not in tree")


def audit_splaytree_accesses(
    tree: SplayTree, keys: Sequence[int]
) -> list[AccessAudit]:
    """Audit the binary splay tree (steps = ⌈rotations / 2⌉: a zig-zig or
    zig-zag is one lemma step of two rotations, a zig is one of one)."""
    if tree.semi:
        raise ReproError(
            "the Access Lemma auditor assumes full splaying; got semi=True"
        )
    audits: list[AccessAudit] = []
    for key in keys:
        root = tree.root
        if root is None:
            raise ReproError("cannot audit an empty tree")
        sizes = subtree_sizes(root, _bst_children)
        phi_before = sum(math.log2(w) for w in sizes.values())
        rank_root = math.log2(sizes[id(root)])
        rank_node = math.log2(sizes[id(_find_bst_node(tree, key))])
        result = tree.access(key)
        phi_after = tree_potential(tree.root, _bst_children)
        steps = (result.rotations + 1) // 2
        audits.append(
            AccessAudit(
                key=key,
                steps=steps,
                phi_before=phi_before,
                phi_after=phi_after,
                rank_root=rank_root,
                rank_node=rank_node,
            )
        )
    return audits


def worst_margin(audits: Iterable[AccessAudit]) -> Optional[float]:
    """Smallest (most dangerous) margin across audits, or None if empty."""
    margins = [a.margin for a in audits]
    return min(margins) if margins else None
