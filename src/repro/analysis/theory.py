"""Closed-form results from the paper: Lemma 9, Theorem 6, Remark 34.

These formulas let tests and benchmarks check measured total distances
against the paper's asymptotics without re-deriving anything:

* Lemma 9: the full k-ary tree and the centroid (k+1)-degree tree both have
  uniform-workload total distance ``n² log_k n + O(n²)``.
* Theorem 33: the optimal tree's total distance is ``Ω(n² log n)``.
* Remark 34: the centroid tree's approximation ratio is ``1 + O(1/log n)``.
"""

from __future__ import annotations

import math

__all__ = [
    "lemma9_estimate",
    "tree_levels",
    "full_tree_edge_level_counts",
    "centroid_approximation_gap",
]


def tree_levels(n: int, k: int) -> int:
    """Number of levels of the full (weakly-complete) k-ary tree on ``n``."""
    if n < 1:
        return 0
    levels = 1
    cap = 1
    width = 1
    while cap < n:
        width *= k
        cap += width
        levels += 1
    return levels


def lemma9_estimate(n: int, k: int) -> float:
    """Lemma 9 leading term ``n² log_k n`` in *unordered-pair* units.

    The paper sums edge potentials ``Σ_e s_e (n - s_e)`` (each unordered
    pair counted once); multiply by 2 for the ordered convention used by
    :func:`repro.analysis.distance.all_pairs_total_distance`.  The true
    total undershoots this leading term by Θ(n²) (every tree level
    contributes ``n²(1 - k^{-i}) < n²``), with a constant of roughly 3.
    """
    if n <= 1:
        return 0.0
    return n * n * math.log(n, k)


def full_tree_edge_level_counts(n: int, k: int) -> list[int]:
    """Edges per level of the full k-ary tree (level i has ≤ k^{i+1} edges)."""
    counts = []
    placed = 1
    width = 1
    while placed < n:
        width *= k
        level = min(width, n - placed)
        counts.append(level)
        placed += level
    return counts


def centroid_approximation_gap(n: int) -> float:
    """Remark 34's bound on the centroid tree's approximation ratio minus 1.

    The centroid tree misses the optimum by at most ``O(n²)`` while the
    optimum is ``Ω(n² log n)``, giving ratio ``1 + O(1 / log n)``; returns
    the ``1 / log₂ n`` envelope (constant omitted).
    """
    if n <= 2:
        return 1.0
    return 1.0 / math.log2(n)
