"""Tree distance oracles and demand-weighted total distance.

Evaluating a static topology against a demand matrix
(``TotalDistance(D, G)`` from Section 2) needs many pairwise tree distances.
:class:`TreeDistanceOracle` precomputes depths and binary-lifting ancestor
tables in O(n log n) and answers vectorized LCA/distance queries in
O(log n) NumPy steps per *batch*, so scoring a sparse demand costs
O((n + p) log n) for ``p`` communicating pairs.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import InvalidTreeError
from repro.workloads.demand import DemandMatrix

__all__ = ["TreeDistanceOracle", "total_demand_distance", "all_pairs_total_distance"]


class TreeDistanceOracle:
    """Distance/LCA queries on a fixed tree over identifiers ``1..n``."""

    __slots__ = ("n", "depth", "_up", "_log")

    def __init__(self, parent: np.ndarray, root: int) -> None:
        """``parent[v]`` is the parent of ``v`` (1-indexed); ``parent[root] = 0``."""
        n = len(parent) - 1
        self.n = n
        if not 1 <= root <= n or parent[root] != 0:
            raise InvalidTreeError("root must have parent sentinel 0")
        depth = np.full(n + 1, -1, dtype=np.int64)
        depth[0] = -1
        depth[root] = 0
        # Resolve depths with repeated pointer jumps (handles arbitrary input
        # order in O(n log n) worst case, O(n) passes for shallow trees).
        pending = np.flatnonzero(depth[1:] < 0) + 1
        guard = 0
        while len(pending):
            parents_of = parent[pending]
            known = depth[parents_of] >= 0
            depth[pending[known]] = depth[parents_of[known]] + 1
            pending = pending[~known]
            guard += 1
            if guard > n + 1:
                raise InvalidTreeError("parent array contains a cycle")
        self.depth = depth
        log = max(1, int(np.ceil(np.log2(max(2, int(depth.max()) + 1)))) + 1)
        self._log = log
        up = np.zeros((log, n + 1), dtype=np.int64)
        up[0] = parent
        for j in range(1, log):
            up[j] = up[j - 1][up[j - 1]]
        self._up = up

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree) -> "TreeDistanceOracle":
        """Build from any tree exposing ``n``, ``root_id`` and ``iter_edges()``."""
        n = tree.n
        parent = np.zeros(n + 1, dtype=np.int64)
        for a, b in tree.iter_edges():
            parent[b] = a  # iter_edges yields (parent, child)
        return cls(parent, tree.root_id)

    @classmethod
    def from_parent_map(cls, parents: dict[int, int], n: int) -> "TreeDistanceOracle":
        """Build from a child→parent map (missing entry = root)."""
        parent = np.zeros(n + 1, dtype=np.int64)
        roots = []
        for v in range(1, n + 1):
            p = parents.get(v, 0)
            parent[v] = p
            if p == 0:
                roots.append(v)
        if len(roots) != 1:
            raise InvalidTreeError(f"expected exactly one root, found {roots}")
        return cls(parent, roots[0])

    # ------------------------------------------------------------------
    def lca_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized lowest common ancestors of identifier arrays."""
        us = np.asarray(us, dtype=np.int64).copy()
        vs = np.asarray(vs, dtype=np.int64).copy()
        du = self.depth[us]
        dv = self.depth[vs]
        # Lift the deeper endpoint to the shallower depth.
        diff = du - dv
        swap = diff < 0
        us[swap], vs[swap] = vs[swap], us[swap].copy()
        diff = np.abs(diff)
        for j in range(self._log - 1, -1, -1):
            take = (diff >> j) & 1 == 1
            if np.any(take):
                us[take] = self._up[j][us[take]]
        same = us == vs
        for j in range(self._log - 1, -1, -1):
            differs = ~same & (self._up[j][us] != self._up[j][vs])
            if np.any(differs):
                us[differs] = self._up[j][us[differs]]
                vs[differs] = self._up[j][vs[differs]]
        out = np.where(same, us, self._up[0][us])
        return out

    def distances(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized tree distances between endpoint arrays."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        w = self.lca_many(us, vs)
        return self.depth[us] + self.depth[vs] - 2 * self.depth[w]

    def lca(self, u: int, v: int) -> int:
        return int(self.lca_many(np.array([u]), np.array([v]))[0])

    def distance(self, u: int, v: int) -> int:
        return int(self.distances(np.array([u]), np.array([v]))[0])


def total_demand_distance(tree, demand: DemandMatrix) -> int:
    """``TotalDistance(D, G)``: demand-weighted sum of tree distances."""
    oracle = tree if isinstance(tree, TreeDistanceOracle) else TreeDistanceOracle.from_tree(tree)
    us, vs, w = demand.nonzero_arrays()
    if len(us) == 0:
        return 0
    return int(np.dot(oracle.distances(us, vs), w))


def all_pairs_total_distance(tree) -> int:
    """Total distance of the finite uniform workload: Σ_{u≠v} d(u, v).

    Counted over *ordered* pairs, matching the paper's
    ``TotalDistance(D_uniform, T)`` with the all-ones demand.
    """
    oracle = tree if isinstance(tree, TreeDistanceOracle) else TreeDistanceOracle.from_tree(tree)
    n = oracle.n
    total = 0
    vs = np.arange(1, n + 1, dtype=np.int64)
    for u in range(1, n + 1):
        us = np.full(n, u, dtype=np.int64)
        total += int(oracle.distances(us, vs).sum())
    return total


def total_distance_via_potentials(tree) -> int:
    """Σ_{u≠v} d(u, v) (ordered pairs) in O(n) via edge potentials.

    Under uniform demand the potential of edge ``e`` is
    ``2 · s_e · (n - s_e)`` with ``s_e`` the size of the subtree below ``e``
    (Appendix B uses the unordered form); summing potentials equals summing
    pairwise distances.  Works for any tree exposing ``root_id``, ``n`` and
    ``iter_edges()``.
    """
    n = tree.n
    children: list[list[int]] = [[] for _ in range(n + 1)]
    parent = np.zeros(n + 1, dtype=np.int64)
    for a, b in tree.iter_edges():
        children[a].append(b)
        parent[b] = a
    size = np.ones(n + 1, dtype=np.int64)
    order: list[int] = [tree.root_id]
    for v in order:
        order.extend(children[v])
    for v in reversed(order[1:]):
        size[parent[v]] += size[v]
    total = 0
    for v in order[1:]:
        s = int(size[v])
        total += 2 * s * (n - s)
    return total


def trace_static_cost(tree, trace) -> int:
    """Total routing cost of serving ``trace`` on a static ``tree``."""
    oracle = TreeDistanceOracle.from_tree(tree)
    return int(oracle.distances(trace.sources, trace.targets).sum())
