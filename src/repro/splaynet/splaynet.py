"""Classic SplayNet (Schmid et al. [22]) — the paper's main baseline.

SplayNet serves ``(u, v)`` by splaying ``u`` to the position of the lowest
common ancestor of the endpoints and then splaying ``v`` to a child of
``u``.  We reproduce it faithfully (zig / zig-zig / zig-zag with a stop
node), counting each splay step as one rotation so its reconfiguration
numbers are directly comparable with the k-ary implementation's.
"""

from __future__ import annotations

from typing import Optional

from repro.network.protocols import ServeResult
from repro.splaynet.tree import BSTNetwork, BSTNode

__all__ = ["SplayNet"]


class SplayNet:
    """The binary self-adjusting search tree network of [22].

    Parameters
    ----------
    n:
        Number of nodes; the initial topology is the complete BST on
        ``1..n`` (or pass an explicit :class:`BSTNetwork`).
    """

    def __init__(self, n: Optional[int] = None, *, initial: "str | BSTNetwork" = "balanced") -> None:
        if isinstance(initial, BSTNetwork):
            self.tree = initial
        else:
            if n is None:
                raise ValueError("n is required unless a tree is provided")
            self.tree = BSTNetwork.balanced(n)

    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def k(self) -> int:
        return 2

    def distance(self, u: int, v: int) -> int:
        return self.tree.distance(u, v)

    # ------------------------------------------------------------------
    def _splay_until(self, node: BSTNode, stop: Optional[BSTNode]) -> tuple[int, int]:
        """Splay ``node`` until its parent is ``stop``; (rotations, links).

        Rotations are counted as *primitive* BST rotations (a zig-zig or
        zig-zag performs two), the natural unit cost for binary trees; the
        k-ary networks count each merge-and-split transformation as one, per
        the paper's Section 5.1 convention.  EXPERIMENTS.md discusses the
        sensitivity of Table 8 to this choice.
        """
        rotations = 0
        links = 0
        tree = self.tree
        while node.parent is not stop:
            parent = node.parent
            assert parent is not None
            grand = parent.parent
            if grand is stop or grand is None:
                links += tree.rotate_up(node)  # zig
                rotations += 1
            else:
                same_side = (grand.left is parent) == (parent.left is node)
                if same_side:  # zig-zig: rotate parent first
                    links += tree.rotate_up(parent)
                    links += tree.rotate_up(node)
                else:  # zig-zag: rotate node twice
                    links += tree.rotate_up(node)
                    links += tree.rotate_up(node)
                rotations += 2
        return rotations, links

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve ``(u, v)``: route over the pre-adjustment tree, then splay.

        After the call (``u != v``) the endpoints are adjacent.
        """
        if u == v:
            return ServeResult(0, 0, 0)
        tree = self.tree
        w = tree.lca(u, v)
        routing_cost = tree.search_steps(w, u) + tree.search_steps(w, v)
        node_u = tree.node(u)
        node_v = tree.node(v)
        if w is node_v:
            rotations, links = self._splay_until(node_u, node_v)
        else:
            rotations = links = 0
            if w is not node_u:
                rotations, links = self._splay_until(node_u, w.parent)
            r2, l2 = self._splay_until(node_v, node_u)
            rotations += r2
            links += l2
        return ServeResult(routing_cost, rotations, links)

    def validate(self) -> None:
        self.tree.validate()

    # ------------------------------------------------------------------
    def snapshot_state(self) -> BSTNetwork:
        """An independent deep copy of the current topology."""
        return self.tree.clone()

    def restore_state(self, state: BSTNetwork) -> None:
        """Rewind the topology to a :meth:`snapshot_state` checkpoint."""
        if state.n != self.n:
            raise ValueError(
                f"snapshot has n={state.n}, network has n={self.n}"
            )
        self.tree = state.clone()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplayNet(n={self.n})"
