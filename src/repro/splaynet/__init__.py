"""splaynet subpackage — see module docstrings."""
