"""Optimal static BST network — the [22] baseline ("Static Optimal Net").

The optimal binary search tree network DP of SplayNet is exactly the ``k=2``
case of the paper's Theorem 2 DP (a routing-based 2-ary search tree *is* a
BST: the single routing element is the node's own identifier).  We therefore
run the general engine and convert the result into a
:class:`~repro.splaynet.tree.BSTNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.optimal.general import optimal_static_tree
from repro.splaynet.tree import BSTNetwork, BSTNode

__all__ = ["OptimalBSTResult", "optimal_static_bst"]


@dataclass(frozen=True)
class OptimalBSTResult:
    """An optimal static BST network and its total distance."""

    network: BSTNetwork
    cost: int


def optimal_static_bst(demand) -> OptimalBSTResult:
    """Compute the optimal static BST network for a demand matrix."""
    result = optimal_static_tree(demand, 2)
    karoot = result.tree.root

    def convert(kanode) -> BSTNode:
        if kanode.routing != [float(kanode.nid)]:
            raise OptimizationError(  # pragma: no cover - structural guarantee
                "k=2 optimal tree is not routing-based as expected"
            )
        node = BSTNode(kanode.nid)
        left, right = kanode.children
        if left is not None:
            node.left = convert(left)
            node.left.parent = node
        if right is not None:
            node.right = convert(right)
            node.right.parent = node
        return node

    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 4 * result.tree.n + 100))
    try:
        root = convert(karoot)
    finally:
        sys.setrecursionlimit(old)
    return OptimalBSTResult(network=BSTNetwork(root), cost=result.cost)
