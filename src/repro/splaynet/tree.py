"""Binary search tree network substrate for the classic SplayNet baseline.

Unlike the k-ary trees of :mod:`repro.core`, the binary network is
*routing-based*: each node's permanent identifier doubles as its single
routing key (exactly the SplayNet [22] model), so no separate routing array
is needed and rotations are the textbook BST rotations.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import InvalidTreeError

__all__ = ["BSTNode", "BSTNetwork"]


class BSTNode:
    """A node of a binary search tree network (key == identifier)."""

    __slots__ = ("key", "left", "right", "parent")

    def __init__(self, key: int) -> None:
        self.key = key
        self.left: Optional[BSTNode] = None
        self.right: Optional[BSTNode] = None
        self.parent: Optional[BSTNode] = None

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def iter_subtree(self) -> Iterator["BSTNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        l = self.left.key if self.left else "."
        r = self.right.key if self.right else "."
        return f"BSTNode({self.key}, left={l}, right={r})"


class BSTNetwork:
    """A binary search tree network on identifiers ``1..n``."""

    __slots__ = ("root", "_index")

    def __init__(self, root: BSTNode, *, validate: bool = True) -> None:
        self.root = root
        self._index: dict[int, BSTNode] = {}
        for node in root.iter_subtree():
            if node.key in self._index:
                raise InvalidTreeError(f"duplicate key {node.key}")
            self._index[node.key] = node
        n = len(self._index)
        if sorted(self._index) != list(range(1, n + 1)):
            raise InvalidTreeError("keys must form the contiguous range 1..n")
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    @classmethod
    def balanced(cls, n: int) -> "BSTNetwork":
        """The complete (weakly-complete, left-packed) BST on ``1..n``."""
        if n < 1:
            raise InvalidTreeError(f"need at least one node, got n={n}")

        def build(lo: int, hi: int) -> Optional[BSTNode]:
            if lo > hi:
                return None
            size = hi - lo + 1
            # Left subtree size of the size-`size` complete tree.
            levels = size.bit_length()
            interior = (1 << (levels - 1)) - 1
            last = size - interior
            half_last = 1 << max(levels - 2, 0)
            left_size = (interior - 1) // 2 + min(last, half_last)
            node = BSTNode(lo + left_size)
            left = build(lo, lo + left_size - 1)
            right = build(lo + left_size + 1, hi)
            if left is not None:
                node.left = left
                left.parent = node
            if right is not None:
                node.right = right
                right.parent = node
            return node

        root = build(1, n)
        assert root is not None
        return cls(root)

    @property
    def n(self) -> int:
        return len(self._index)

    @property
    def root_id(self) -> int:
        """Key of the current root node."""
        return self.root.key

    def __len__(self) -> int:
        return len(self._index)

    def node(self, key: int) -> BSTNode:
        try:
            return self._index[key]
        except KeyError:
            raise InvalidTreeError(f"no node with key {key}") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lca(self, u: int, v: int) -> BSTNode:
        """Lowest common ancestor, found by the search-path rule.

        Descend from the root while both keys are on the same side; the
        first node whose key lies in ``[min(u,v), max(u,v)]`` is the LCA —
        the standard SplayNet argument.
        """
        lo, hi = (u, v) if u < v else (v, u)
        node = self.root
        while not (lo <= node.key <= hi):
            node = node.left if hi < node.key else node.right
            if node is None:  # pragma: no cover - impossible for valid keys
                raise InvalidTreeError("LCA search fell off the tree")
        return node

    def search_steps(self, start: BSTNode, key: int) -> int:
        """Edges on the search path from ``start`` down to ``key``."""
        steps = 0
        node = start
        while node.key != key:
            node = node.left if key < node.key else node.right
            if node is None:  # pragma: no cover - impossible for valid keys
                raise InvalidTreeError("search fell off the tree")
            steps += 1
        return steps

    def distance(self, u: int, v: int) -> int:
        """Tree distance between ``u`` and ``v`` (via the LCA)."""
        if u == v:
            return 0
        w = self.lca(u, v)
        return self.search_steps(w, u) + self.search_steps(w, v)

    def depth(self, key: int) -> int:
        node = self.node(key)
        d = 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def height(self) -> int:
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in (node.left, node.right):
                if child is not None:
                    stack.append((child, d + 1))
        return best

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for node in self.root.iter_subtree():
            for child in (node.left, node.right):
                if child is not None:
                    yield (node.key, child.key)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        return frozenset(
            (a, b) if a < b else (b, a) for a, b in self.iter_edges()
        )

    def clone(self) -> "BSTNetwork":
        """A deep copy of the network (fresh node objects, same layout)."""
        twins = {key: BSTNode(key) for key in self._index}
        for key, node in self._index.items():
            twin = twins[key]
            if node.left is not None:
                twin.left = twins[node.left.key]
                twin.left.parent = twin
            if node.right is not None:
                twin.right = twins[node.right.key]
                twin.right.parent = twin
        return BSTNetwork(twins[self.root.key], validate=False)

    # ------------------------------------------------------------------
    # rotations (textbook, with parent pointers)
    # ------------------------------------------------------------------
    def rotate_up(self, node: BSTNode) -> int:
        """Rotate ``node`` above its parent; returns links changed (2 or 4)."""
        parent = node.parent
        if parent is None:
            raise InvalidTreeError(f"cannot rotate root {node.key}")
        grand = parent.parent
        links = 2 if grand is None else 4  # moved-subtree edge + grand edge
        if parent.left is node:
            moved = node.right
            node.right = parent
            parent.left = moved
        else:
            moved = node.left
            node.left = parent
            parent.right = moved
        if moved is not None:
            moved.parent = parent
        else:
            links -= 2  # no subtree actually moved
        parent.parent = node
        node.parent = grand
        if grand is None:
            self.root = node
        elif grand.left is parent:
            grand.left = node
        else:
            grand.right = node
        return links

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the BST property and parent-pointer consistency."""
        if self.root.parent is not None:
            raise InvalidTreeError("root has a parent")
        count = 0
        stack: list[tuple[BSTNode, float, float]] = [
            (self.root, float("-inf"), float("inf"))
        ]
        while stack:
            node, lo, hi = stack.pop()
            count += 1
            if not lo < node.key < hi:
                raise InvalidTreeError(
                    f"key {node.key} violates BST bounds ({lo}, {hi})"
                )
            if node.left is not None:
                if node.left.parent is not node:
                    raise InvalidTreeError(f"bad parent pointer at {node.left.key}")
                stack.append((node.left, lo, node.key))
            if node.right is not None:
                if node.right.parent is not node:
                    raise InvalidTreeError(f"bad parent pointer at {node.right.key}")
                stack.append((node.right, node.key, hi))
        if count != self.n:
            raise InvalidTreeError("tree reachable from root does not cover index")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BSTNetwork(n={self.n}, root={self.root.key})"
