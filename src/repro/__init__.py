"""ksan — self-adjusting k-ary search tree networks.

A from-scratch reproduction of Feder, Paramonov, Mavrin, Salem, Aksenov and
Schmid, *Toward Self-Adjusting k-ary Search Tree Networks* (arXiv
2302.13113): the k-ary SplayNet and (k+1)-SplayNet online self-adjusting
networks, the offline optimal/centroid static constructions, the SplayNet
baseline, and the full trace-driven evaluation harness.

Quickstart
----------
>>> from repro import open_session, uniform_trace
>>> session = open_session("kary-splaynet", n=64, k=4, engine="flat")
>>> session.serve(3, 60)  # doctest: +SKIP
ServeResult(routing_cost=6, rotations=4, links_changed=10)
>>> session.serve_stream(uniform_trace(64, 1000, seed=1))  # doctest: +SKIP
BatchServeResult(m=1000, ...)
>>> session.metrics.average_routing  # doctest: +SKIP
3.4

See README.md for the architecture tour and DESIGN.md for the paper mapping.
"""

from repro.analysis.bounds import (
    compare_with_bound,
    static_finger_bound,
    working_set_bound,
    working_set_sizes,
)
from repro.analysis.complexity import (
    ComplexityReport,
    classify_trace,
    complexity_report,
    spatial_complexity,
    temporal_complexity,
)
from repro.analysis.distance import (
    TreeDistanceOracle,
    all_pairs_total_distance,
    total_demand_distance,
    total_distance_via_potentials,
)
from repro.analysis.entropy import entropy_bound, entropy_bound_report
from repro.analysis.potential import (
    AccessAudit,
    audit_splaynet_accesses,
    audit_splaytree_accesses,
)
from repro.core.builders import (
    build_balanced_tree,
    build_complete_tree,
    build_path_tree,
    build_random_tree,
)
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.engine import best_available_engine, native_available
from repro.core.rotations import k_semi_splay, k_splay
from repro.core.splaynet import KArySplayNet
from repro.core.tree import KAryTreeNetwork
from repro.datastructures import (
    MoveToRootTree,
    SherkKarySplayTree,
    SplayTree,
)
from repro.errors import (
    FaultInjected,
    IngressConnectionError,
    IngressError,
    IngressOverload,
    IngressProtocolError,
    ReliabilityError,
    ReproError,
)
from repro.ingress import (
    AsyncIngressClient,
    BreakerConfig,
    CircuitBreaker,
    IngressClient,
    IngressServer,
)
from repro.net import (
    LatencyStats,
    NetworkSpec,
    PolicySpec,
    Session,
    SessionMetrics,
    SessionSnapshot,
    build_network,
    network_algorithms,
    open_session,
    register_network,
    register_policy,
)
from repro.serving import (
    FarmMetrics,
    HealthConfig,
    HealthMonitor,
    ServeFarm,
    ShardRouter,
    shard_for_key,
)
from repro.parallel import (
    ParallelConfig,
    SweepSpec,
    parallel_map,
    run_sweep,
)
from repro.reliability import (
    ChaosConfig,
    FaultPlan,
    RetryPolicy,
    backoff_delays,
    inject_faults,
    run_chaos,
    write_chaos_record,
)
from repro.results import (
    JsonlStore,
    ResultStore,
    SqliteStore,
    copy_results,
    default_store_path,
    iter_results_jsonl,
    open_store,
    read_results_jsonl,
    spec_store_hash,
)
from repro.network.cost import CostModel, LINK_CHURN, ROUTING_ONLY, UNIT_ROTATIONS
from repro.network.lazy import LazyRebuildNetwork
from repro.network.metrics import cumulative_advantage, summarize_series
from repro.network.policies import (
    FrozenNetwork,
    ProbabilisticNetwork,
    ThresholdedNetwork,
)
from repro.network.protocols import SelfAdjustingNetwork, ServeResult
from repro.network.simulator import SimulationResult, Simulator, simulate
from repro.network.static import StaticTreeNetwork
from repro.optimal.general import optimal_static_tree
from repro.optimal.uniform import optimal_uniform_cost, optimal_uniform_tree
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.splaynet import SplayNet
from repro.splaynet.tree import BSTNetwork
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.demand import DemandMatrix
from repro.workloads.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workloads.stats import summarize_trace
from repro.workloads.mixtures import (
    elephant_mice_trace,
    interleave_traces,
    markov_modulated_trace,
    phased_trace,
    shuffle_phase_trace,
)
from repro.workloads.synthetic import (
    bursty_trace,
    hotspot_trace,
    permutation_trace,
    sequential_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace
from repro.viz.ascii import bar_chart, render_kary_network, sparkline

__version__ = "1.1.0"

__all__ = [
    # unified network API (spec-driven construction + online sessions)
    "NetworkSpec",
    "PolicySpec",
    "build_network",
    "register_network",
    "register_policy",
    "network_algorithms",
    "open_session",
    "Session",
    "SessionMetrics",
    "SessionSnapshot",
    "LatencyStats",
    "best_available_engine",
    "native_available",
    # sharded serving (the serve farm)
    "ServeFarm",
    "FarmMetrics",
    "ShardRouter",
    "shard_for_key",
    "HealthConfig",
    "HealthMonitor",
    # socket ingress gateway (serving over the network)
    "IngressServer",
    "IngressClient",
    "AsyncIngressClient",
    "BreakerConfig",
    "CircuitBreaker",
    # core self-adjusting networks
    "KArySplayNet",
    "CentroidSplayNet",
    "SplayNet",
    "KAryTreeNetwork",
    "BSTNetwork",
    "k_semi_splay",
    "k_splay",
    # static constructions
    "build_complete_tree",
    "build_balanced_tree",
    "build_centroid_tree",
    "build_path_tree",
    "build_random_tree",
    "optimal_static_tree",
    "optimal_static_bst",
    "optimal_uniform_cost",
    "optimal_uniform_tree",
    "StaticTreeNetwork",
    # simulation substrate
    "Simulator",
    "SimulationResult",
    "simulate",
    "LazyRebuildNetwork",
    "ThresholdedNetwork",
    "ProbabilisticNetwork",
    "FrozenNetwork",
    "cumulative_advantage",
    "summarize_series",
    "ServeResult",
    "SelfAdjustingNetwork",
    "CostModel",
    "ROUTING_ONLY",
    "UNIT_ROTATIONS",
    "LINK_CHURN",
    # workloads
    "Trace",
    "DemandMatrix",
    "uniform_trace",
    "temporal_trace",
    "zipf_trace",
    "hotspot_trace",
    "bursty_trace",
    "permutation_trace",
    "sequential_trace",
    "hpc_trace",
    "projector_trace",
    "facebook_trace",
    "summarize_trace",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_npz",
    "load_trace_npz",
    # mixture workloads
    "elephant_mice_trace",
    "markov_modulated_trace",
    "phased_trace",
    "shuffle_phase_trace",
    "interleave_traces",
    # analysis
    "TreeDistanceOracle",
    "total_demand_distance",
    "all_pairs_total_distance",
    "total_distance_via_potentials",
    "entropy_bound",
    "entropy_bound_report",
    "ComplexityReport",
    "complexity_report",
    "classify_trace",
    "spatial_complexity",
    "temporal_complexity",
    "AccessAudit",
    "audit_splaynet_accesses",
    "audit_splaytree_accesses",
    "working_set_sizes",
    "working_set_bound",
    "static_finger_bound",
    "compare_with_bound",
    # classic self-adjusting data structures (baselines)
    "SplayTree",
    "MoveToRootTree",
    "SherkKarySplayTree",
    # parallel execution
    "ParallelConfig",
    "parallel_map",
    "SweepSpec",
    "run_sweep",
    # reliability (fault injection, retry, chaos soak)
    "FaultPlan",
    "inject_faults",
    "RetryPolicy",
    "backoff_delays",
    "ChaosConfig",
    "run_chaos",
    "write_chaos_record",
    # results storage (pluggable campaign record backends)
    "ResultStore",
    "JsonlStore",
    "SqliteStore",
    "open_store",
    "copy_results",
    "iter_results_jsonl",
    "read_results_jsonl",
    "default_store_path",
    "spec_store_hash",
    # visualization
    "render_kary_network",
    "bar_chart",
    "sparkline",
    # errors
    "ReproError",
    "ReliabilityError",
    "FaultInjected",
    "IngressError",
    "IngressProtocolError",
    "IngressConnectionError",
    "IngressOverload",
    "__version__",
]
