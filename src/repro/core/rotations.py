"""The paper's novel rotations: ``k-semi-splay`` and ``k-splay``.

Both operations (Section 4.1, Figures 3-6) act on a small connected group of
nodes, *merge* their routing arrays, and re-split the merged array so that a
chosen node ends on top — while every node keeps its permanent identifier.
Subtrees hanging off the group are reattached to whichever group node's slot
now spans them.

Correctness rests on one invariant maintained everywhere in this library:
*every routing element of a node lies strictly inside the node's ancestor
window*.  Consequently, in the merged array ``M`` of a parent/child (or
grandparent/parent/child) group, each hanging subtree occupies exactly one
open interval between consecutive elements of ``M`` (its *merged interval*),
so reattachment is a permutation of merged intervals to slots — never a
split.  Constructive feasibility of the block choices is argued inline.

Terminology used throughout: a *block* is a run of ``k-1`` consecutive
elements ``M[j : j+k-1]`` of a merged array; its *window* is the open
interval ``(M[j-1], M[j+k-1])`` (with ±inf sentinels), which spans the ``k``
merged intervals ``j .. j+k-1``; a block *covers* a key when the key lies in
its window, which holds iff ``j <= pos <= j+k-1`` where ``pos`` is the key's
merged-interval index.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.core.node import KAryNode
from repro.errors import RotationError

__all__ = [
    "BLOCK_POLICIES",
    "k_semi_splay",
    "k_splay",
    "splay_step",
    "RotationOutcome",
]

#: Block-selection policies: where, within its feasible range, the block
#: covering a demoted key is placed.  ``center`` balances the key inside the
#: block window; ``left``/``right`` push the block to the range ends.  The
#: policy is a free parameter of the paper's construction and is exercised by
#: the block-policy ablation benchmark.
BLOCK_POLICIES = ("center", "left", "right")


#: When true, rotations re-verify that every reattached subtree occupies a
#: single merged interval (an O(k) extra bisect per subtree).  Tests enable
#: this; production serving relies on the construction-time invariants.
PARANOID = False


class RotationOutcome:
    """What a rotation did: the group's new top node and the link churn."""

    __slots__ = ("new_top", "links_changed")

    def __init__(self, new_top: KAryNode, links_changed: int) -> None:
        self.new_top = new_top
        self.links_changed = links_changed


def _choose_block_start(pos: int, k: int, limit: int, policy: str) -> int:
    """A feasible block start ``j`` with ``j <= pos <= j + k - 1``.

    ``limit`` is the largest legal start (``len(M) - (k-1)``).  The feasible
    range ``[max(0, pos - (k-1)), min(limit, pos)]`` is never empty because
    ``0 <= pos <= limit + k - 1``.
    """
    lo = max(0, pos - (k - 1))
    hi = min(limit, pos)
    if policy == "center":
        return min(max(pos - (k - 1) // 2, lo), hi)
    if policy == "left":
        return lo
    if policy == "right":
        return hi
    raise RotationError(f"unknown block policy {policy!r}")


def _gather_subtrees(
    owners: list[KAryNode], exclude: set[int]
) -> list[tuple[KAryNode, KAryNode]]:
    """Detach all non-group children of ``owners``; yields (subtree, old_owner)."""
    subs: list[tuple[KAryNode, KAryNode]] = []
    for owner in owners:
        for slot, child in enumerate(owner.children):
            if child is not None and child.nid not in exclude:
                subs.append((owner.detach_child(slot), owner))
    return subs


def _merged_interval(merged: list[float], sub: KAryNode) -> int:
    """The merged-interval index occupied by subtree ``sub``."""
    m = bisect_left(merged, sub.smin)
    if PARANOID and bisect_left(merged, sub.smax) != m:
        raise RotationError(
            f"subtree of {sub.nid} (range [{sub.smin}, {sub.smax}]) straddles"
            " a merged routing element — window invariant violated"
        )
    return m


def k_semi_splay(child: KAryNode, *, policy: str = "center") -> RotationOutcome:
    """Promote ``child`` above its parent (the paper's zig generalization).

    The parent ``x`` takes a block of ``k-1`` consecutive merged elements
    covering ``x``'s identifier and becomes a child of ``child``; every other
    merged element stays with ``child``.  Feasibility: ``x``'s identifier has
    a merged-interval index ``pos`` in ``[0, 2k-2]``, and block starts range
    over ``[0, k-1]``, so a covering start always exists.
    """
    x = child.parent
    if x is None:
        raise RotationError(f"node {child.nid} is the root; cannot semi-splay")
    y = child
    k = y.k

    grand: Optional[KAryNode] = x.parent
    gslot = x.pslot
    if grand is not None:
        grand.detach_child(gslot)

    merged = sorted(x.routing + y.routing)
    subs = _gather_subtrees([x, y], {x.nid, y.nid})
    pos_x = bisect_left(merged, x.nid)
    j = _choose_block_start(pos_x, k, k - 1, policy)

    x.routing = merged[j : j + k - 1]
    y.routing = merged[:j] + merged[j + k - 1 :]
    x.children = [None] * k
    y.children = [None] * k
    x.parent = y.parent = None
    x.pslot = y.pslot = -1

    y.attach_child(x, j)
    # Link churn: the x–y edge only reverses direction (same physical link);
    # the grandparent link is re-pointed from x to y (one removed, one
    # added); each subtree whose owner flips between x and y costs two.
    links = 0 if grand is None else 2
    for sub, old_owner in subs:
        m = _merged_interval(merged, sub)
        if j <= m <= j + k - 1:
            x.attach_child(sub, m - j)
            if old_owner is not x:
                links += 2
        else:
            y.attach_child(sub, m if m < j else m - (k - 1))
            if old_owner is not y:
                links += 2
    x.recompute_range()
    y.recompute_range()

    if grand is not None:
        grand.attach_child(y, gslot)

    return RotationOutcome(y, links)


def k_splay(node: KAryNode, *, policy: str = "center") -> RotationOutcome:
    """Promote ``node`` above its parent *and* grandparent (Figures 4-6).

    With ``x`` the grandparent, ``y`` the parent and ``z = node``:

    * **Case 1** (paper's first case, the zig-zag analogue) applies when the
      identifiers of ``x`` and ``y`` are separated by more than ``k-1``
      merged elements: ``x`` and ``y`` each take a covering block and both
      become children of ``z``.  Pushing ``x``'s block left and ``y``'s block
      right (or mirrored) leaves at least one ``z`` element between the two
      windows, so they land in distinct slots of ``z``.
    * **Case 2** (the zig-zig analogue) applies otherwise: a run of
      ``2(k-1)`` elements covering both ``x`` and ``y`` is carved out for the
      pair, ``z`` keeps the rest; inside the run, ``x`` takes a covering
      block and hangs under ``y``, which hangs under ``z``.
    """
    y = node.parent
    if y is None:
        raise RotationError(f"node {node.nid} is the root; cannot k-splay")
    x = y.parent
    if x is None:
        raise RotationError(
            f"node {node.nid} has no grandparent; use k_semi_splay instead"
        )
    z = node
    k = z.k

    grand: Optional[KAryNode] = x.parent
    gslot = x.pslot
    if grand is not None:
        grand.detach_child(gslot)

    merged = sorted(x.routing + y.routing + z.routing)
    subs = _gather_subtrees([x, y, z], {x.nid, y.nid, z.nid})
    pos_x = bisect_left(merged, x.nid)
    pos_y = bisect_left(merged, y.nid)

    for member in (x, y, z):
        member.children = [None] * k
        member.parent = None
        member.pslot = -1

    if abs(pos_x - pos_y) > k - 1:
        # Case 1 turns the chain x–y–z into the star z–{x, y}: the y–z link
        # survives, x–y is replaced by x–z (two changes).
        links = _k_splay_distant(merged, subs, x, y, z, pos_x, pos_y, k) + 2
    else:
        # Case 2 reverses the chain in place: both group links survive.
        links = _k_splay_close(merged, subs, x, y, z, pos_x, pos_y, k, policy)

    if grand is not None:
        grand.attach_child(z, gslot)
        links += 2  # grandparent link re-pointed from x to z

    return RotationOutcome(z, links)


def _k_splay_distant(
    merged: list[float],
    subs: list[KAryNode],
    x: KAryNode,
    y: KAryNode,
    z: KAryNode,
    pos_x: int,
    pos_y: int,
    k: int,
) -> int:
    """Case 1: ``x`` and ``y`` become siblings under ``z``.

    With ``pos_lo < pos_hi`` the two identifier positions, the starts
    ``j_lo = max(0, pos_lo - (k-1))`` and ``j_hi = min(2k-2, pos_hi)`` always
    cover their keys, and ``j_hi - j_lo >= k`` (one merged element strictly
    between the blocks) follows from ``pos_hi - pos_lo >= k``; that element
    stays with ``z`` and separates the two windows into distinct ``z`` slots.
    """
    lo_node, pos_lo, hi_node, pos_hi = (
        (x, pos_x, y, pos_y) if pos_x < pos_y else (y, pos_y, x, pos_x)
    )
    j_lo = max(0, pos_lo - (k - 1))
    j_hi = min(2 * (k - 1), pos_hi)
    if j_hi - j_lo < k:  # pragma: no cover - proven impossible
        raise RotationError("k-splay case 1 block separation failed")

    lo_node.routing = merged[j_lo : j_lo + k - 1]
    hi_node.routing = merged[j_hi : j_hi + k - 1]
    z.routing = merged[:j_lo] + merged[j_lo + k - 1 : j_hi] + merged[j_hi + k - 1 :]

    z.attach_child(lo_node, j_lo)
    z.attach_child(hi_node, j_hi - (k - 1))
    links = 0
    for sub, old_owner in subs:
        m = _merged_interval(merged, sub)
        if j_lo <= m <= j_lo + k - 1:
            new_owner = lo_node
            lo_node.attach_child(sub, m - j_lo)
        elif j_hi <= m <= j_hi + k - 1:
            new_owner = hi_node
            hi_node.attach_child(sub, m - j_hi)
        elif m < j_lo:
            new_owner = z
            z.attach_child(sub, m)
        elif m < j_hi:
            new_owner = z
            z.attach_child(sub, m - (k - 1))
        else:
            new_owner = z
            z.attach_child(sub, m - 2 * (k - 1))
        if new_owner is not old_owner:
            links += 2
    lo_node.recompute_range()
    hi_node.recompute_range()
    z.recompute_range()
    return links


def _k_splay_close(
    merged: list[float],
    subs: list[KAryNode],
    x: KAryNode,
    y: KAryNode,
    z: KAryNode,
    pos_x: int,
    pos_y: int,
    k: int,
    policy: str,
) -> int:
    """Case 2: chain ``z -> y -> x``.

    A run of ``2(k-1)`` consecutive elements covering both identifiers exists
    because they are at most ``k-1`` merged elements apart; ``z`` keeps the
    complement.  Inside the run, ``x`` takes a covering block (always
    feasible) and ``y`` the rest.
    """
    lo_pos, hi_pos = min(pos_x, pos_y), max(pos_x, pos_y)
    width = 2 * (k - 1)
    j2_lo = max(0, hi_pos - width)
    j2_hi = min(k - 1, lo_pos)
    if j2_lo > j2_hi:  # pragma: no cover - proven impossible
        raise RotationError("k-splay case 2 pair window infeasible")
    j2 = min(max(hi_pos - width + (width - (hi_pos - lo_pos)) // 2, j2_lo), j2_hi)

    pair = merged[j2 : j2 + width]
    z.routing = merged[:j2] + merged[j2 + width :]

    pos_x2 = pos_x - j2
    j1 = _choose_block_start(pos_x2, k, k - 1, policy)
    x.routing = pair[j1 : j1 + k - 1]
    y.routing = pair[:j1] + pair[j1 + k - 1 :]

    z.attach_child(y, j2)
    y.attach_child(x, j1)
    links = 0
    for sub, old_owner in subs:
        m = _merged_interval(merged, sub)
        if not j2 <= m <= j2 + width:
            new_owner = z
            z.attach_child(sub, m if m < j2 else m - width)
        else:
            m2 = m - j2
            if j1 <= m2 <= j1 + k - 1:
                new_owner = x
                x.attach_child(sub, m2 - j1)
            else:
                new_owner = y
                y.attach_child(sub, m2 if m2 < j1 else m2 - (k - 1))
        if new_owner is not old_owner:
            links += 2
    x.recompute_range()
    y.recompute_range()
    z.recompute_range()
    return links


def splay_step(node: KAryNode, stop: Optional[KAryNode], *, policy: str = "center") -> RotationOutcome:
    """One splay step lifting ``node`` toward the child of ``stop``.

    Applies ``k-splay`` when the grandparent exists below ``stop`` and
    ``k-semi-splay`` for the final single level, mirroring the binary splay
    discipline the paper's Theorem 12 analysis relies on.
    """
    parent = node.parent
    if parent is None or parent is stop:
        raise RotationError(f"node {node.nid} is already below the stop node")
    grand = parent.parent
    if grand is stop or grand is None:
        return k_semi_splay(node, policy=policy)
    return k_splay(node, policy=policy)
