"""Constructors for k-ary search tree networks.

Every builder works the same way: a *partitioner* decides, for a contiguous
identifier segment of a given size, how many nodes go into each child block
and where the node's own identifier sits among the blocks; the recursive
assembler then derives the routing array deterministically:

* a **boundary** separator ``x + 0.5`` between each pair of consecutive child
  blocks (one integer gap is split by at most one node of the laminar segment
  decomposition, so boundaries are globally unique);
* **pad** separators ``i + 2^-j`` from node ``i``'s private zone to fill the
  array up to ``k - 1`` entries.

The resulting trees satisfy every invariant of
:meth:`repro.core.tree.KAryTreeNetwork.validate` by construction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.keyspace import MAX_K, pad_values
from repro.core.node import KAryNode
from repro.core.tree import KAryTreeNetwork
from repro.errors import InvalidTreeError

__all__ = [
    "Partition",
    "Partitioner",
    "ShapeNode",
    "assemble_segment",
    "build_from_partitioner",
    "build_from_shape",
    "build_complete_tree",
    "build_balanced_tree",
    "build_path_tree",
    "build_random_tree",
    "complete_partitioner",
    "balanced_partitioner",
    "path_partitioner",
    "random_partitioner",
    "complete_tree_capacity",
]


class ShapeNode:
    """An unlabelled rooted tree shape (used by the centroid construction).

    Shapes carry structure only; :func:`build_from_shape` turns a shape into
    a k-ary search tree network by assigning identifier segments in child
    order.
    """

    __slots__ = ("children", "size", "parent")

    def __init__(self, children: "Optional[list[ShapeNode]]" = None) -> None:
        self.children: list[ShapeNode] = children if children is not None else []
        for child in self.children:
            child.parent = self
        self.size = 0
        self.parent: Optional[ShapeNode] = None

    def add(self, child: "ShapeNode") -> "ShapeNode":
        self.children.append(child)
        child.parent = self
        return child

    def compute_sizes(self) -> int:
        """Fill ``size`` bottom-up; returns the total."""
        order: list[ShapeNode] = [self]
        for node in order:
            order.extend(node.children)
        for node in reversed(order):
            node.size = 1 + sum(c.size for c in node.children)
        return self.size

    def height(self) -> int:
        best = 0
        stack = [(self, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in node.children:
                stack.append((child, d + 1))
        return best

#: A partition decision: ``(own_index, block_sizes)``.  ``block_sizes`` are the
#: child subtree sizes in key order (each >= 1, summing to ``size - 1``) and
#: ``own_index`` in ``[0, len(block_sizes)]`` places the node's own identifier
#: after that many blocks.
Partition = tuple[int, Sequence[int]]

#: A partitioner maps a segment size (>= 1) to a :data:`Partition`.
Partitioner = Callable[[int], Partition]


# ----------------------------------------------------------------------
# the recursive assembler
# ----------------------------------------------------------------------
def assemble_segment(lo: int, hi: int, k: int, partitioner: Partitioner) -> KAryNode:
    """Build the subtree for identifier segment ``[lo, hi]`` (inclusive)."""
    size = hi - lo + 1
    own_index, sizes = partitioner(size)
    c = len(sizes)
    if c > k:
        raise InvalidTreeError(f"partitioner produced {c} blocks for k={k}")
    if sum(sizes) != size - 1:
        raise InvalidTreeError(
            f"partitioner blocks {list(sizes)} do not cover segment of size {size}"
        )
    if any(s < 1 for s in sizes):
        raise InvalidTreeError(f"partitioner produced an empty block: {list(sizes)}")
    if not 0 <= own_index <= c:
        raise InvalidTreeError(f"own_index {own_index} out of range for {c} blocks")

    # Identifier layout: blocks before the own identifier, the identifier,
    # blocks after it — all contiguous.
    bounds: list[tuple[int, int]] = []
    cursor = lo
    for j, s in enumerate(sizes):
        if j == own_index:
            cursor += 1
        bounds.append((cursor, cursor + s - 1))
        cursor += s
    nid = lo + sum(sizes[:own_index])

    node = KAryNode(nid, k)
    separators: list[float] = []
    for j in range(1, c):
        left_max = bounds[j - 1][1]
        # Between the blocks flanking the own identifier the gap is two ids
        # wide (.. left_max, nid, right_min ..); group the identifier with
        # the left block by splitting at nid + 0.5.
        separators.append((nid if j == own_index else left_max) + 0.5)
    pad_count = (k - 1) - max(c - 1, 0)
    separators.extend(pad_values(nid, pad_count))
    separators.sort()
    node.routing = separators

    for blo, bhi in bounds:
        child = assemble_segment(blo, bhi, k, partitioner)
        slot = bisect_left(separators, blo)
        if node.children[slot] is not None:
            raise InvalidTreeError(
                f"builder collision: two blocks map to slot {slot} of node {nid}"
            )
        node.attach_child(child, slot)
    node.recompute_range()
    return node


def build_from_partitioner(
    n: int, k: int, partitioner: Partitioner, *, validate: bool = True
) -> KAryTreeNetwork:
    """Build a k-ary search tree network on identifiers ``1..n``."""
    if n < 1:
        raise InvalidTreeError(f"need at least one node, got n={n}")
    if not 2 <= k <= MAX_K:
        raise InvalidTreeError(f"arity must be in [2, {MAX_K}], got {k}")
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * n + 100))
    try:
        root = assemble_segment(1, n, k, partitioner)
    finally:
        sys.setrecursionlimit(old_limit)
    return KAryTreeNetwork(k, root, validate=validate)


def build_from_shape(
    shape: ShapeNode,
    k: int,
    *,
    own_index: str = "middle",
    validate: bool = True,
) -> KAryTreeNetwork:
    """Label a rooted shape as a k-ary search tree network on ``1..size``.

    ``own_index`` places each node's identifier among its child segments:
    ``"middle"`` (balanced, the default), ``"first"`` or ``"last"``.  The
    identifier assignment never changes pairwise distances — only the
    labelling — so any choice is valid for uniform-workload constructions.
    """
    if own_index not in ("middle", "first", "last"):
        raise InvalidTreeError(f"unknown own_index policy {own_index!r}")
    shape.compute_sizes()

    def build(node: ShapeNode, lo: int) -> KAryNode:
        if len(node.children) > k:
            raise InvalidTreeError(
                f"shape node has {len(node.children)} children, k={k}"
            )
        sizes = [c.size for c in node.children]
        c = len(sizes)
        if own_index == "first":
            t = 0
        elif own_index == "last":
            t = c
        else:
            t = (c + 1) // 2
        bounds: list[tuple[int, int]] = []
        cursor = lo
        for j, s in enumerate(sizes):
            if j == t:
                cursor += 1
            bounds.append((cursor, cursor + s - 1))
            cursor += s
        nid = lo + sum(sizes[:t])
        out = KAryNode(nid, k)
        separators: list[float] = []
        for j in range(1, c):
            left_max = bounds[j - 1][1]
            separators.append((nid if j == t else left_max) + 0.5)
        separators.extend(pad_values(nid, (k - 1) - max(c - 1, 0)))
        separators.sort()
        out.routing = separators
        for child_shape, (blo, _bhi) in zip(node.children, bounds):
            child = build(child_shape, blo)
            slot = bisect_left(separators, blo)
            if out.children[slot] is not None:
                raise InvalidTreeError(
                    f"shape collision: two children map to slot {slot} of {nid}"
                )
            out.attach_child(child, slot)
        out.recompute_range()
        return out

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * shape.size + 100))
    try:
        root = build(shape, 1)
    finally:
        sys.setrecursionlimit(old_limit)
    return KAryTreeNetwork(k, root, validate=validate)


# ----------------------------------------------------------------------
# partitioners
# ----------------------------------------------------------------------
def complete_tree_capacity(levels: int, k: int) -> int:
    """Number of nodes in a full k-ary tree with ``levels`` levels."""
    if levels <= 0:
        return 0
    return (k**levels - 1) // (k - 1)


def complete_partitioner(k: int, *, own_index: Optional[int] = None) -> Partitioner:
    """Weakly-complete shape: all levels full except the last, packed left.

    This is the paper's "full k-ary tree" baseline (Section 5, Lemma 9).
    ``own_index`` fixes where the node's identifier sits among its child
    blocks; the default centres it, which for ``k = 2`` reproduces the
    classic complete binary search tree.
    """

    def partition(size: int) -> Partition:
        if size == 1:
            return 0, ()
        levels = 1
        while complete_tree_capacity(levels, k) < size:
            levels += 1
        interior = complete_tree_capacity(levels - 1, k)
        last = size - interior  # nodes on the last level, packed left
        child_full = complete_tree_capacity(levels - 2, k)
        child_last_cap = k ** (levels - 2)
        sizes = []
        for j in range(k):
            extra = min(max(last - j * child_last_cap, 0), child_last_cap)
            s = child_full + extra
            if s > 0:
                sizes.append(s)
        t = (len(sizes) + 1) // 2 if own_index is None else min(own_index, len(sizes))
        return t, tuple(sizes)

    return partition


def balanced_partitioner(k: int) -> Partitioner:
    """Split each segment into ``min(k, size-1)`` nearly equal blocks."""

    def partition(size: int) -> Partition:
        if size == 1:
            return 0, ()
        c = min(k, size - 1)
        q, r = divmod(size - 1, c)
        sizes = tuple([q + 1] * r + [q] * (c - r))
        return (c + 1) // 2, sizes

    return partition


def path_partitioner() -> Partitioner:
    """A single-child chain — the deepest legal tree (worst case)."""

    def partition(size: int) -> Partition:
        if size == 1:
            return 0, ()
        return 0, (size - 1,)

    return partition


def random_partitioner(k: int, rng: np.random.Generator) -> Partitioner:
    """Uniformly random block counts, sizes, and own-identifier placement."""

    def partition(size: int) -> Partition:
        if size == 1:
            return 0, ()
        c = int(rng.integers(1, min(k, size - 1) + 1))
        # Random composition of (size - 1) into c positive parts.
        if c == 1:
            sizes: tuple[int, ...] = (size - 1,)
        else:
            cuts = np.sort(
                rng.choice(np.arange(1, size - 1), size=c - 1, replace=False)
            )
            parts = np.diff(np.concatenate(([0], cuts, [size - 1])))
            sizes = tuple(int(p) for p in parts)
        t = int(rng.integers(0, c + 1))
        return t, sizes

    return partition


# ----------------------------------------------------------------------
# convenience builders
# ----------------------------------------------------------------------
def build_complete_tree(
    n: int, k: int, *, own_index: Optional[int] = None, validate: bool = True
) -> KAryTreeNetwork:
    """The paper's static "full k-ary tree" on identifiers ``1..n``."""
    return build_from_partitioner(
        n, k, complete_partitioner(k, own_index=own_index), validate=validate
    )


def build_balanced_tree(n: int, k: int, *, validate: bool = True) -> KAryTreeNetwork:
    """A nearly-balanced k-ary search tree network."""
    return build_from_partitioner(n, k, balanced_partitioner(k), validate=validate)


def build_path_tree(n: int, k: int, *, validate: bool = True) -> KAryTreeNetwork:
    """A path-shaped k-ary search tree network (maximal depth)."""
    return build_from_partitioner(n, k, path_partitioner(), validate=validate)


def build_random_tree(
    n: int,
    k: int,
    rng: Optional[np.random.Generator] = None,
    *,
    seed: Optional[int] = None,
    validate: bool = True,
) -> KAryTreeNetwork:
    """A random k-ary search tree network (random shape and labelling)."""
    if rng is None:
        rng = np.random.default_rng(seed)
    return build_from_partitioner(n, k, random_partitioner(k, rng), validate=validate)
