"""Splay driver: lift a node to a target position via k-splay steps.

The paper serves a request by splaying the source up to the lowest common
ancestor's position and the destination up to a child of the source
(Section 4.1, inherited from SplayNet).  This module provides the shared
loop; :mod:`repro.core.splaynet` and :mod:`repro.core.centroid_splaynet`
build their serving disciplines on top of it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.node import KAryNode
from repro.core.rotations import splay_step
from repro.core.tree import KAryTreeNetwork
from repro.errors import RotationError

__all__ = ["splay_until"]


def splay_until(
    tree: KAryTreeNetwork,
    node: KAryNode,
    stop: Optional[KAryNode],
    *,
    policy: str = "center",
    depth: int = 2,
) -> tuple[int, int]:
    """Rotate ``node`` upward until its parent is ``stop``.

    ``stop is None`` splays the node all the way to the root.  ``stop`` must
    be a proper ancestor of ``node`` (or ``None``); the loop terminates
    because every step strictly decreases the node's depth.  Returns
    ``(rotations, links_changed)``.

    ``depth`` is the number of levels climbed per transformation: 2 is the
    paper's ``k-splay`` discipline (with a ``k-semi-splay`` finisher);
    larger values use the generalized d-node rotation from the end of
    Section 4.1 (the deep-splay ablation).
    """
    if depth < 2:
        raise RotationError(f"splay depth must be >= 2, got {depth}")
    rotations = 0
    links = 0
    if depth == 2:
        while node.parent is not stop:
            outcome = splay_step(node, stop, policy=policy)
            rotations += 1
            links += outcome.links_changed
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
        return rotations, links

    from repro.core.multirotation import generalized_splay

    while node.parent is not stop:
        chain: list[KAryNode] = [node]
        cursor = node
        while len(chain) <= depth and cursor.parent is not stop and cursor.parent is not None:
            cursor = cursor.parent
            chain.append(cursor)
        chain.reverse()
        if len(chain) == 2:
            outcome = splay_step(node, stop, policy=policy)
        elif len(chain) == 3:
            outcome = splay_step(node, stop, policy=policy)
        else:
            outcome = generalized_splay(chain)
        rotations += 1
        links += outcome.links_changed
        if outcome.new_top.parent is None:
            tree.replace_root(outcome.new_top)
    return rotations, links
