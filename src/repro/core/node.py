"""The node object of a k-ary search tree network.

A :class:`KAryNode` is one network node (e.g. a top-of-rack switch).  Per the
paper's Definition 1 it carries:

* ``nid`` — the permanent integer identifier (the *node key*); rotations never
  change it,
* ``routing`` — the routing array: a sorted list of exactly ``k-1`` separator
  values partitioning the key space into ``k`` child slots,
* ``children`` — one optional child per slot,
* ``smin``/``smax`` — the smallest/largest identifier in the node's subtree
  (maintained incrementally; used for greedy local routing and validation).

The node deliberately has no back-pointer to its tree; rotations operate on
local neighbourhoods only, exactly as a distributed implementation would.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional

from repro.core.keyspace import NEG_INF, POS_INF, Interval
from repro.errors import InvalidTreeError

__all__ = ["KAryNode"]


class KAryNode:
    """A single node of a :class:`~repro.core.tree.KAryTreeNetwork`."""

    __slots__ = ("nid", "routing", "children", "parent", "pslot", "smin", "smax")

    def __init__(self, nid: int, k: int) -> None:
        if k < 2:
            raise InvalidTreeError(f"arity k must be >= 2, got {k}")
        self.nid: int = nid
        #: sorted separators; always exactly ``k - 1`` values
        self.routing: list[float] = []
        #: slot-indexed children; ``len(children) == k``
        self.children: list[Optional[KAryNode]] = [None] * k
        self.parent: Optional[KAryNode] = None
        #: index of the slot this node occupies in its parent
        self.pslot: int = -1
        self.smin: int = nid
        self.smax: int = nid

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The arity of the tree this node belongs to."""
        return len(self.children)

    @property
    def degree(self) -> int:
        """Number of present children."""
        return sum(1 for c in self.children if c is not None)

    @property
    def is_leaf(self) -> bool:
        return all(c is None for c in self.children)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child_iter(self) -> Iterator["KAryNode"]:
        """Iterate over present children, in slot order."""
        for child in self.children:
            if child is not None:
                yield child

    # ------------------------------------------------------------------
    # slot arithmetic
    # ------------------------------------------------------------------
    def slot_of(self, value: float) -> int:
        """The index of the slot whose open interval contains ``value``.

        ``value`` must not equal any separator in the routing array (this
        never happens for identifiers, which are integers).
        """
        return bisect_left(self.routing, value)

    def slot_interval(self, slot: int) -> Interval:
        """The open interval of ``slot`` (with ±inf sentinels at the ends)."""
        r = self.routing
        lo = r[slot - 1] if slot > 0 else NEG_INF
        hi = r[slot] if slot < len(r) else POS_INF
        return Interval(lo, hi)

    def child_in_slot(self, value: float) -> Optional["KAryNode"]:
        """The child occupying the slot containing ``value`` (or ``None``)."""
        return self.children[self.slot_of(value)]

    # ------------------------------------------------------------------
    # subtree-range maintenance
    # ------------------------------------------------------------------
    def recompute_range(self) -> None:
        """Recompute ``smin``/``smax`` from the node's direct children.

        Children must already have correct ranges; rotations call this
        bottom-up on the (at most three) nodes they rewire.
        """
        lo = hi = self.nid
        for child in self.children:
            if child is not None:
                if child.smin < lo:
                    lo = child.smin
                if child.smax > hi:
                    hi = child.smax
        self.smin = lo
        self.smax = hi

    def subtree_size(self) -> int:
        """Number of nodes in this subtree (iterative DFS, O(size))."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            for child in node.children:
                if child is not None:
                    stack.append(child)
        return count

    def iter_subtree(self) -> Iterator["KAryNode"]:
        """Yield every node of this subtree in DFS (pre-)order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(node.children):
                if child is not None:
                    stack.append(child)

    # ------------------------------------------------------------------
    # wiring helpers (used by builders and rotations)
    # ------------------------------------------------------------------
    def attach_child(self, child: "KAryNode", slot: int) -> None:
        """Place ``child`` into ``slot``; the slot must be empty."""
        if self.children[slot] is not None:
            raise InvalidTreeError(
                f"slot {slot} of node {self.nid} is already occupied"
            )
        self.children[slot] = child
        child.parent = self
        child.pslot = slot

    def detach_child(self, slot: int) -> "KAryNode":
        """Remove and return the child in ``slot``."""
        child = self.children[slot]
        if child is None:
            raise InvalidTreeError(f"slot {slot} of node {self.nid} is empty")
        self.children[slot] = None
        child.parent = None
        child.pslot = -1
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kids = [c.nid if c else "." for c in self.children]
        return f"KAryNode(nid={self.nid}, routing={self.routing}, children={kids})"
