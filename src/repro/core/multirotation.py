"""The generalized d-node rotation sketched at the end of Section 4.1.

The paper: *"we can take any d connected nodes in the tree and modify them in
a manner that the node with a chosen key will be in the topmost one after the
update: 1) merge all d routing arrays into one; 2) find the positions of our
d identifiers; 3) choose some order of keys k_1..k_d; 4) consider the i-th
key k_i, take the k-1 consecutive routing keys covering k_i, and use them to
form a new node with key k_i; 5) remove these elements and repeat.  At the
end, the topmost node will contain the required key k_d."*

The sketch leaves two things open which this implementation resolves:

* **Which covering block to take.**  Block choices interact: a bad early
  choice can leave two earlier nodes (or hanging subtrees) mapping to the
  same slot of a later node.  We enumerate feasible block starts depth-first
  (centered first) and *dry-run* the complete re-attachment before touching
  the tree, taking the first globally consistent assignment.  For chains of
  length 2 and 3 a solution always exists (these are exactly
  ``k-semi-splay`` and ``k-splay``, whose feasibility DESIGN.md proves
  constructively); for longer chains the search doubles as an executable
  check of the paper's claim.
* **Where everything re-attaches.**  Each processed node's *window* is the
  gap it leaves in the remaining merged array; windows nest, and every
  earlier node or hanging subtree hangs off the slot of the innermost
  later-processed window containing it.

``generalized_splay`` promotes the deepest node of an ancestor chain above
the whole chain in one transformation — the ``splay_depth > 2`` serving
policy of :class:`~repro.core.splaynet.KArySplayNet` builds on it and the
deep-splay ablation benchmark measures it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional, Sequence

from repro.core.keyspace import NEG_INF, POS_INF
from repro.core.node import KAryNode
from repro.core.rotations import RotationOutcome, _gather_subtrees
from repro.errors import RotationError

__all__ = ["generalized_splay", "MAX_CHAIN"]

#: Upper bound on the chain length (the assignment search is exponential).
MAX_CHAIN = 6

#: One candidate: per processed key, (routing block, window values).
Assignment = list[tuple[list[float], tuple[float, float]]]


def _window_of_block(remaining: list[float], j: int, k: int) -> tuple[float, float]:
    lo = remaining[j - 1] if j > 0 else NEG_INF
    hi = remaining[j + k - 1] if j + k - 1 < len(remaining) else POS_INF
    return lo, hi


def _assignments(merged: list[float], keys: Sequence[int], k: int) -> Iterator[Assignment]:
    """Yield every feasible block assignment, most-centered choices first."""

    def recurse(remaining: list[float], index: int) -> Iterator[Assignment]:
        key = keys[index]
        pos = bisect_left(remaining, key)
        limit = len(remaining) - (k - 1)
        lo_start = max(0, pos - (k - 1))
        hi_start = min(limit, pos)
        starts = sorted(
            range(lo_start, hi_start + 1),
            key=lambda j: abs(j - (pos - (k - 1) // 2)),
        )
        for j in starts:
            block = remaining[j : j + k - 1]
            window = _window_of_block(remaining, j, k)
            if index == len(keys) - 1:
                yield [(block, window)]
                continue
            rest = remaining[:j] + remaining[j + k - 1 :]
            for tail in recurse(rest, index + 1):
                yield [(block, window)] + tail

    return recurse(list(merged), 0)


def _plan_placements(
    assignment: Assignment,
    sub_intervals: list[tuple[float, float]],
    merged: list[float],
) -> Optional[tuple[list[tuple[int, int]], list[tuple[int, int]]]]:
    """Dry-run the re-attachment; ``None`` on any slot collision.

    Returns (chain_placements, sub_placements) as (owner_index, slot) pairs;
    owner indices refer to the processing order.
    """
    windows = [window for _, window in assignment]
    blocks = [block for block, _ in assignment]
    occupied: set[tuple[int, int]] = set()

    def place(lo: float, hi: float, first_owner: int) -> Optional[tuple[int, int]]:
        for idx in range(first_owner, len(windows)):
            wlo, whi = windows[idx]
            if wlo <= lo and hi <= whi:
                slot = bisect_left(blocks[idx], hi)
                key = (idx, slot)
                if key in occupied:
                    return None
                occupied.add(key)
                return key
        return None

    chain_placements: list[tuple[int, int]] = []
    for idx in range(len(windows) - 1):
        placed = place(windows[idx][0], windows[idx][1], idx + 1)
        if placed is None:
            return None
        chain_placements.append(placed)
    sub_placements: list[tuple[int, int]] = []
    for lo, hi in sub_intervals:
        placed = place(lo, hi, 0)
        if placed is None:
            return None
        sub_placements.append(placed)
    return chain_placements, sub_placements


def generalized_splay(
    chain: Sequence[KAryNode],
    *,
    order: Optional[Sequence[int]] = None,
) -> RotationOutcome:
    """Collapse an ancestor ``chain`` so its last node ends on top.

    ``chain`` is given top-down: ``chain[0]`` is the highest ancestor,
    ``chain[-1]`` the node to promote; consecutive entries must be
    parent/child.  ``order`` optionally fixes the paper's step-3 processing
    order as indices into ``chain`` (default top-down, promoted node last).
    Raises :class:`RotationError` — with the tree untouched — if no
    consistent assignment exists.
    """
    d = len(chain)
    if d < 2:
        raise RotationError("generalized splay needs a chain of length >= 2")
    if d > MAX_CHAIN:
        raise RotationError(f"chain length {d} exceeds MAX_CHAIN={MAX_CHAIN}")
    for upper, lower in zip(chain, chain[1:]):
        if lower.parent is not upper:
            raise RotationError(
                f"chain break: {lower.nid} is not a child of {upper.nid}"
            )
    k = chain[0].k
    top = chain[0]
    promoted = chain[-1]

    if order is None:
        order = tuple(range(d))
    if sorted(order) != list(range(d)) or order[-1] != d - 1:
        raise RotationError(
            "order must be a permutation of the chain finishing at the"
            " promoted node"
        )

    merged = sorted(value for node in chain for value in node.routing)
    group_ids = {node.nid for node in chain}
    keys = [chain[i].nid for i in order]

    # Subtree intervals can be read without detaching anything.
    sub_intervals: list[tuple[float, float]] = []
    sub_nodes: list[KAryNode] = []
    for owner in chain:
        for child in owner.children:
            if child is not None and child.nid not in group_ids:
                pos = bisect_left(merged, child.smin)
                lo = merged[pos - 1] if pos > 0 else NEG_INF
                hi = merged[pos] if pos < len(merged) else POS_INF
                sub_intervals.append((lo, hi))
                sub_nodes.append(child)

    plan = None
    for assignment in _assignments(merged, keys, k):
        placements = _plan_placements(assignment, sub_intervals, merged)
        if placements is not None:
            plan = (assignment, placements)
            break
    if plan is None:
        raise RotationError(
            f"no consistent block assignment for chain {sorted(group_ids)}"
        )
    assignment, (chain_placements, sub_placements) = plan

    # ------------------------------------------------------------------
    # Commit: the plan is verified, surgery cannot fail from here on.
    # ------------------------------------------------------------------
    grand = top.parent
    gslot = top.pslot
    if grand is not None:
        grand.detach_child(gslot)
    subs = _gather_subtrees(list(chain), group_ids)
    assert [s.nid for s, _ in subs] == [s.nid for s in sub_nodes]

    nodes_in_order = [chain[i] for i in order]
    for node in chain:
        node.children = [None] * k
        node.parent = None
        node.pslot = -1
    for node, (block, _window) in zip(nodes_in_order, assignment):
        node.routing = block

    old_edges = {
        frozenset((upper.nid, lower.nid)) for upper, lower in zip(chain, chain[1:])
    }
    links = 0
    for idx, (owner_idx, slot) in enumerate(chain_placements):
        nodes_in_order[owner_idx].attach_child(nodes_in_order[idx], slot)
    for (sub, old_owner), (owner_idx, slot) in zip(subs, sub_placements):
        owner = nodes_in_order[owner_idx]
        owner.attach_child(sub, slot)
        if owner is not old_owner:
            links += 2
    # earlier-processed nodes sit below later ones: recompute bottom-up
    for node in nodes_in_order:
        node.recompute_range()

    if grand is not None:
        grand.attach_child(promoted, gslot)
        links += 2
    new_edges = set()
    for node in nodes_in_order[:-1]:
        assert node.parent is not None
        new_edges.add(frozenset((node.nid, node.parent.nid)))
    links += len(old_edges ^ new_edges)
    return RotationOutcome(promoted, links)
