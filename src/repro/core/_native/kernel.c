/* Native serve kernel for the k-ary SplayNet hot loop.
 *
 * This file is a statement-for-statement translation of the inlined batch
 * serve loop of ``repro.core.flat.FlatTree.serve_many`` (the depth-2
 * k-splay discipline): the epoch-stamped LCA walk, the k-semi-splay and
 * k-splay rotation groups with arithmetic subtree placement, and the
 * routing/rotation/link cost accounting.  It operates on the same flat
 * identifier-indexed layout the Python engine owns, marshalled into
 * contiguous buffers by ``repro.core.native.NativeTree``:
 *
 *   parent[nid], pslot[nid]          int64, length n + 1 (0 = null)
 *   children[nid * k + slot]         int64, 0 = empty slot
 *   routing[nid * (k - 1) + j]       double, sorted separators per node
 *   visit[nid], vdepth[nid]          int64 scratch for the LCA walk
 *
 * Structural equivalence with the Python engines is the contract: on any
 * request batch this kernel must produce the identical topology and the
 * identical cost totals (enforced per request by tests/test_native_engine.py
 * and the tests/net hypothesis sweeps).  When editing, change flat.py
 * first, then mirror here.
 *
 * Built by repro.core._native with ``cc -O3 -shared -fPIC``; no Python.h
 * dependency, so any C toolchain works.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Mirror of repro.core.keyspace.MAX_K: the separator-value discipline
 * caps the arity at 40, so stack scratch can be statically sized. */
#define RK_MAX_K 40
#define RK_KM1_MAX (RK_MAX_K - 1)

/* Bumped whenever the entry-point signature or semantics change; the
 * Python loader refuses stale cached shared objects that report a
 * different version.  Version 2 added the resident-tree handle API
 * (repro_tree_create / load / serve_batch / serve_one / sync_out /
 * destroy). */
#define RK_ABI_VERSION 2

int64_t repro_kernel_abi(void) { return RK_ABI_VERSION; }

typedef struct {
    int64_t k, km1, km2, half;
    int64_t pol_center, pol_left;
    int64_t *parent;
    int64_t *pslot;
    int64_t *children;
    double *routing;
    int64_t root;
    int64_t lk; /* link churn of the request being served */
} rk_ctx;

/* Merge two sorted runs (separator values are globally distinct, so the
 * result equals Python's sorted(a + b)). */
static void rk_merge2(const double *a, int64_t la, const double *b,
                      int64_t lb, double *out)
{
    int64_t i = 0, j = 0, o = 0;
    while (i < la && j < lb)
        out[o++] = (a[i] < b[j]) ? a[i++] : b[j++];
    while (i < la)
        out[o++] = a[i++];
    while (j < lb)
        out[o++] = b[j++];
}

/* bisect_left over a sorted run; no element ever equals v (identifiers
 * are integers, separators never are). */
static int64_t rk_count_less(const double *a, int64_t len, double v)
{
    int64_t i = 0;
    while (i < len && a[i] < v)
        i++;
    return i;
}

/* k-semi-splay: promote y above its parent x (g = x's parent, may be 0).
 * Mirror of the inline semi body in FlatTree.serve_many.  Returns g. */
static int64_t rk_semi(rk_ctx *c, int64_t y, int64_t x, int64_t g)
{
    const int64_t k = c->k, km1 = c->km1;
    int64_t *parent = c->parent, *pslot = c->pslot, *children = c->children;
    double *routing = c->routing;
    const int64_t gslot = pslot[x];
    const int64_t sy = pslot[y];

    double merged[2 * RK_KM1_MAX];
    rk_merge2(routing + x * km1, km1, routing + y * km1, km1, merged);
    int64_t xrow[RK_MAX_K], yrow[RK_MAX_K];
    memcpy(xrow, children + x * k, (size_t)k * sizeof(int64_t));
    memcpy(yrow, children + y * k, (size_t)k * sizeof(int64_t));
    int64_t *nxrow = children + x * k;
    int64_t *nyrow = children + y * k;
    memset(nxrow, 0, (size_t)k * sizeof(int64_t));
    memset(nyrow, 0, (size_t)k * sizeof(int64_t));

    const int64_t pos_x = rk_count_less(merged, 2 * km1, (double)x);
    int64_t j;
    if (c->pol_center)
        j = pos_x - c->half;
    else if (c->pol_left)
        j = pos_x - km1;
    else
        j = pos_x;
    int64_t lo = pos_x - km1;
    if (lo < 0)
        lo = 0;
    const int64_t hi = (km1 < pos_x) ? km1 : pos_x;
    if (j < lo)
        j = lo;
    else if (j > hi)
        j = hi;
    const int64_t jhi = j + km1;

    memcpy(routing + x * km1, merged + j, (size_t)km1 * sizeof(double));
    {
        double *ry = routing + y * km1;
        memcpy(ry, merged, (size_t)j * sizeof(double));
        memcpy(ry + j, merged + jhi,
               (size_t)(2 * km1 - jhi) * sizeof(double));
    }
    nyrow[j] = x;
    parent[x] = y;
    pslot[x] = j;
    if (g)
        c->lk += 2;

    /* x's subtree below slot sy keeps merged index s, past it s + km1
     * (slot sy held y); y's subtree at slot t has merged index sy + t. */
    for (int64_t m = 0; m < sy; m++) {
        const int64_t ch = xrow[m];
        if (!ch)
            continue;
        if (m < j) {
            nyrow[m] = ch;
            parent[ch] = y;
            pslot[ch] = m;
            c->lk += 2;
        } else if (m <= jhi) {
            const int64_t slot = m - j;
            nxrow[slot] = ch;
            parent[ch] = x;
            pslot[ch] = slot;
        } else {
            const int64_t slot = m - km1;
            nyrow[slot] = ch;
            parent[ch] = y;
            pslot[ch] = slot;
            c->lk += 2;
        }
    }
    for (int64_t s = sy + 1; s < k; s++) {
        const int64_t ch = xrow[s];
        if (!ch)
            continue;
        const int64_t m = s + km1;
        if (m < j) {
            nyrow[m] = ch;
            parent[ch] = y;
            pslot[ch] = m;
            c->lk += 2;
        } else if (m <= jhi) {
            const int64_t slot = m - j;
            nxrow[slot] = ch;
            parent[ch] = x;
            pslot[ch] = slot;
        } else {
            const int64_t slot = m - km1;
            nyrow[slot] = ch;
            parent[ch] = y;
            pslot[ch] = slot;
            c->lk += 2;
        }
    }
    for (int64_t t = 0; t < k; t++) {
        const int64_t ch = yrow[t];
        if (!ch)
            continue;
        const int64_t m = sy + t;
        if (m < j) {
            nyrow[m] = ch;
            parent[ch] = y;
            pslot[ch] = m;
        } else if (m <= jhi) {
            const int64_t slot = m - j;
            nxrow[slot] = ch;
            parent[ch] = x;
            pslot[ch] = slot;
            c->lk += 2;
        } else {
            const int64_t slot = m - km1;
            nyrow[slot] = ch;
            parent[ch] = y;
            pslot[ch] = slot;
        }
    }

    if (g) {
        children[g * k + gslot] = y;
        parent[y] = g;
        pslot[y] = gslot;
    } else {
        parent[y] = 0;
        pslot[y] = -1;
        c->root = y;
    }
    return g;
}

/* k-splay: promote z above parent y and grandparent x (both rotation
 * cases).  Mirror of the inline splay body in FlatTree.serve_many.
 * Returns x's old parent (the climb continues from there). */
static int64_t rk_splay(rk_ctx *c, int64_t z, int64_t y, int64_t x)
{
    const int64_t k = c->k, km1 = c->km1, km2 = c->km2;
    int64_t *parent = c->parent, *pslot = c->pslot, *children = c->children;
    double *routing = c->routing;
    const int64_t grand = parent[x];
    const int64_t gslot = pslot[x];
    const int64_t sy = pslot[y];
    const int64_t sz = pslot[z];

    double tmp[2 * RK_KM1_MAX];
    double merged[3 * RK_KM1_MAX];
    rk_merge2(routing + x * km1, km1, routing + y * km1, km1, tmp);
    rk_merge2(tmp, 2 * km1, routing + z * km1, km1, merged);
    int64_t xrow[RK_MAX_K], yrow[RK_MAX_K], zrow[RK_MAX_K];
    memcpy(xrow, children + x * k, (size_t)k * sizeof(int64_t));
    memcpy(yrow, children + y * k, (size_t)k * sizeof(int64_t));
    memcpy(zrow, children + z * k, (size_t)k * sizeof(int64_t));
    int64_t *nxrow = children + x * k;
    int64_t *nyrow = children + y * k;
    int64_t *nzrow = children + z * k;
    memset(nxrow, 0, (size_t)k * sizeof(int64_t));
    memset(nyrow, 0, (size_t)k * sizeof(int64_t));
    memset(nzrow, 0, (size_t)k * sizeof(int64_t));

    const int64_t pos_x = rk_count_less(merged, 3 * km1, (double)x);
    const int64_t pos_y = rk_count_less(merged, 3 * km1, (double)y);
    const int64_t diff = pos_x - pos_y;

    if (diff > km1 || -diff > km1) {
        /* ---- Case 1 (zig-zag analogue): x and y become children of z. */
        int64_t lo_node, pos_lo, hi_node, pos_hi;
        int64_t *lo_nrow, *hi_nrow;
        int64_t x_lo_flip, x_hi_flip, y_lo_flip, y_hi_flip;
        if (diff < 0) {
            lo_node = x;
            pos_lo = pos_x;
            hi_node = y;
            pos_hi = pos_y;
            lo_nrow = nxrow;
            hi_nrow = nyrow;
            x_lo_flip = 0;
            x_hi_flip = 2;
            y_lo_flip = 2;
            y_hi_flip = 0;
        } else {
            lo_node = y;
            pos_lo = pos_y;
            hi_node = x;
            pos_hi = pos_x;
            lo_nrow = nyrow;
            hi_nrow = nxrow;
            x_lo_flip = 2;
            x_hi_flip = 0;
            y_lo_flip = 0;
            y_hi_flip = 2;
        }
        int64_t j_lo = pos_lo - km1;
        if (j_lo < 0)
            j_lo = 0;
        int64_t j_hi = km2;
        if (pos_hi < j_hi)
            j_hi = pos_hi;
        const int64_t j_lo_hi = j_lo + km1;
        const int64_t j_hi_hi = j_hi + km1;

        memcpy(routing + lo_node * km1, merged + j_lo,
               (size_t)km1 * sizeof(double));
        memcpy(routing + hi_node * km1, merged + j_hi,
               (size_t)km1 * sizeof(double));
        {
            double *rz = routing + z * km1;
            memcpy(rz, merged, (size_t)j_lo * sizeof(double));
            memcpy(rz + j_lo, merged + j_lo_hi,
                   (size_t)(j_hi - j_lo_hi) * sizeof(double));
            memcpy(rz + j_lo + (j_hi - j_lo_hi), merged + j_hi_hi,
                   (size_t)(3 * km1 - j_hi_hi) * sizeof(double));
        }
        nzrow[j_lo] = lo_node;
        parent[lo_node] = z;
        pslot[lo_node] = j_lo;
        nzrow[j_hi - km1] = hi_node;
        parent[hi_node] = z;
        pslot[hi_node] = j_hi - km1;
        c->lk += 2;

        for (int64_t s = 0; s < sy; s++) {
            const int64_t ch = xrow[s];
            if (!ch)
                continue;
            const int64_t m = s;
            if (m < j_lo) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else if (m <= j_lo_hi) {
                const int64_t slot = m - j_lo;
                lo_nrow[slot] = ch;
                parent[ch] = lo_node;
                pslot[ch] = slot;
                c->lk += x_lo_flip;
            } else if (m < j_hi) {
                const int64_t slot = m - km1;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            } else if (m <= j_hi_hi) {
                const int64_t slot = m - j_hi;
                hi_nrow[slot] = ch;
                parent[ch] = hi_node;
                pslot[ch] = slot;
                c->lk += x_hi_flip;
            } else {
                const int64_t slot = m - km2;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            }
        }
        for (int64_t s = sy + 1; s < k; s++) {
            const int64_t ch = xrow[s];
            if (!ch)
                continue;
            const int64_t m = s + km2;
            if (m < j_lo) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else if (m <= j_lo_hi) {
                const int64_t slot = m - j_lo;
                lo_nrow[slot] = ch;
                parent[ch] = lo_node;
                pslot[ch] = slot;
                c->lk += x_lo_flip;
            } else if (m < j_hi) {
                const int64_t slot = m - km1;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            } else if (m <= j_hi_hi) {
                const int64_t slot = m - j_hi;
                hi_nrow[slot] = ch;
                parent[ch] = hi_node;
                pslot[ch] = slot;
                c->lk += x_hi_flip;
            } else {
                const int64_t slot = m - km2;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            }
        }
        for (int64_t t = 0; t < sz; t++) {
            const int64_t ch = yrow[t];
            if (!ch)
                continue;
            const int64_t m = sy + t;
            if (m < j_lo) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else if (m <= j_lo_hi) {
                const int64_t slot = m - j_lo;
                lo_nrow[slot] = ch;
                parent[ch] = lo_node;
                pslot[ch] = slot;
                c->lk += y_lo_flip;
            } else if (m < j_hi) {
                const int64_t slot = m - km1;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            } else if (m <= j_hi_hi) {
                const int64_t slot = m - j_hi;
                hi_nrow[slot] = ch;
                parent[ch] = hi_node;
                pslot[ch] = slot;
                c->lk += y_hi_flip;
            } else {
                const int64_t slot = m - km2;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            }
        }
        for (int64_t t = sz + 1; t < k; t++) {
            const int64_t ch = yrow[t];
            if (!ch)
                continue;
            const int64_t m = sy + t + km1;
            if (m < j_lo) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else if (m <= j_lo_hi) {
                const int64_t slot = m - j_lo;
                lo_nrow[slot] = ch;
                parent[ch] = lo_node;
                pslot[ch] = slot;
                c->lk += y_lo_flip;
            } else if (m < j_hi) {
                const int64_t slot = m - km1;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            } else if (m <= j_hi_hi) {
                const int64_t slot = m - j_hi;
                hi_nrow[slot] = ch;
                parent[ch] = hi_node;
                pslot[ch] = slot;
                c->lk += y_hi_flip;
            } else {
                const int64_t slot = m - km2;
                nzrow[slot] = ch;
                parent[ch] = z;
                pslot[ch] = slot;
                c->lk += 2;
            }
        }
        {
            const int64_t base = sy + sz;
            for (int64_t r = 0; r < k; r++) {
                const int64_t ch = zrow[r];
                if (!ch)
                    continue;
                const int64_t m = base + r;
                if (m < j_lo) {
                    nzrow[m] = ch;
                    parent[ch] = z;
                    pslot[ch] = m;
                } else if (m <= j_lo_hi) {
                    const int64_t slot = m - j_lo;
                    lo_nrow[slot] = ch;
                    parent[ch] = lo_node;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else if (m < j_hi) {
                    const int64_t slot = m - km1;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                } else if (m <= j_hi_hi) {
                    const int64_t slot = m - j_hi;
                    hi_nrow[slot] = ch;
                    parent[ch] = hi_node;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else {
                    const int64_t slot = m - km2;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                }
            }
        }
    } else {
        /* ---- Case 2 (zig-zig analogue): chain reversed to z -> y -> x. */
        int64_t lo_pos, hi_pos;
        if (diff < 0) {
            lo_pos = pos_x;
            hi_pos = pos_y;
        } else {
            lo_pos = pos_y;
            hi_pos = pos_x;
        }
        int64_t j2 = hi_pos - km2 + (km2 - (hi_pos - lo_pos)) / 2;
        int64_t j2_lo = hi_pos - km2;
        if (j2_lo < 0)
            j2_lo = 0;
        const int64_t j2_hi = (km1 < lo_pos) ? km1 : lo_pos;
        if (j2 < j2_lo)
            j2 = j2_lo;
        else if (j2 > j2_hi)
            j2 = j2_hi;
        const int64_t j2hi = j2 + km2;

        {
            double *rz = routing + z * km1;
            memcpy(rz, merged, (size_t)j2 * sizeof(double));
            memcpy(rz + j2, merged + j2hi,
                   (size_t)(3 * km1 - j2hi) * sizeof(double));
        }
        const int64_t pos_x2 = pos_x - j2;
        int64_t j1;
        if (c->pol_center)
            j1 = pos_x2 - c->half;
        else if (c->pol_left)
            j1 = pos_x2 - km1;
        else
            j1 = pos_x2;
        int64_t lo = pos_x2 - km1;
        if (lo < 0)
            lo = 0;
        const int64_t hi = (km1 < pos_x2) ? km1 : pos_x2;
        if (j1 < lo)
            j1 = lo;
        else if (j1 > hi)
            j1 = hi;
        const int64_t j1hi = j1 + km1;
        const int64_t a1 = j2 + j1;
        const int64_t a2 = a1 + km1;
        memcpy(routing + x * km1, merged + a1, (size_t)km1 * sizeof(double));
        {
            double *ry = routing + y * km1;
            memcpy(ry, merged + j2, (size_t)j1 * sizeof(double));
            memcpy(ry + j1, merged + a2, (size_t)(j2hi - a2) * sizeof(double));
        }
        nzrow[j2] = y;
        parent[y] = z;
        pslot[y] = j2;
        nyrow[j1] = x;
        parent[x] = y;
        pslot[x] = j1;

        for (int64_t s = 0; s < sy; s++) {
            const int64_t ch = xrow[s];
            if (!ch)
                continue;
            const int64_t m = s;
            if (m < j2) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else {
                const int64_t m2 = m - j2;
                if (m2 > km2) {
                    const int64_t slot = m - km2;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else if (m2 < j1) {
                    nyrow[m2] = ch;
                    parent[ch] = y;
                    pslot[ch] = m2;
                    c->lk += 2;
                } else if (m2 <= j1hi) {
                    const int64_t slot = m2 - j1;
                    nxrow[slot] = ch;
                    parent[ch] = x;
                    pslot[ch] = slot;
                } else {
                    const int64_t slot = m2 - km1;
                    nyrow[slot] = ch;
                    parent[ch] = y;
                    pslot[ch] = slot;
                    c->lk += 2;
                }
            }
        }
        for (int64_t s = sy + 1; s < k; s++) {
            const int64_t ch = xrow[s];
            if (!ch)
                continue;
            const int64_t m = s + km2;
            if (m < j2) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else {
                const int64_t m2 = m - j2;
                if (m2 > km2) {
                    const int64_t slot = m - km2;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else if (m2 < j1) {
                    nyrow[m2] = ch;
                    parent[ch] = y;
                    pslot[ch] = m2;
                    c->lk += 2;
                } else if (m2 <= j1hi) {
                    const int64_t slot = m2 - j1;
                    nxrow[slot] = ch;
                    parent[ch] = x;
                    pslot[ch] = slot;
                } else {
                    const int64_t slot = m2 - km1;
                    nyrow[slot] = ch;
                    parent[ch] = y;
                    pslot[ch] = slot;
                    c->lk += 2;
                }
            }
        }
        for (int64_t t = 0; t < sz; t++) {
            const int64_t ch = yrow[t];
            if (!ch)
                continue;
            const int64_t m = sy + t;
            if (m < j2) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else {
                const int64_t m2 = m - j2;
                if (m2 > km2) {
                    const int64_t slot = m - km2;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else if (m2 < j1) {
                    nyrow[m2] = ch;
                    parent[ch] = y;
                    pslot[ch] = m2;
                } else if (m2 <= j1hi) {
                    const int64_t slot = m2 - j1;
                    nxrow[slot] = ch;
                    parent[ch] = x;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else {
                    const int64_t slot = m2 - km1;
                    nyrow[slot] = ch;
                    parent[ch] = y;
                    pslot[ch] = slot;
                }
            }
        }
        for (int64_t t = sz + 1; t < k; t++) {
            const int64_t ch = yrow[t];
            if (!ch)
                continue;
            const int64_t m = sy + t + km1;
            if (m < j2) {
                nzrow[m] = ch;
                parent[ch] = z;
                pslot[ch] = m;
                c->lk += 2;
            } else {
                const int64_t m2 = m - j2;
                if (m2 > km2) {
                    const int64_t slot = m - km2;
                    nzrow[slot] = ch;
                    parent[ch] = z;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else if (m2 < j1) {
                    nyrow[m2] = ch;
                    parent[ch] = y;
                    pslot[ch] = m2;
                } else if (m2 <= j1hi) {
                    const int64_t slot = m2 - j1;
                    nxrow[slot] = ch;
                    parent[ch] = x;
                    pslot[ch] = slot;
                    c->lk += 2;
                } else {
                    const int64_t slot = m2 - km1;
                    nyrow[slot] = ch;
                    parent[ch] = y;
                    pslot[ch] = slot;
                }
            }
        }
        {
            const int64_t base = sy + sz;
            for (int64_t r = 0; r < k; r++) {
                const int64_t ch = zrow[r];
                if (!ch)
                    continue;
                const int64_t m = base + r;
                if (m < j2) {
                    nzrow[m] = ch;
                    parent[ch] = z;
                    pslot[ch] = m;
                } else {
                    const int64_t m2 = m - j2;
                    if (m2 > km2) {
                        const int64_t slot = m - km2;
                        nzrow[slot] = ch;
                        parent[ch] = z;
                        pslot[ch] = slot;
                    } else if (m2 < j1) {
                        nyrow[m2] = ch;
                        parent[ch] = y;
                        pslot[ch] = m2;
                        c->lk += 2;
                    } else if (m2 <= j1hi) {
                        const int64_t slot = m2 - j1;
                        nxrow[slot] = ch;
                        parent[ch] = x;
                        pslot[ch] = slot;
                        c->lk += 2;
                    } else {
                        const int64_t slot = m2 - km1;
                        nyrow[slot] = ch;
                        parent[ch] = y;
                        pslot[ch] = slot;
                        c->lk += 2;
                    }
                }
            }
        }
    }

    if (grand) {
        children[grand * k + gslot] = z;
        parent[z] = grand;
        pslot[z] = gslot;
        c->lk += 2;
    } else {
        parent[z] = 0;
        pslot[z] = -1;
        c->root = z;
    }
    return grand;
}

/* The per-request serve loop shared by the marshalled batch entry and
 * the resident-tree handle API.  ``c`` must be fully initialized (arity,
 * policy flags, buffers, root); epoch_io is a one-element in/out buffer;
 * totals is a three-element out buffer (routing, rotations, links);
 * routing_series / rotation_series are optional length-m out buffers
 * (both NULL or both set). */
static void rk_serve_requests(rk_ctx *c, int64_t *visit, int64_t *vdepth,
                              int64_t *epoch_io, const int64_t *sources,
                              const int64_t *targets, int64_t m,
                              int64_t *routing_series,
                              int64_t *rotation_series, int64_t *totals)
{
    int64_t *parent = c->parent;
    int64_t epoch = *epoch_io;
    int64_t total_r = 0, total_rot = 0, total_l = 0;
    const int rec = (routing_series != NULL);

    for (int64_t i = 0; i < m; i++) {
        const int64_t u = sources[i], v = targets[i];
        if (u == v) {
            if (rec) {
                routing_series[i] = 0;
                rotation_series[i] = 0;
            }
            continue;
        }
        if (parent[u] == v || parent[v] == u) {
            /* Already adjacent: cost 1, both splay phases are no-ops. */
            total_r += 1;
            if (rec) {
                routing_series[i] = 1;
                rotation_series[i] = 0;
            }
            continue;
        }
        /* --- LCA by stamping u's ancestor chain ---------------------- */
        epoch++;
        int64_t node = u, d = 0;
        while (node) {
            visit[node] = epoch;
            vdepth[node] = d;
            node = parent[node];
            d++;
        }
        node = v;
        int64_t dv = 0;
        while (visit[node] != epoch) {
            node = parent[node];
            dv++;
        }
        const int64_t req_routing = vdepth[node] + dv;
        total_r += req_routing;
        int64_t rot = 0;
        c->lk = 0;
        /* --- splay u into the LCA's position, then v below u --------- */
        int64_t climb, stop;
        int final;
        if (node == v) {
            climb = u;
            stop = v;
            final = 1;
        } else if (node == u) {
            climb = v;
            stop = u;
            final = 1;
        } else {
            climb = u;
            stop = parent[node];
            final = 0;
        }
        for (;;) {
            int64_t p = parent[climb];
            while (p != stop) {
                const int64_t g = parent[p];
                rot++;
                if (g == stop || g == 0)
                    p = rk_semi(c, climb, p, g);
                else
                    p = rk_splay(c, climb, p, g);
            }
            if (final)
                break;
            climb = v;
            stop = u;
            final = 1;
        }
        total_rot += rot;
        total_l += c->lk;
        if (rec) {
            routing_series[i] = req_routing;
            rotation_series[i] = rot;
        }
    }

    *epoch_io = epoch;
    totals[0] = total_r;
    totals[1] = total_rot;
    totals[2] = total_l;
}

/* Populate an rk_ctx from raw buffers; returns 0 when the arity is
 * outside the kernel's static scratch. */
static int rk_ctx_init(rk_ctx *c, int64_t k, int64_t policy, int64_t *parent,
                       int64_t *pslot, int64_t *children, double *routing,
                       int64_t root)
{
    if (k < 2 || k > RK_MAX_K)
        return 0;
    c->k = k;
    c->km1 = k - 1;
    c->km2 = 2 * (k - 1);
    c->half = (k - 1) / 2;
    c->pol_center = (policy == 0);
    c->pol_left = (policy == 1);
    c->parent = parent;
    c->pslot = pslot;
    c->children = children;
    c->routing = routing;
    c->root = root;
    c->lk = 0;
    return 1;
}

/* Serve a whole request batch over caller-owned flat arrays (the
 * marshalled entry used before the handle API existed; kept for the
 * marshalled-vs-resident benchmark and as a stateless escape hatch).
 *
 * Mirrors FlatTree.serve_many (depth == 2 discipline).  root_io and
 * epoch_io are one-element in/out buffers; totals is a three-element out
 * buffer (routing, rotations, links); routing_series / rotation_series
 * are optional length-m out buffers (both NULL or both set).
 *
 * Returns 0 on success, 1 when the arity is outside the supported range
 * (the caller then falls back to the Python engine). */
int64_t repro_serve_batch(int64_t n, int64_t k, int64_t *root_io,
                          int64_t *parent, int64_t *pslot, int64_t *children,
                          double *routing, int64_t *visit, int64_t *vdepth,
                          int64_t *epoch_io, const int64_t *sources,
                          const int64_t *targets, int64_t m, int64_t policy,
                          int64_t *routing_series, int64_t *rotation_series,
                          int64_t *totals)
{
    (void)n;
    rk_ctx c;
    if (!rk_ctx_init(&c, k, policy, parent, pslot, children, routing,
                     *root_io))
        return 1;
    rk_serve_requests(&c, visit, vdepth, epoch_io, sources, targets, m,
                      routing_series, rotation_series, totals);
    *root_io = c.root;
    return 0;
}

/* ====================================================================
 * Resident-tree handle API (ABI v2).
 *
 * repro_tree_create allocates a handle whose int64/double buffers the
 * kernel owns across calls, so serving costs no per-call marshalling:
 * the Python side loads the flat state once (repro_tree_load), serves
 * any mix of batches (repro_tree_serve_batch) and single requests
 * (repro_tree_serve_one) against the resident buffers, and copies the
 * state back out only on snapshot/inspection (repro_tree_sync_out).
 * ==================================================================== */

typedef struct {
    int64_t n, k, root, epoch;
    int64_t *parent;   /* one calloc block: parent, pslot, visit,   */
    int64_t *pslot;    /* vdepth, then the (n+1) x k children rows  */
    int64_t *visit;
    int64_t *vdepth;
    int64_t *children;
    double *routing;   /* (n+1) x (k-1), separate block */
} rk_tree;

void *repro_tree_create(int64_t n, int64_t k)
{
    if (n < 0 || k < 2 || k > RK_MAX_K)
        return 0;
    rk_tree *t = (rk_tree *)malloc(sizeof(rk_tree));
    if (!t)
        return 0;
    const size_t rows = (size_t)(n + 1);
    t->parent = (int64_t *)calloc(rows * (size_t)(4 + k), sizeof(int64_t));
    t->routing = (double *)calloc(rows * (size_t)(k - 1), sizeof(double));
    if (!t->parent || !t->routing) {
        free(t->parent);
        free(t->routing);
        free(t);
        return 0;
    }
    t->pslot = t->parent + rows;
    t->visit = t->pslot + rows;
    t->vdepth = t->visit + rows;
    t->children = t->vdepth + rows;
    t->n = n;
    t->k = k;
    t->root = 0;
    t->epoch = 0;
    return t;
}

/* Copy a marshalled flat state into the resident buffers.  The epoch
 * counter is *not* reset: stale visit stamps can then never collide with
 * a fresh walk. */
void repro_tree_load(void *handle, int64_t root, const int64_t *parent,
                     const int64_t *pslot, const int64_t *children,
                     const double *routing)
{
    rk_tree *t = (rk_tree *)handle;
    const size_t rows = (size_t)(t->n + 1);
    memcpy(t->parent, parent, rows * sizeof(int64_t));
    memcpy(t->pslot, pslot, rows * sizeof(int64_t));
    memcpy(t->children, children, rows * (size_t)t->k * sizeof(int64_t));
    memcpy(t->routing, routing, rows * (size_t)(t->k - 1) * sizeof(double));
    t->root = root;
}

/* Copy the resident state back out (the dirty-flag sync target). */
void repro_tree_sync_out(void *handle, int64_t *root_out, int64_t *parent,
                         int64_t *pslot, int64_t *children, double *routing)
{
    rk_tree *t = (rk_tree *)handle;
    const size_t rows = (size_t)(t->n + 1);
    memcpy(parent, t->parent, rows * sizeof(int64_t));
    memcpy(pslot, t->pslot, rows * sizeof(int64_t));
    memcpy(children, t->children, rows * (size_t)t->k * sizeof(int64_t));
    memcpy(routing, t->routing, rows * (size_t)(t->k - 1) * sizeof(double));
    *root_out = t->root;
}

int64_t repro_tree_root(void *handle)
{
    return ((rk_tree *)handle)->root;
}

/* Serve a request batch against the resident buffers; same contract as
 * repro_serve_batch minus the marshalling. */
int64_t repro_tree_serve_batch(void *handle, const int64_t *sources,
                               const int64_t *targets, int64_t m,
                               int64_t policy, int64_t *routing_series,
                               int64_t *rotation_series, int64_t *totals)
{
    rk_tree *t = (rk_tree *)handle;
    rk_ctx c;
    if (!rk_ctx_init(&c, t->k, policy, t->parent, t->pslot, t->children,
                     t->routing, t->root))
        return 1;
    rk_serve_requests(&c, t->visit, t->vdepth, &t->epoch, sources, targets,
                      m, routing_series, rotation_series, totals);
    t->root = c.root;
    return 0;
}

/* Scalar serve: one request, no batch marshalling on either side of the
 * boundary (the Session.serve hot path). */
int64_t repro_tree_serve_one(void *handle, int64_t u, int64_t v,
                             int64_t policy, int64_t *totals)
{
    const int64_t src[1] = {u};
    const int64_t dst[1] = {v};
    return repro_tree_serve_batch(handle, src, dst, 1, policy, 0, 0, totals);
}

void repro_tree_destroy(void *handle)
{
    rk_tree *t = (rk_tree *)handle;
    if (!t)
        return;
    free(t->parent);
    free(t->routing);
    free(t);
}
