"""Build-and-load layer for the native serve kernel.

``kernel.c`` (shipped next to this module) has no dependency on Python.h,
so it compiles with any C toolchain: this module builds it into a shared
library with ``cc -O3 -shared -fPIC``, caches the result under a
content-addressed name, and loads it through :mod:`ctypes`.  Everything is
best-effort — any failure (no compiler, read-only filesystem, a kernel
source that does not compile, ``REPRO_NATIVE=0``) leaves the process in
the *unavailable* state, recorded in :func:`build_error`, and the engine
layer degrades to the pure-Python flat backend (see
:func:`repro.core.engine.resolve_engine`).

Environment knobs:

``REPRO_NATIVE``
    ``0``/``off``/``false`` disables the kernel entirely (the supported
    way to exercise the no-toolchain fallback path on a machine that has
    a compiler).
``REPRO_NATIVE_CACHE``
    Directory for compiled shared objects (default
    ``~/.cache/repro/native``, falling back to the system temp dir).
``CC``
    Preferred compiler (default: first of ``cc``, ``gcc``, ``clang`` on
    ``PATH``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

from repro.errors import FaultInjected
from repro.reliability.faults import fire_fault

__all__ = [
    "MAX_NATIVE_K",
    "available",
    "build_error",
    "kernel_source_path",
    "load_kernel",
]

#: Largest arity the kernel's stack scratch supports (mirror of
#: ``RK_MAX_K`` in kernel.c and :data:`repro.core.keyspace.MAX_K`).
MAX_NATIVE_K = 40

#: Expected ``repro_kernel_abi()`` value; stale cached shared objects that
#: report a different version are rebuilt.  Version 2 added the
#: resident-tree handle API.
_ABI_VERSION = 2

_COMPILERS = ("cc", "gcc", "clang")
_CFLAGS = ("-O3", "-fPIC", "-shared", "-fvisibility=default")

_kernel: Optional[ctypes.CDLL] = None
_error: Optional[str] = None
_tried = False


def kernel_source_path() -> Path:
    """Path of the shipped C source (packaged next to this module)."""
    return Path(__file__).resolve().parent / "kernel.c"


def _disabled_by_env() -> bool:
    return os.environ.get("REPRO_NATIVE", "").strip().lower() in (
        "0",
        "off",
        "false",
        "no",
    )


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    try:
        return Path.home() / ".cache" / "repro" / "native"
    except RuntimeError:  # pragma: no cover - no resolvable home
        return Path(tempfile.gettempdir()) / "repro-native"


def _find_compiler() -> Optional[str]:
    candidates = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates.extend(_COMPILERS)
    for candidate in candidates:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _so_path(source: bytes, compiler: str) -> Path:
    """Content-addressed cache location for the compiled kernel."""
    tag = hashlib.sha256()
    tag.update(source)
    tag.update(platform.machine().encode())
    tag.update(sys.platform.encode())
    tag.update(Path(compiler).name.encode())
    tag.update(str(_ABI_VERSION).encode())
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    return _cache_dir() / f"repro_kernel_{tag.hexdigest()[:16]}{suffix}"


def _compile(compiler: str, src: Path, out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    # Compile to a private temp name, then publish atomically so
    # concurrent processes never load a half-written library.
    tmp = out.with_name(f".{out.name}.{os.getpid()}.tmp")
    cmd = [compiler, *_CFLAGS, "-o", str(tmp), str(src)]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=120, check=False
    )
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        detail = (proc.stderr or proc.stdout or "").strip()
        raise RuntimeError(
            f"{' '.join(cmd)} failed with code {proc.returncode}: {detail}"
        )
    os.replace(tmp, out)


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_kernel_abi.restype = ctypes.c_int64
    lib.repro_kernel_abi.argtypes = ()
    abi = int(lib.repro_kernel_abi())
    if abi != _ABI_VERSION:
        raise RuntimeError(
            f"kernel ABI mismatch: compiled {abi}, expected {_ABI_VERSION}"
        )
    fn = lib.repro_serve_batch
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        ctypes.c_int64,  # n
        ctypes.c_int64,  # k
        ctypes.c_void_p,  # root_io
        ctypes.c_void_p,  # parent
        ctypes.c_void_p,  # pslot
        ctypes.c_void_p,  # children
        ctypes.c_void_p,  # routing
        ctypes.c_void_p,  # visit
        ctypes.c_void_p,  # vdepth
        ctypes.c_void_p,  # epoch_io
        ctypes.c_void_p,  # sources
        ctypes.c_void_p,  # targets
        ctypes.c_int64,  # m
        ctypes.c_int64,  # policy
        ctypes.c_void_p,  # routing_series (nullable)
        ctypes.c_void_p,  # rotation_series (nullable)
        ctypes.c_void_p,  # totals
    )
    # -- resident-tree handle API (ABI v2) ---------------------------------
    fn = lib.repro_tree_create
    fn.restype = ctypes.c_void_p
    fn.argtypes = (ctypes.c_int64, ctypes.c_int64)  # n, k
    fn = lib.repro_tree_load
    fn.restype = None
    fn.argtypes = (
        ctypes.c_void_p,  # handle
        ctypes.c_int64,  # root
        ctypes.c_void_p,  # parent
        ctypes.c_void_p,  # pslot
        ctypes.c_void_p,  # children
        ctypes.c_void_p,  # routing
    )
    fn = lib.repro_tree_sync_out
    fn.restype = None
    fn.argtypes = (
        ctypes.c_void_p,  # handle
        ctypes.c_void_p,  # root_out
        ctypes.c_void_p,  # parent
        ctypes.c_void_p,  # pslot
        ctypes.c_void_p,  # children
        ctypes.c_void_p,  # routing
    )
    fn = lib.repro_tree_root
    fn.restype = ctypes.c_int64
    fn.argtypes = (ctypes.c_void_p,)
    fn = lib.repro_tree_serve_batch
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        ctypes.c_void_p,  # handle
        ctypes.c_void_p,  # sources
        ctypes.c_void_p,  # targets
        ctypes.c_int64,  # m
        ctypes.c_int64,  # policy
        ctypes.c_void_p,  # routing_series (nullable)
        ctypes.c_void_p,  # rotation_series (nullable)
        ctypes.c_void_p,  # totals
    )
    fn = lib.repro_tree_serve_one
    fn.restype = ctypes.c_int64
    fn.argtypes = (
        ctypes.c_void_p,  # handle
        ctypes.c_int64,  # u
        ctypes.c_int64,  # v
        ctypes.c_int64,  # policy
        ctypes.c_void_p,  # totals
    )
    fn = lib.repro_tree_destroy
    fn.restype = None
    fn.argtypes = (ctypes.c_void_p,)
    return lib


def _load() -> ctypes.CDLL:
    if _disabled_by_env():
        raise RuntimeError("disabled by REPRO_NATIVE=0")
    src = kernel_source_path()
    if not src.is_file():
        raise RuntimeError(f"kernel source missing: {src}")
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError(
            "no C compiler found (tried $CC, cc, gcc, clang)"
        )
    source = src.read_bytes()
    out = _so_path(source, compiler)
    # A zero-size cache entry (e.g. disk-full or a crash between create
    # and publish on a filesystem without atomic replace) is not a
    # library: treat it as absent rather than letting CDLL choke on it.
    if not out.is_file() or out.stat().st_size == 0:
        _compile(compiler, src, out)
    fault = fire_fault("native.load", context=str(out))
    if fault is not None:
        if fault.mode == "corrupt":
            # Smash the cached artifact so the load below exercises the
            # rebuild-from-scratch recovery path.
            out.write_bytes(b"\x7fNOT-AN-ELF" + os.urandom(32))
        else:
            raise FaultInjected(
                f"injected kernel load failure: {fault.detail or fault.point}"
            )
    try:
        return _configure(ctypes.CDLL(str(out)))
    except Exception:
        # A stale or corrupt cache entry: rebuild once from scratch.
        out.unlink(missing_ok=True)
        _compile(compiler, src, out)
        return _configure(ctypes.CDLL(str(out)))


def load_kernel() -> Optional[ctypes.CDLL]:
    """The loaded kernel library, or ``None`` when unavailable.

    The first call does the work (compile if needed, load, ABI check);
    the outcome — library or failure reason — is cached for the process.
    """
    global _kernel, _error, _tried
    if not _tried:
        _tried = True
        try:
            _kernel = _load()
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            _kernel = None
            _error = f"{type(exc).__name__}: {exc}"
    return _kernel


def available() -> bool:
    """Whether the compiled kernel can be used in this process."""
    return load_kernel() is not None


def build_error() -> Optional[str]:
    """Why the kernel is unavailable (``None`` when it loaded fine)."""
    load_kernel()
    return _error


def _reset_for_tests() -> None:
    """Forget the cached load outcome (so tests can flip REPRO_NATIVE)."""
    global _kernel, _error, _tried
    _kernel = None
    _error = None
    _tried = False
