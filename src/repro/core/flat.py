"""Flat structure-of-arrays engine for k-ary search tree networks.

This module is the performance backend behind ``engine="flat"``: the entire
tree lives in preallocated identifier-indexed arrays, and the paper's
rotations (``k-semi-splay``, ``k-splay``, the generalized d-node rotation)
plus LCA/distance/serve are reimplemented as index arithmetic over those
arrays.  Layout for a tree over identifiers ``1..n`` with arity ``k``
(index 0 is the null sentinel everywhere):

* ``parent[nid]``  — parent identifier (0 for the root),
* ``pslot[nid]``   — slot occupied in the parent (-1 for the root),
* ``child_rows[nid][slot]`` — child identifier per slot (0 = empty),
* ``routing_rows[nid]``     — the node's sorted separator values,
* ``smin[nid]`` / ``smax[nid]`` — cached subtree identifier range.

The scalar arrays are plain Python lists of machine ints and the per-node
rows are small Python lists rather than NumPy buffers: the serve loop is
scalar index arithmetic, where list indexing is several times faster than
NumPy element access, and whole-row rebinding (``child_rows[x] = [0] * k``)
replaces per-slot pointer surgery.  NumPy appears only at the batch
boundary (:meth:`FlatTree.serve_many` accepts NumPy request arrays and
fills NumPy series buffers).

Two things make the flat rotations much cheaper than their object mirrors:

* **Arithmetic subtree placement.**  The separators of a child nest
  strictly inside one slot interval of its parent, so in the merged array
  of a rotation group the interval index of every hanging subtree follows
  from slot positions alone (no search): with ``y`` in slot ``sy`` of
  ``x`` and ``z`` in slot ``sz`` of ``y``, a subtree at slot ``s`` of
  ``x`` has index ``s`` (+ ``2(k-1)`` past ``sy``), one at slot ``t`` of
  ``y`` has ``sy + t`` (+ ``k-1`` past ``sz``), and one at slot ``r`` of
  ``z`` has ``sy + sz + r``.
* **Lazy subtree ranges.**  Because placement never consults
  ``smin``/``smax``, the depth-2 serve loop skips range maintenance
  entirely; the ranges are refreshed in one O(n) pass only when something
  actually needs them (validation, the generalized deep-splay rotation,
  structural export).

The implementation deliberately mirrors :mod:`repro.core.rotations` and
:mod:`repro.core.multirotation` decision-for-decision (same merged arrays,
same block-start choices, same reattachment targets), so the two engines
produce *identical* topologies and identical rotation/link totals on any
request sequence — ``tests/test_flat_engine.py`` cross-validates this on
randomized traces.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.core.engine import accumulate_serve_totals
from repro.core.keyspace import NEG_INF, POS_INF
from repro.core.multirotation import MAX_CHAIN, _assignments, _plan_placements
from repro.core.node import KAryNode
from repro.core.rotations import BLOCK_POLICIES
from repro.core.tree import KAryTreeNetwork
from repro.errors import EngineError, InvalidTreeError, RotationError

__all__ = ["FlatTree", "tree_signature"]


def tree_signature(tree) -> list[tuple[int, int, tuple[float, ...]]]:
    """Preorder ``(nid, pslot, routing)`` triples of an object tree.

    Two trees over the same identifier set are topologically identical iff
    their signatures are equal (the preorder fixes the child wiring, the
    pslots fix the slots, the routing arrays fix the key-space partition).
    """
    out: list[tuple[int, int, tuple[float, ...]]] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        out.append((node.nid, node.pslot, tuple(node.routing)))
        for child in reversed(node.children):
            if child is not None:
                stack.append(child)
    return out


class FlatTree:
    """A k-ary search tree network stored as flat identifier-indexed arrays.

    Construct via :meth:`from_tree`; the class is a *mutable engine*, not a
    value object — rotations update the arrays in place.
    """

    __slots__ = (
        "n",
        "k",
        "root",
        "parent",
        "pslot",
        "child_rows",
        "routing_rows",
        "smin",
        "smax",
        "_ranges_dirty",
        "_visit",
        "_vdepth",
        "_epoch",
    )

    #: Whether :meth:`serve_many` is fastest on NumPy request arrays
    #: (the native kernel) rather than Python int lists (this class's
    #: pure-Python loop).  Callers that normalize batched input consult
    #: this to skip a round trip through the other representation.
    prefers_request_arrays = False

    def __init__(self, n: int, k: int) -> None:
        if k < 2:
            raise InvalidTreeError(f"arity k must be >= 2, got {k}")
        self.n = n
        self.k = k
        self.root = 0
        self.parent = [0] * (n + 1)
        self.pslot = [-1] * (n + 1)
        self.child_rows: list[list[int]] = [[0] * k for _ in range(n + 1)]
        self.routing_rows: list[list[float]] = [[] for _ in range(n + 1)]
        self.smin = list(range(n + 1))
        self.smax = list(range(n + 1))
        self._ranges_dirty = False
        # Epoch-stamped scratch arrays for the LCA walk (no per-request
        # allocation, no clearing between requests).
        self._visit = [0] * (n + 1)
        self._vdepth = [0] * (n + 1)
        self._epoch = 0

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree: KAryTreeNetwork) -> "FlatTree":
        """Snapshot an object-engine tree into flat arrays."""
        flat = cls(tree.n, tree.k)
        parent, pslot = flat.parent, flat.pslot
        child_rows, routing_rows = flat.child_rows, flat.routing_rows
        smin, smax = flat.smin, flat.smax
        for node in tree.root.iter_subtree():
            nid = node.nid
            parent[nid] = node.parent.nid if node.parent is not None else 0
            pslot[nid] = node.pslot
            smin[nid] = node.smin
            smax[nid] = node.smax
            child_rows[nid] = [
                child.nid if child is not None else 0 for child in node.children
            ]
            routing_rows[nid] = list(node.routing)
        flat.root = tree.root_id
        return flat

    def to_tree(self, *, validate: bool = False) -> KAryTreeNetwork:
        """Materialize an object-engine snapshot of the current topology.

        Subtree ranges of the snapshot are recomputed by the
        :class:`KAryTreeNetwork` constructor, so lazily-stale flat ranges
        never leak out.
        """
        k = self.k
        child_rows, routing_rows = self.child_rows, self.routing_rows
        nodes = [None] + [KAryNode(nid, k) for nid in range(1, self.n + 1)]
        for nid in range(1, self.n + 1):
            node = nodes[nid]
            node.routing = list(routing_rows[nid])
            for slot, c in enumerate(child_rows[nid]):
                if c:
                    node.attach_child(nodes[c], slot)
        return KAryTreeNetwork(k, nodes[self.root], validate=validate)

    def _sync_lists(self) -> None:
        """Hook for engines whose authoritative state lives elsewhere.

        :class:`~repro.core.native.NativeTree` overrides this to copy its
        C-resident buffers back into the list-backed state before any
        consumer reads it (snapshot, inspection, cross-engine transfer).
        For the pure-Python engine the lists *are* the state: no-op.
        """
        return None

    @classmethod
    def from_flat(cls, other: "FlatTree") -> "FlatTree":
        """An independent deep copy of ``other``'s topology (O(n)).

        ``cls`` and ``type(other)`` may differ — this is how a snapshot
        taken on one array-backed engine is adopted by the other (both
        :class:`FlatTree` and :class:`~repro.core.native.NativeTree`
        share the list-backed state layout).
        """
        other._sync_lists()
        twin = cls(other.n, other.k)
        twin.root = other.root
        twin.parent = list(other.parent)
        twin.pslot = list(other.pslot)
        twin.child_rows = [list(row) for row in other.child_rows]
        twin.routing_rows = [list(row) for row in other.routing_rows]
        twin.smin = list(other.smin)
        twin.smax = list(other.smax)
        twin._ranges_dirty = other._ranges_dirty
        return twin

    def copy(self) -> "FlatTree":
        """An independent deep copy of the current topology (O(n)).

        The copy shares no mutable state with the original — per-node
        child/routing rows are re-materialized — so it can serve as an
        immutable checkpoint while the original keeps rotating (the
        session snapshot path of :mod:`repro.net.session`).
        """
        return type(self).from_flat(self)

    def signature(self) -> list[tuple[int, int, tuple[float, ...]]]:
        """Preorder ``(nid, pslot, routing)`` triples (see :func:`tree_signature`)."""
        child_rows, routing_rows, pslot = (
            self.child_rows,
            self.routing_rows,
            self.pslot,
        )
        out: list[tuple[int, int, tuple[float, ...]]] = []
        stack = [self.root]
        while stack:
            nid = stack.pop()
            out.append((nid, pslot[nid], tuple(routing_rows[nid])))
            row = child_rows[nid]
            for slot in range(self.k - 1, -1, -1):
                c = row[slot]
                if c:
                    stack.append(c)
        return out

    # ------------------------------------------------------------------
    # subtree ranges (maintained lazily; see module docstring)
    # ------------------------------------------------------------------
    def refresh_ranges(self) -> None:
        """Recompute every ``smin``/``smax`` bottom-up in one O(n) pass."""
        child_rows, smin, smax = self.child_rows, self.smin, self.smax
        order = [self.root]
        for nid in order:  # grows while iterating: preorder
            for c in child_rows[nid]:
                if c:
                    order.append(c)
        for nid in reversed(order):
            lo = hi = nid
            for c in child_rows[nid]:
                if c:
                    if smin[c] < lo:
                        lo = smin[c]
                    if smax[c] > hi:
                        hi = smax[c]
            smin[nid] = lo
            smax[nid] = hi
        self._ranges_dirty = False

    def _ensure_ranges(self) -> None:
        if self._ranges_dirty:
            self.refresh_ranges()

    def _recompute_range(self, nid: int) -> None:
        """Refresh one node's range from its (already-correct) children."""
        smin, smax = self.smin, self.smax
        lo = hi = nid
        for c in self.child_rows[nid]:
            if c:
                if smin[c] < lo:
                    lo = smin[c]
                if smax[c] > hi:
                    hi = smax[c]
        smin[nid] = lo
        smax[nid] = hi

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def depth(self, nid: int) -> int:
        """Depth of ``nid`` (root has depth 0)."""
        parent = self.parent
        d = 0
        node = parent[nid]
        while node:
            node = parent[node]
            d += 1
        return d

    def lca(self, u: int, v: int) -> tuple[int, int, int]:
        """``(lca, du, dv)`` — common ancestor and climb distances.

        One walk up from ``u`` stamps the ancestor chain in the epoch
        scratch arrays; the walk up from ``v`` stops at the first stamped
        node, so total work is ``depth(u) + depth(v)`` parent hops.
        """
        parent = self.parent
        visit, vdepth = self._visit, self._vdepth
        self._epoch += 1
        epoch = self._epoch
        node = u
        d = 0
        while node:
            visit[node] = epoch
            vdepth[node] = d
            node = parent[node]
            d += 1
        node = v
        dv = 0
        while visit[node] != epoch:
            node = parent[node]
            dv += 1
        return node, vdepth[node], dv

    def distance(self, u: int, v: int) -> int:
        """Tree distance (in edges) between identifiers ``u`` and ``v``."""
        if u == v:
            return 0
        _, du, dv = self.lca(u, v)
        return du + dv

    # ------------------------------------------------------------------
    # rotations (index-arithmetic mirrors of repro.core.rotations)
    # ------------------------------------------------------------------
    def semi_splay(self, y: int, policy: str = "center") -> int:
        """Promote ``y`` above its parent; returns the link churn.

        Range-maintaining wrapper around :meth:`semi_splay_fast` — use this
        when serving request-by-request mixed with range consumers; the
        batched serve loop uses the fast core and refreshes ranges lazily.
        """
        x = self.parent[y]
        links = self.semi_splay_fast(y, policy)
        self._recompute_range(x)
        self._recompute_range(y)
        return links

    def splay(self, z: int, policy: str = "center") -> int:
        """Promote ``z`` above parent and grandparent; returns the link churn.

        Range-maintaining wrapper around :meth:`splay_fast` (both rotation
        cases); the batched serve loop uses the fast core directly.
        """
        y = self.parent[z]
        x = self.parent[y] if y else 0
        links = self.splay_fast(z, policy)
        # Bottom-up: in case 1 x and y end up siblings under z, in case 2
        # the chain is z -> y -> x; either way x, y, z is a valid order.
        self._recompute_range(x)
        self._recompute_range(y)
        self._recompute_range(z)
        return links

    def semi_splay_fast(self, y: int, policy: str = "center") -> int:
        """:meth:`semi_splay` core without subtree-range maintenance.

        Index-arithmetic mirror of :func:`repro.core.rotations.k_semi_splay`.
        Hanging subtrees are re-homed without searching: a subtree at slot
        ``s`` of the parent has merged-interval index ``s`` (plus ``k-1``
        past the slot holding ``y``, whose separators all nest there).
        Callers are responsible for range freshness (see
        :meth:`refresh_ranges`).
        """
        parent, pslot = self.parent, self.pslot
        child_rows, routing_rows = self.child_rows, self.routing_rows
        k = self.k
        km1 = k - 1
        x = parent[y]
        if not x:
            raise RotationError(f"node {y} is the root; cannot semi-splay")
        grand = parent[x]
        gslot = pslot[x]
        sy = pslot[y]

        merged = sorted(routing_rows[x] + routing_rows[y])
        xrow = child_rows[x]
        yrow = child_rows[y]
        nxrow = [0] * k
        nyrow = [0] * k
        child_rows[x] = nxrow
        child_rows[y] = nyrow

        pos_x = bisect_left(merged, x)
        # block start covering pos_x, clamped to [max(0, pos_x-km1), min(km1, pos_x)]
        if policy == "center":
            j = pos_x - km1 // 2
        elif policy == "left":
            j = pos_x - km1
        else:
            j = pos_x
        lo = pos_x - km1
        if lo < 0:
            lo = 0
        hi = km1 if km1 < pos_x else pos_x
        if j < lo:
            j = lo
        elif j > hi:
            j = hi
        jhi = j + km1

        routing_rows[x] = merged[j:jhi]
        routing_rows[y] = merged[:j] + merged[jhi:]

        nyrow[j] = x
        parent[x] = y
        pslot[x] = j
        links = 2 if grand else 0
        # x's subtree at slot s has merged index s (+ km1 past slot sy);
        # y's subtree at slot t has merged index sy + t.
        s = -1
        for c in xrow:
            s += 1
            if not c or c == y:
                continue
            m = s if s < sy else s + km1
            if j <= m <= jhi:
                slot = m - j
                nxrow[slot] = c
                parent[c] = x
                pslot[c] = slot
            else:
                slot = m if m < j else m - km1
                nyrow[slot] = c
                parent[c] = y
                pslot[c] = slot
                links += 2
        m = sy - 1
        for c in yrow:
            m += 1
            if not c:
                continue
            if j <= m <= jhi:
                slot = m - j
                nxrow[slot] = c
                parent[c] = x
                pslot[c] = slot
                links += 2
            else:
                slot = m if m < j else m - km1
                nyrow[slot] = c
                parent[c] = y
                pslot[c] = slot

        if grand:
            child_rows[grand][gslot] = y
            parent[y] = grand
            pslot[y] = gslot
        else:
            parent[y] = 0
            pslot[y] = -1
            self.root = y
        return links

    def splay_fast(self, z: int, policy: str = "center") -> int:
        """:meth:`splay` core without subtree-range maintenance.

        Index-arithmetic mirror of :func:`repro.core.rotations.k_splay`
        (both the distant zig-zag case and the close zig-zig case), with
        arithmetic subtree placement (module docstring) and the three
        reattachment loops specialized per source row so the owner-flip
        link charges are constants.  Callers are responsible for range
        freshness (see :meth:`refresh_ranges`).
        """
        parent, pslot = self.parent, self.pslot
        child_rows, routing_rows = self.child_rows, self.routing_rows
        k = self.k
        km1 = k - 1
        km2 = 2 * km1
        y = parent[z]
        if not y:
            raise RotationError(f"node {z} is the root; cannot k-splay")
        x = parent[y]
        if not x:
            raise RotationError(
                f"node {z} has no grandparent; use semi_splay instead"
            )
        grand = parent[x]
        gslot = pslot[x]
        sy = pslot[y]
        sz = pslot[z]

        merged = sorted(routing_rows[x] + routing_rows[y] + routing_rows[z])
        xrow = child_rows[x]
        yrow = child_rows[y]
        zrow = child_rows[z]
        pos_x = bisect_left(merged, x)
        pos_y = bisect_left(merged, y)

        nxrow = [0] * k
        nyrow = [0] * k
        nzrow = [0] * k
        child_rows[x] = nxrow
        child_rows[y] = nyrow
        child_rows[z] = nzrow

        diff = pos_x - pos_y
        if diff > km1 or -diff > km1:
            # ---- Case 1 (zig-zag analogue): x and y become children of z.
            # The chain x-y-z turns into the star z-{x, y}: the y-z link
            # survives, x-y is replaced by x-z (two changes).
            if diff < 0:
                lo_node, pos_lo, hi_node, pos_hi = x, pos_x, y, pos_y
                lo_nrow, hi_nrow = nxrow, nyrow
                x_lo_flip, x_hi_flip = 0, 2
                y_lo_flip, y_hi_flip = 2, 0
            else:
                lo_node, pos_lo, hi_node, pos_hi = y, pos_y, x, pos_x
                lo_nrow, hi_nrow = nyrow, nxrow
                x_lo_flip, x_hi_flip = 2, 0
                y_lo_flip, y_hi_flip = 0, 2
            j_lo = pos_lo - km1
            if j_lo < 0:
                j_lo = 0
            j_hi = km2
            if pos_hi < j_hi:
                j_hi = pos_hi
            if j_hi - j_lo < k:  # pragma: no cover - proven impossible
                raise RotationError("k-splay case 1 block separation failed")
            j_lo_hi = j_lo + km1
            j_hi_hi = j_hi + km1

            routing_rows[lo_node] = merged[j_lo:j_lo_hi]
            routing_rows[hi_node] = merged[j_hi:j_hi_hi]
            routing_rows[z] = (
                merged[:j_lo] + merged[j_lo_hi:j_hi] + merged[j_hi_hi:]
            )

            nzrow[j_lo] = lo_node
            parent[lo_node] = z
            pslot[lo_node] = j_lo
            nzrow[j_hi - km1] = hi_node
            parent[hi_node] = z
            pslot[hi_node] = j_hi - km1
            links = 2
            s = -1
            for c in xrow:
                s += 1
                if not c or c == y:
                    continue
                m = s if s < sy else s + km2
                if j_lo <= m <= j_lo_hi:
                    slot = m - j_lo
                    lo_nrow[slot] = c
                    parent[c] = lo_node
                    pslot[c] = slot
                    links += x_lo_flip
                elif j_hi <= m <= j_hi_hi:
                    slot = m - j_hi
                    hi_nrow[slot] = c
                    parent[c] = hi_node
                    pslot[c] = slot
                    links += x_hi_flip
                else:
                    if m < j_lo:
                        slot = m
                    elif m < j_hi:
                        slot = m - km1
                    else:
                        slot = m - km2
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
                    links += 2
            t = -1
            for c in yrow:
                t += 1
                if not c or c == z:
                    continue
                m = sy + t if t < sz else sy + t + km1
                if j_lo <= m <= j_lo_hi:
                    slot = m - j_lo
                    lo_nrow[slot] = c
                    parent[c] = lo_node
                    pslot[c] = slot
                    links += y_lo_flip
                elif j_hi <= m <= j_hi_hi:
                    slot = m - j_hi
                    hi_nrow[slot] = c
                    parent[c] = hi_node
                    pslot[c] = slot
                    links += y_hi_flip
                else:
                    if m < j_lo:
                        slot = m
                    elif m < j_hi:
                        slot = m - km1
                    else:
                        slot = m - km2
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
                    links += 2
            m = sy + sz - 1
            for c in zrow:
                m += 1
                if not c:
                    continue
                if j_lo <= m <= j_lo_hi:
                    slot = m - j_lo
                    lo_nrow[slot] = c
                    parent[c] = lo_node
                    pslot[c] = slot
                    links += 2
                elif j_hi <= m <= j_hi_hi:
                    slot = m - j_hi
                    hi_nrow[slot] = c
                    parent[c] = hi_node
                    pslot[c] = slot
                    links += 2
                else:
                    if m < j_lo:
                        slot = m
                    elif m < j_hi:
                        slot = m - km1
                    else:
                        slot = m - km2
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
        else:
            # ---- Case 2 (zig-zig analogue): chain reversed to z -> y -> x.
            if diff < 0:
                lo_pos, hi_pos = pos_x, pos_y
            else:
                lo_pos, hi_pos = pos_y, pos_x
            width = km2
            j2 = hi_pos - width + (width - (hi_pos - lo_pos)) // 2
            j2_lo = hi_pos - width
            if j2_lo < 0:
                j2_lo = 0
            j2_hi = km1 if km1 < lo_pos else lo_pos
            if j2_lo > j2_hi:  # pragma: no cover - proven impossible
                raise RotationError("k-splay case 2 pair window infeasible")
            if j2 < j2_lo:
                j2 = j2_lo
            elif j2 > j2_hi:
                j2 = j2_hi
            j2hi = j2 + width

            pair = merged[j2:j2hi]
            routing_rows[z] = merged[:j2] + merged[j2hi:]

            pos_x2 = pos_x - j2
            if policy == "center":
                j1 = pos_x2 - km1 // 2
            elif policy == "left":
                j1 = pos_x2 - km1
            else:
                j1 = pos_x2
            lo = pos_x2 - km1
            if lo < 0:
                lo = 0
            hi = km1 if km1 < pos_x2 else pos_x2
            if j1 < lo:
                j1 = lo
            elif j1 > hi:
                j1 = hi
            j1hi = j1 + km1
            routing_rows[x] = pair[j1:j1hi]
            routing_rows[y] = pair[:j1] + pair[j1hi:]

            nzrow[j2] = y
            parent[y] = z
            pslot[y] = j2
            nyrow[j1] = x
            parent[x] = y
            pslot[x] = j1
            links = 0
            s = -1
            for c in xrow:
                s += 1
                if not c or c == y:
                    continue
                m = s if s < sy else s + km2
                if m < j2 or m > j2hi:
                    slot = m if m < j2 else m - width
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
                    links += 2
                else:
                    m2 = m - j2
                    if j1 <= m2 <= j1hi:
                        slot = m2 - j1
                        nxrow[slot] = c
                        parent[c] = x
                        pslot[c] = slot
                    else:
                        slot = m2 if m2 < j1 else m2 - km1
                        nyrow[slot] = c
                        parent[c] = y
                        pslot[c] = slot
                        links += 2
            t = -1
            for c in yrow:
                t += 1
                if not c or c == z:
                    continue
                m = sy + t if t < sz else sy + t + km1
                if m < j2 or m > j2hi:
                    slot = m if m < j2 else m - width
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
                    links += 2
                else:
                    m2 = m - j2
                    if j1 <= m2 <= j1hi:
                        slot = m2 - j1
                        nxrow[slot] = c
                        parent[c] = x
                        pslot[c] = slot
                        links += 2
                    else:
                        slot = m2 if m2 < j1 else m2 - km1
                        nyrow[slot] = c
                        parent[c] = y
                        pslot[c] = slot
            m = sy + sz - 1
            for c in zrow:
                m += 1
                if not c:
                    continue
                if m < j2 or m > j2hi:
                    slot = m if m < j2 else m - width
                    nzrow[slot] = c
                    parent[c] = z
                    pslot[c] = slot
                else:
                    m2 = m - j2
                    if j1 <= m2 <= j1hi:
                        slot = m2 - j1
                        nxrow[slot] = c
                        parent[c] = x
                        pslot[c] = slot
                        links += 2
                    else:
                        slot = m2 if m2 < j1 else m2 - km1
                        nyrow[slot] = c
                        parent[c] = y
                        pslot[c] = slot
                        links += 2

        if grand:
            child_rows[grand][gslot] = z
            parent[z] = grand
            pslot[z] = gslot
            links += 2
        else:
            parent[z] = 0
            pslot[z] = -1
            self.root = z
        return links

    def generalized_splay(self, chain: list[int]) -> int:
        """Collapse an ancestor ``chain`` (nids, top-down) in one step.

        Mirror of :func:`repro.core.multirotation.generalized_splay` with
        the default top-down processing order; the planning phase reuses the
        same pure search over merged value lists, only the commit works on
        the flat arrays.  Requires fresh subtree ranges (callers go through
        :meth:`splay_until`, which ensures them).  Returns the link churn.
        """
        d = len(chain)
        if d < 2:
            raise RotationError("generalized splay needs a chain of length >= 2")
        if d > MAX_CHAIN:
            raise RotationError(f"chain length {d} exceeds MAX_CHAIN={MAX_CHAIN}")
        parent, pslot = self.parent, self.pslot
        child_rows, routing_rows = self.child_rows, self.routing_rows
        smin = self.smin
        k = self.k
        for upper, lower in zip(chain, chain[1:]):
            if parent[lower] != upper:
                raise RotationError(
                    f"chain break: {lower} is not a child of {upper}"
                )

        merged = sorted(
            value for nid in chain for value in routing_rows[nid]
        )
        group = set(chain)
        keys = list(chain)  # default order: top-down, promoted node last

        sub_intervals: list[tuple[float, float]] = []
        sub_nodes: list[int] = []
        sub_owners: list[int] = []
        for owner in chain:
            for c in child_rows[owner]:
                if c and c not in group:
                    pos = bisect_left(merged, smin[c])
                    lo = merged[pos - 1] if pos > 0 else NEG_INF
                    hi = merged[pos] if pos < len(merged) else POS_INF
                    sub_intervals.append((lo, hi))
                    sub_nodes.append(c)
                    sub_owners.append(owner)

        plan = None
        for assignment in _assignments(merged, keys, k):
            placements = _plan_placements(assignment, sub_intervals, merged)
            if placements is not None:
                plan = (assignment, placements)
                break
        if plan is None:
            raise RotationError(
                f"no consistent block assignment for chain {sorted(group)}"
            )
        assignment, (chain_placements, sub_placements) = plan

        top = chain[0]
        promoted = chain[-1]
        grand = parent[top]
        gslot = pslot[top]
        for nid in chain:
            child_rows[nid] = [0] * k
            parent[nid] = 0
            pslot[nid] = -1
        for nid, (block, _window) in zip(keys, assignment):
            routing_rows[nid] = block

        old_edges = {
            frozenset((upper, lower)) for upper, lower in zip(chain, chain[1:])
        }
        links = 0
        for idx, (owner_idx, slot) in enumerate(chain_placements):
            owner = keys[owner_idx]
            child = keys[idx]
            child_rows[owner][slot] = child
            parent[child] = owner
            pslot[child] = slot
        for c, old_owner, (owner_idx, slot) in zip(
            sub_nodes, sub_owners, sub_placements
        ):
            owner = keys[owner_idx]
            child_rows[owner][slot] = c
            parent[c] = owner
            pslot[c] = slot
            if owner != old_owner:
                links += 2
        # earlier-processed nodes sit below later ones: recompute bottom-up
        for nid in keys:
            self._recompute_range(nid)

        if grand:
            child_rows[grand][gslot] = promoted
            parent[promoted] = grand
            pslot[promoted] = gslot
            links += 2
        else:
            self.root = promoted
        new_edges = set()
        for nid in keys[:-1]:
            new_edges.add(frozenset((nid, parent[nid])))
        links += len(old_edges ^ new_edges)
        return links

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def splay_until(
        self,
        node: int,
        stop: int,
        *,
        policy: str = "center",
        depth: int = 2,
    ) -> tuple[int, int]:
        """Rotate ``node`` upward until its parent is ``stop`` (0 = root).

        Flat mirror of :func:`repro.core.splay.splay_until`, including the
        ``depth > 2`` generalized-rotation discipline.  Returns
        ``(rotations, links_changed)``.
        """
        if depth < 2:
            raise RotationError(f"splay depth must be >= 2, got {depth}")
        parent = self.parent
        rotations = 0
        links = 0
        if depth == 2:
            self._ranges_dirty = True
            semi = self.semi_splay_fast
            spl = self.splay_fast
            p = parent[node]
            while p != stop:
                g = parent[p]
                if g == stop or g == 0:
                    links += semi(node, policy)
                else:
                    links += spl(node, policy)
                rotations += 1
                p = parent[node]
            return rotations, links

        # The generalized rotation consults subtree ranges; keep them fresh
        # throughout by using the range-maintaining rotation wrappers.
        self._ensure_ranges()
        while parent[node] != stop:
            chain = [node]
            cursor = node
            while len(chain) <= depth:
                p = parent[cursor]
                if p == stop or p == 0:
                    break
                cursor = p
                chain.append(cursor)
            chain.reverse()
            if len(chain) == 2:
                links += self.semi_splay(node, policy)
            elif len(chain) == 3:
                links += self.splay(node, policy)
            else:
                links += self.generalized_splay(chain)
            rotations += 1
        return rotations, links

    def serve_one(
        self, u: int, v: int, policy: str = "center", depth: int = 2
    ) -> tuple[int, int, int]:
        """Serve one request; returns ``(routing_cost, rotations, links)``.

        Flat mirror of :meth:`repro.core.splaynet.KArySplayNet.serve`: splay
        ``u`` into the LCA's position, then ``v`` up to a child of ``u``.
        """
        if u == v:
            return 0, 0, 0
        w, du, dv = self.lca(u, v)
        if w == v:
            rotations, links = self.splay_until(u, v, policy=policy, depth=depth)
        else:
            if w != u:
                stop = self.parent[w]
                rotations, links = self.splay_until(
                    u, stop, policy=policy, depth=depth
                )
            else:
                rotations = links = 0
            r2, l2 = self.splay_until(v, u, policy=policy, depth=depth)
            rotations += r2
            links += l2
        return du + dv, rotations, links

    def serve_many(
        self,
        sources: list[int],
        targets: list[int],
        *,
        policy: str = "center",
        depth: int = 2,
        routing_series=None,
        rotation_series=None,
    ) -> tuple[int, int, int]:
        """Serve a whole request batch; returns scalar cost totals.

        This is the hot loop of the flat engine: the LCA walk, both splay
        phases *and the two rotation bodies themselves* are inlined over one
        shared set of local array references, so serving a request performs
        no Python function calls and allocates no per-request objects.  The
        inlined rotations are verbatim copies of :meth:`semi_splay_fast` /
        :meth:`splay_fast` (the equivalence suite exercises both paths
        against the object engine).  ``routing_series`` /
        ``rotation_series`` are optional preallocated buffers (NumPy arrays
        or lists) filled per request when provided.
        """
        if policy not in BLOCK_POLICIES:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if (routing_series is None) != (rotation_series is None):
            raise EngineError(
                "routing_series and rotation_series must be provided together"
            )
        if depth != 2:
            # The deep-splay discipline is dominated by the assignment
            # search; the per-request delegation overhead is immaterial.
            return accumulate_serve_totals(
                lambda u, v: self.serve_one(u, v, policy, depth),
                sources,
                targets,
                routing_series,
                rotation_series,
            )

        self._ranges_dirty = True
        parent, pslot = self.parent, self.pslot
        child_rows, routing_rows = self.child_rows, self.routing_rows
        visit, vdepth = self._visit, self._vdepth
        epoch = self._epoch
        k = self.k
        km1 = k - 1
        km2 = 2 * km1
        half = km1 // 2
        pol_center = policy == "center"
        pol_left = policy == "left"
        total_r = 0
        total_rot = 0
        total_l = 0
        record = routing_series is not None
        i = -1
        try:
            for u, v in zip(sources, targets):
                i += 1
                if u == v:
                    if record:
                        routing_series[i] = 0
                        rotation_series[i] = 0
                    continue
                if parent[u] == v or parent[v] == u:
                    # Already adjacent: cost 1, and both splay phases are
                    # no-ops (exactly what the full discipline would do).
                    total_r += 1
                    if record:
                        routing_series[i] = 1
                        rotation_series[i] = 0
                    continue
                # --- LCA by stamping u's ancestor chain ----------------
                epoch += 1
                node = u
                d = 0
                while node:
                    visit[node] = epoch
                    vdepth[node] = d
                    node = parent[node]
                    d += 1
                node = v
                dv = 0
                while visit[node] != epoch:
                    node = parent[node]
                    dv += 1
                total_r += vdepth[node] + dv
                rot = 0
                lk = 0
                # --- splay u into the LCA's position, then v below u ---
                if node == v:
                    climb = u
                    stop = v
                    final = True
                elif node == u:
                    climb = v
                    stop = u
                    final = True
                else:
                    climb = u
                    stop = parent[node]
                    final = False
                while True:
                    p = parent[climb]
                    while p != stop:
                        g = parent[p]
                        rot += 1
                        if g == stop or g == 0:
                            # ==== inline semi_splay_fast(climb) ========
                            # (x := p promoted below y := climb)
                            y = climb
                            x = p
                            gslot = pslot[x]
                            sy = pslot[y]
                            merged = [*routing_rows[x], *routing_rows[y]]
                            merged.sort()
                            xrow = child_rows[x]
                            yrow = child_rows[y]
                            nxrow = [0] * k
                            nyrow = [0] * k
                            child_rows[x] = nxrow
                            child_rows[y] = nyrow
                            pos_x = bisect_left(merged, x)
                            if pol_center:
                                j = pos_x - half
                            elif pol_left:
                                j = pos_x - km1
                            else:
                                j = pos_x
                            lo = pos_x - km1
                            if lo < 0:
                                lo = 0
                            hi = km1 if km1 < pos_x else pos_x
                            if j < lo:
                                j = lo
                            elif j > hi:
                                j = hi
                            jhi = j + km1
                            routing_rows[x] = merged[j:jhi]
                            routing_rows[y] = merged[:j] + merged[jhi:]
                            nyrow[j] = x
                            parent[x] = y
                            pslot[x] = j
                            if g:
                                lk += 2
                            # x's subtree below slot sy keeps merged index s, past
                            # it s + km1 (slot sy held y); y's subtree at slot t
                            # has merged index sy + t.  Placement is an ordered
                            # comparison ladder over the merged index.
                            for m in range(sy):
                                c = xrow[m]
                                if not c:
                                    continue
                                if m < j:
                                    nyrow[m] = c
                                    parent[c] = y
                                    pslot[c] = m
                                    lk += 2
                                elif m <= jhi:
                                    slot = m - j
                                    nxrow[slot] = c
                                    parent[c] = x
                                    pslot[c] = slot
                                else:
                                    slot = m - km1
                                    nyrow[slot] = c
                                    parent[c] = y
                                    pslot[c] = slot
                                    lk += 2
                            for s in range(sy + 1, k):
                                c = xrow[s]
                                if not c:
                                    continue
                                m = s + km1
                                if m < j:
                                    nyrow[m] = c
                                    parent[c] = y
                                    pslot[c] = m
                                    lk += 2
                                elif m <= jhi:
                                    slot = m - j
                                    nxrow[slot] = c
                                    parent[c] = x
                                    pslot[c] = slot
                                else:
                                    slot = m - km1
                                    nyrow[slot] = c
                                    parent[c] = y
                                    pslot[c] = slot
                                    lk += 2
                            for t in range(k):
                                c = yrow[t]
                                if not c:
                                    continue
                                m = sy + t
                                if m < j:
                                    nyrow[m] = c
                                    parent[c] = y
                                    pslot[c] = m
                                elif m <= jhi:
                                    slot = m - j
                                    nxrow[slot] = c
                                    parent[c] = x
                                    pslot[c] = slot
                                    lk += 2
                                else:
                                    slot = m - km1
                                    nyrow[slot] = c
                                    parent[c] = y
                                    pslot[c] = slot
                            if g:
                                child_rows[g][gslot] = y
                                parent[y] = g
                                pslot[y] = gslot
                            else:
                                parent[y] = 0
                                pslot[y] = -1
                                self.root = y
                            p = g
                            # ==== end inline semi ======================
                        else:
                            # ==== inline splay_fast(climb) =============
                            # (x := g, y := p promoted below z := climb)
                            z = climb
                            y = p
                            x = g
                            grand = parent[x]
                            gslot = pslot[x]
                            sy = pslot[y]
                            sz = pslot[z]
                            merged = [
                                *routing_rows[x],
                                *routing_rows[y],
                                *routing_rows[z],
                            ]
                            merged.sort()
                            xrow = child_rows[x]
                            yrow = child_rows[y]
                            zrow = child_rows[z]
                            pos_x = bisect_left(merged, x)
                            pos_y = bisect_left(merged, y)
                            nxrow = [0] * k
                            nyrow = [0] * k
                            nzrow = [0] * k
                            child_rows[x] = nxrow
                            child_rows[y] = nyrow
                            child_rows[z] = nzrow
                            diff = pos_x - pos_y
                            if diff > km1 or -diff > km1:
                                # ---- Case 1: x and y become children of z.
                                if diff < 0:
                                    lo_node, pos_lo, hi_node, pos_hi = x, pos_x, y, pos_y
                                    lo_nrow, hi_nrow = nxrow, nyrow
                                    x_lo_flip, x_hi_flip = 0, 2
                                    y_lo_flip, y_hi_flip = 2, 0
                                else:
                                    lo_node, pos_lo, hi_node, pos_hi = y, pos_y, x, pos_x
                                    lo_nrow, hi_nrow = nyrow, nxrow
                                    x_lo_flip, x_hi_flip = 2, 0
                                    y_lo_flip, y_hi_flip = 0, 2
                                j_lo = pos_lo - km1
                                if j_lo < 0:
                                    j_lo = 0
                                j_hi = km2
                                if pos_hi < j_hi:
                                    j_hi = pos_hi
                                j_lo_hi = j_lo + km1
                                j_hi_hi = j_hi + km1
                                routing_rows[lo_node] = merged[j_lo:j_lo_hi]
                                routing_rows[hi_node] = merged[j_hi:j_hi_hi]
                                routing_rows[z] = (
                                    merged[:j_lo]
                                    + merged[j_lo_hi:j_hi]
                                    + merged[j_hi_hi:]
                                )
                                nzrow[j_lo] = lo_node
                                parent[lo_node] = z
                                pslot[lo_node] = j_lo
                                nzrow[j_hi - km1] = hi_node
                                parent[hi_node] = z
                                pslot[hi_node] = j_hi - km1
                                lk += 2
                                for m in range(sy):
                                    c = xrow[m]
                                    if not c:
                                        continue
                                    if m < j_lo:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    elif m <= j_lo_hi:
                                        slot = m - j_lo
                                        lo_nrow[slot] = c
                                        parent[c] = lo_node
                                        pslot[c] = slot
                                        lk += x_lo_flip
                                    elif m < j_hi:
                                        slot = m - km1
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                    elif m <= j_hi_hi:
                                        slot = m - j_hi
                                        hi_nrow[slot] = c
                                        parent[c] = hi_node
                                        pslot[c] = slot
                                        lk += x_hi_flip
                                    else:
                                        slot = m - km2
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                for s in range(sy + 1, k):
                                    c = xrow[s]
                                    if not c:
                                        continue
                                    m = s + km2
                                    if m < j_lo:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    elif m <= j_lo_hi:
                                        slot = m - j_lo
                                        lo_nrow[slot] = c
                                        parent[c] = lo_node
                                        pslot[c] = slot
                                        lk += x_lo_flip
                                    elif m < j_hi:
                                        slot = m - km1
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                    elif m <= j_hi_hi:
                                        slot = m - j_hi
                                        hi_nrow[slot] = c
                                        parent[c] = hi_node
                                        pslot[c] = slot
                                        lk += x_hi_flip
                                    else:
                                        slot = m - km2
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                for t in range(sz):
                                    c = yrow[t]
                                    if not c:
                                        continue
                                    m = sy + t
                                    if m < j_lo:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    elif m <= j_lo_hi:
                                        slot = m - j_lo
                                        lo_nrow[slot] = c
                                        parent[c] = lo_node
                                        pslot[c] = slot
                                        lk += y_lo_flip
                                    elif m < j_hi:
                                        slot = m - km1
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                    elif m <= j_hi_hi:
                                        slot = m - j_hi
                                        hi_nrow[slot] = c
                                        parent[c] = hi_node
                                        pslot[c] = slot
                                        lk += y_hi_flip
                                    else:
                                        slot = m - km2
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                for t in range(sz + 1, k):
                                    c = yrow[t]
                                    if not c:
                                        continue
                                    m = sy + t + km1
                                    if m < j_lo:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    elif m <= j_lo_hi:
                                        slot = m - j_lo
                                        lo_nrow[slot] = c
                                        parent[c] = lo_node
                                        pslot[c] = slot
                                        lk += y_lo_flip
                                    elif m < j_hi:
                                        slot = m - km1
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                    elif m <= j_hi_hi:
                                        slot = m - j_hi
                                        hi_nrow[slot] = c
                                        parent[c] = hi_node
                                        pslot[c] = slot
                                        lk += y_hi_flip
                                    else:
                                        slot = m - km2
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                        lk += 2
                                base = sy + sz
                                for r in range(k):
                                    c = zrow[r]
                                    if not c:
                                        continue
                                    m = base + r
                                    if m < j_lo:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                    elif m <= j_lo_hi:
                                        slot = m - j_lo
                                        lo_nrow[slot] = c
                                        parent[c] = lo_node
                                        pslot[c] = slot
                                        lk += 2
                                    elif m < j_hi:
                                        slot = m - km1
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                                    elif m <= j_hi_hi:
                                        slot = m - j_hi
                                        hi_nrow[slot] = c
                                        parent[c] = hi_node
                                        pslot[c] = slot
                                        lk += 2
                                    else:
                                        slot = m - km2
                                        nzrow[slot] = c
                                        parent[c] = z
                                        pslot[c] = slot
                            else:
                                # ---- Case 2: chain reversed to z -> y -> x.
                                if diff < 0:
                                    lo_pos, hi_pos = pos_x, pos_y
                                else:
                                    lo_pos, hi_pos = pos_y, pos_x
                                j2 = hi_pos - km2 + (km2 - (hi_pos - lo_pos)) // 2
                                j2_lo = hi_pos - km2
                                if j2_lo < 0:
                                    j2_lo = 0
                                j2_hi = km1 if km1 < lo_pos else lo_pos
                                if j2 < j2_lo:
                                    j2 = j2_lo
                                elif j2 > j2_hi:
                                    j2 = j2_hi
                                j2hi = j2 + km2
                                routing_rows[z] = merged[:j2] + merged[j2hi:]
                                pos_x2 = pos_x - j2
                                if pol_center:
                                    j1 = pos_x2 - half
                                elif pol_left:
                                    j1 = pos_x2 - km1
                                else:
                                    j1 = pos_x2
                                lo = pos_x2 - km1
                                if lo < 0:
                                    lo = 0
                                hi = km1 if km1 < pos_x2 else pos_x2
                                if j1 < lo:
                                    j1 = lo
                                elif j1 > hi:
                                    j1 = hi
                                j1hi = j1 + km1
                                a1 = j2 + j1
                                a2 = a1 + km1
                                routing_rows[x] = merged[a1:a2]
                                routing_rows[y] = merged[j2:a1] + merged[a2:j2hi]
                                nzrow[j2] = y
                                parent[y] = z
                                pslot[y] = j2
                                nyrow[j1] = x
                                parent[x] = y
                                pslot[x] = j1
                                for m in range(sy):
                                    c = xrow[m]
                                    if not c:
                                        continue
                                    if m < j2:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    else:
                                        m2 = m - j2
                                        if m2 > km2:
                                            slot = m - km2
                                            nzrow[slot] = c
                                            parent[c] = z
                                            pslot[c] = slot
                                            lk += 2
                                        elif m2 < j1:
                                            nyrow[m2] = c
                                            parent[c] = y
                                            pslot[c] = m2
                                            lk += 2
                                        elif m2 <= j1hi:
                                            slot = m2 - j1
                                            nxrow[slot] = c
                                            parent[c] = x
                                            pslot[c] = slot
                                        else:
                                            slot = m2 - km1
                                            nyrow[slot] = c
                                            parent[c] = y
                                            pslot[c] = slot
                                            lk += 2
                                for s in range(sy + 1, k):
                                    c = xrow[s]
                                    if not c:
                                        continue
                                    m = s + km2
                                    if m < j2:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    else:
                                        m2 = m - j2
                                        if m2 > km2:
                                            slot = m - km2
                                            nzrow[slot] = c
                                            parent[c] = z
                                            pslot[c] = slot
                                            lk += 2
                                        elif m2 < j1:
                                            nyrow[m2] = c
                                            parent[c] = y
                                            pslot[c] = m2
                                            lk += 2
                                        elif m2 <= j1hi:
                                            slot = m2 - j1
                                            nxrow[slot] = c
                                            parent[c] = x
                                            pslot[c] = slot
                                        else:
                                            slot = m2 - km1
                                            nyrow[slot] = c
                                            parent[c] = y
                                            pslot[c] = slot
                                            lk += 2
                                for t in range(sz):
                                    c = yrow[t]
                                    if not c:
                                        continue
                                    m = sy + t
                                    if m < j2:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    else:
                                        m2 = m - j2
                                        if m2 > km2:
                                            slot = m - km2
                                            nzrow[slot] = c
                                            parent[c] = z
                                            pslot[c] = slot
                                            lk += 2
                                        elif m2 < j1:
                                            nyrow[m2] = c
                                            parent[c] = y
                                            pslot[c] = m2
                                        elif m2 <= j1hi:
                                            slot = m2 - j1
                                            nxrow[slot] = c
                                            parent[c] = x
                                            pslot[c] = slot
                                            lk += 2
                                        else:
                                            slot = m2 - km1
                                            nyrow[slot] = c
                                            parent[c] = y
                                            pslot[c] = slot
                                for t in range(sz + 1, k):
                                    c = yrow[t]
                                    if not c:
                                        continue
                                    m = sy + t + km1
                                    if m < j2:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                        lk += 2
                                    else:
                                        m2 = m - j2
                                        if m2 > km2:
                                            slot = m - km2
                                            nzrow[slot] = c
                                            parent[c] = z
                                            pslot[c] = slot
                                            lk += 2
                                        elif m2 < j1:
                                            nyrow[m2] = c
                                            parent[c] = y
                                            pslot[c] = m2
                                        elif m2 <= j1hi:
                                            slot = m2 - j1
                                            nxrow[slot] = c
                                            parent[c] = x
                                            pslot[c] = slot
                                            lk += 2
                                        else:
                                            slot = m2 - km1
                                            nyrow[slot] = c
                                            parent[c] = y
                                            pslot[c] = slot
                                base = sy + sz
                                for r in range(k):
                                    c = zrow[r]
                                    if not c:
                                        continue
                                    m = base + r
                                    if m < j2:
                                        nzrow[m] = c
                                        parent[c] = z
                                        pslot[c] = m
                                    else:
                                        m2 = m - j2
                                        if m2 > km2:
                                            slot = m - km2
                                            nzrow[slot] = c
                                            parent[c] = z
                                            pslot[c] = slot
                                        elif m2 < j1:
                                            nyrow[m2] = c
                                            parent[c] = y
                                            pslot[c] = m2
                                            lk += 2
                                        elif m2 <= j1hi:
                                            slot = m2 - j1
                                            nxrow[slot] = c
                                            parent[c] = x
                                            pslot[c] = slot
                                            lk += 2
                                        else:
                                            slot = m2 - km1
                                            nyrow[slot] = c
                                            parent[c] = y
                                            pslot[c] = slot
                                            lk += 2
                            if grand:
                                child_rows[grand][gslot] = z
                                parent[z] = grand
                                pslot[z] = gslot
                                lk += 2
                            else:
                                parent[z] = 0
                                pslot[z] = -1
                                self.root = z
                            p = grand
                            # ==== end inline splay =====================
                    if final:
                        break
                    climb = v
                    stop = u
                    final = True
                total_rot += rot
                total_l += lk
                if record:
                    routing_series[i] = vdepth[node] + dv
                    rotation_series[i] = rot
        finally:
            self._epoch = epoch
        return total_r, total_rot, total_l

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the flat arrays against every structural invariant.

        Reconstructs an object-engine snapshot and runs the full
        :meth:`~repro.core.tree.KAryTreeNetwork.validate`, then additionally
        checks the flat-specific wiring (``parent``/``pslot`` mirrors of the
        ``child_rows`` array) and the cached subtree ranges (refreshed
        first if a batched serve left them lazily stale).
        """
        if self.parent[self.root] != 0 or self.pslot[self.root] != -1:
            raise InvalidTreeError(f"root {self.root} has parent wiring")
        child_rows, parent, pslot = self.child_rows, self.parent, self.pslot
        seen = 0
        stack = [self.root]
        while stack:
            nid = stack.pop()
            seen += 1
            for slot, c in enumerate(child_rows[nid]):
                if c:
                    if parent[c] != nid or pslot[c] != slot:
                        raise InvalidTreeError(
                            f"node {c}: inconsistent flat parent wiring"
                        )
                    stack.append(c)
        if seen != self.n:
            raise InvalidTreeError(
                f"flat tree reachable from root has {seen} nodes, expected {self.n}"
            )
        self._ensure_ranges()
        snapshot = self.to_tree(validate=True)
        for node in snapshot.root.iter_subtree():
            if (node.smin, node.smax) != (self.smin[node.nid], self.smax[node.nid]):
                raise InvalidTreeError(
                    f"node {node.nid}: flat cached range "
                    f"[{self.smin[node.nid]}, {self.smax[node.nid]}] != true range "
                    f"[{node.smin}, {node.smax}]"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatTree(n={self.n}, k={self.k}, root={self.root})"
