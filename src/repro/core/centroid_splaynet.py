"""(k+1)-SplayNet — the centroid online heuristic (Section 4.2, Figures 7-8).

Two fixed centroid nodes glue ``2k - 1`` independent k-ary SplayNets:

* ``c1`` (the root) has ``k - 1`` SplayNet subtrees plus ``c2``;
* ``c2`` has ``k`` SplayNet subtrees, each of ≈ ``(n-2)/(k+1)`` nodes —
  ``c2`` plays the role of the static centroid, and the ``c1`` side holds
  the remaining ≈ one share split ``k - 1`` ways.

Requests inside one subtree are served exactly as in k-ary SplayNet;
requests across subtrees splay each endpoint to its subtree root and route
``u → c1 → c2 → v``.  The centroids never move and subtree membership never
changes — only the inner SplayNets self-adjust.  For ``k = 2`` this is the
paper's 3-SplayNet (Figure 7, Table 8).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.core.engine import batch_serve
from repro.core.splaynet import KArySplayNet
from repro.errors import InvalidTreeError
from repro.network.protocols import BatchServeResult, ServeResult

__all__ = ["CentroidSplayNet", "centroid_splaynet_layout"]


@dataclass(frozen=True)
class _Block:
    """One SplayNet subtree: global identifiers ``lo..hi`` (inclusive)."""

    lo: int
    hi: int
    attach: int  # 1 = child of c1, 2 = child of c2

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1


def centroid_splaynet_layout(n: int, k: int) -> tuple[int, int, list[_Block]]:
    """Identifier layout: ``(c1, c2, blocks)``.

    Global key order is ``S_1 < … < S_{k-1} < c1 < c2 < T_1 < … < T_k``:
    the ``k - 1`` small subtrees hang off ``c1`` below its identifier and
    the ``k`` big subtrees hang off ``c2`` above its identifier, so the
    whole structure is a valid k-ary search tree.  Shares follow the paper:
    each ``T_j`` gets ≈ ``(n-2)/(k+1)`` nodes and the ``S_i`` split the
    remaining share.
    """
    if n < 2:
        raise InvalidTreeError("(k+1)-SplayNet needs n >= 2")
    rest = n - 2
    big, big_extra = divmod(rest * k // (k + 1), k) if rest else (0, 0)
    big_sizes = [big + (1 if j < big_extra else 0) for j in range(k)]
    small_total = rest - sum(big_sizes)
    small, small_extra = divmod(small_total, k - 1) if k > 1 else (0, 0)
    small_sizes = [small + (1 if j < small_extra else 0) for j in range(k - 1)]

    blocks: list[_Block] = []
    cursor = 1
    for size in small_sizes:
        if size > 0:
            blocks.append(_Block(cursor, cursor + size - 1, attach=1))
        cursor += size
    c1 = cursor
    c2 = cursor + 1
    cursor += 2
    for size in big_sizes:
        if size > 0:
            blocks.append(_Block(cursor, cursor + size - 1, attach=2))
        cursor += size
    assert cursor == n + 1
    return c1, c2, blocks


class CentroidSplayNet:
    """The paper's (k+1)-SplayNet online self-adjusting network.

    Parameters
    ----------
    n:
        Number of nodes.  The two centroids are placed mid-keyspace by
        :func:`centroid_splaynet_layout`.
    k:
        Arity of the inner k-ary SplayNets (``k = 2`` gives 3-SplayNet).
    initial, policy, engine:
        Passed through to every inner :class:`KArySplayNet`.
    """

    def __init__(
        self,
        n: int,
        k: int = 2,
        *,
        initial: str = "complete",
        policy: str = "center",
        engine: Optional[str] = None,
    ) -> None:
        self.c1, self.c2, self._blocks = centroid_splaynet_layout(n, k)
        self._n = n
        self._k = k
        self.policy = policy
        self.subnets = [
            KArySplayNet(
                block.size, k, initial=initial, policy=policy, engine=engine
            )
            for block in self._blocks
        ]
        self.engine = self.subnets[0].engine if self.subnets else "object"
        self._block_los = [block.lo for block in self._blocks]

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    def locate(self, u: int) -> int:
        """Index of the block containing ``u``; -1 for the centroids."""
        if u == self.c1 or u == self.c2:
            return -1
        if not 1 <= u <= self._n:
            raise InvalidTreeError(f"identifier {u} out of range 1..{self._n}")
        idx = bisect_right(self._block_los, u) - 1
        block = self._blocks[idx]
        assert block.lo <= u <= block.hi
        return idx

    def _position(self, u: int) -> tuple[int, int]:
        """``(attach, arm)``: which centroid ``u`` hangs under and how far.

        ``arm`` is the hop count from ``u`` up to that centroid (0 for the
        centroids themselves, with ``attach`` = their own side).
        """
        if u == self.c1:
            return 1, 0
        if u == self.c2:
            return 2, 0
        idx = self.locate(u)
        block = self._blocks[idx]
        subnet = self.subnets[idx]
        depth = subnet.depth(u - block.lo + 1)
        return block.attach, depth + 1

    def distance(self, u: int, v: int) -> int:
        """Tree distance in the current (global) topology."""
        if u == v:
            return 0
        iu, iv = self.locate(u), self.locate(v)
        if iu == iv and iu >= 0:
            block = self._blocks[iu]
            return self.subnets[iu].distance(u - block.lo + 1, v - block.lo + 1)
        au, du = self._position(u)
        av, dv = self._position(v)
        return du + dv + (1 if au != av else 0)

    # ------------------------------------------------------------------
    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        """Serve one request, returning ``(routing, rotations, links)``."""
        if u == v:
            return 0, 0, 0
        iu, iv = self.locate(u), self.locate(v)
        if iu == iv and iu >= 0:
            block = self._blocks[iu]
            return self.subnets[iu]._serve_totals(
                u - block.lo + 1, v - block.lo + 1
            )
        routing_cost = self.distance(u, v)
        rotations = 0
        links = 0
        for idx, endpoint in ((iu, u), (iv, v)):
            if idx < 0:
                continue  # centroids stay put
            block = self._blocks[idx]
            r, l = self.subnets[idx].splay_to_root(endpoint - block.lo + 1)
            rotations += r
            links += l
        return routing_cost, rotations, links

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve ``(u, v)`` per Section 4.2.

        Same-subtree requests delegate to that subtree's k-ary SplayNet;
        cross-subtree requests splay both endpoints to their subtree roots
        (the centroids never move).  Routing cost is measured on the
        topology in place when the request arrived, as everywhere else.
        """
        return ServeResult(*self._serve_totals(u, v))

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """Serve a whole request batch; returns accumulated cost totals.

        Skips per-request :class:`ServeResult` construction; series arrays
        are only built when ``record_series`` is set.
        """
        return batch_serve(
            self._serve_totals, sources, targets, record_series=record_series
        )

    # ------------------------------------------------------------------
    def snapshot_state(self):
        """Checkpoint: the tuple of inner SplayNet states (blocks are fixed)."""
        return tuple(subnet.snapshot_state() for subnet in self.subnets)

    def restore_state(self, state) -> None:
        """Rewind every inner SplayNet to a :meth:`snapshot_state` tuple."""
        if len(state) != len(self.subnets):
            raise InvalidTreeError(
                f"snapshot has {len(state)} blocks, network has"
                f" {len(self.subnets)}"
            )
        for subnet, sub_state in zip(self.subnets, state):
            subnet.restore_state(sub_state)

    def validate(self) -> None:
        """Validate every inner SplayNet and the block layout."""
        covered = 2  # the centroids
        for block, subnet in zip(self._blocks, self.subnets):
            subnet.validate()
            if subnet.n != block.size:
                raise InvalidTreeError("subnet size drifted from its block")
            covered += block.size
        if covered != self._n:
            raise InvalidTreeError(
                f"blocks + centroids cover {covered} identifiers, expected {self._n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CentroidSplayNet(n={self._n}, k={self._k},"
            f" c1={self.c1}, c2={self.c2}, blocks={len(self._blocks)})"
        )
