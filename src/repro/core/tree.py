"""The k-ary search tree network container.

:class:`KAryTreeNetwork` owns the node index of one network, provides
distance/LCA/path queries, greedy local routing, structural validation and
export utilities.  Rotations (see :mod:`repro.core.rotations`) mutate the node
graph in place; the container's only rotation-sensitive state is the root
pointer, which rotation helpers update through :meth:`replace_root`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.keyspace import NEG_INF, POS_INF, Interval, is_identifier_value
from repro.core.node import KAryNode
from repro.errors import InvalidTreeError, RoutingError

__all__ = ["KAryTreeNetwork"]


class KAryTreeNetwork:
    """A network of ``n`` nodes arranged as a k-ary search tree.

    Identifiers must form the contiguous range ``1..n`` (the paper's model);
    the constructor indexes the subtree hanging from ``root`` and verifies
    the identifier set.

    Parameters
    ----------
    k:
        Arity; every node has at most ``k`` children and a routing array of
        ``k - 1`` separators.
    root:
        Root node of an already-wired node graph.
    validate:
        If true (default), run a full structural validation on construction.
    """

    __slots__ = ("k", "root", "routing_based", "_index")

    def __init__(
        self,
        k: int,
        root: KAryNode,
        *,
        validate: bool = True,
        routing_based: bool = False,
    ) -> None:
        if k < 2:
            raise InvalidTreeError(f"arity k must be >= 2, got {k}")
        self.k = k
        self.root = root
        #: Routing-based trees (Definition 1(ii)) carry node identifiers
        #: inside routing arrays; they are static-only (rotations assume
        #: identifier-free separators).
        self.routing_based = routing_based
        self._index: dict[int, KAryNode] = {}
        for node in root.iter_subtree():
            if node.nid in self._index:
                raise InvalidTreeError(f"duplicate identifier {node.nid}")
            self._index[node.nid] = node
        n = len(self._index)
        if sorted(self._index) != list(range(1, n + 1)):
            raise InvalidTreeError(
                "identifiers must form the contiguous range 1..n; got "
                f"{sorted(self._index)[:5]}..."
            )
        self.refresh_ranges()
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of network nodes."""
        return len(self._index)

    @property
    def root_id(self) -> int:
        """Identifier of the current root node."""
        return self.root.nid

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, nid: int) -> bool:
        return nid in self._index

    def node(self, nid: int) -> KAryNode:
        """The node carrying identifier ``nid``."""
        try:
            return self._index[nid]
        except KeyError:
            raise InvalidTreeError(f"no node with identifier {nid}") from None

    def iter_nodes(self) -> Iterator[KAryNode]:
        """Iterate nodes in identifier order."""
        for nid in range(1, self.n + 1):
            yield self._index[nid]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(parent_id, child_id)`` pairs."""
        for node in self.root.iter_subtree():
            for child in node.child_iter():
                yield (node.nid, child.nid)

    def edge_set(self) -> frozenset[tuple[int, int]]:
        """The set of undirected edges, normalized as ``(min, max)`` pairs."""
        return frozenset(
            (a, b) if a < b else (b, a) for a, b in self.iter_edges()
        )

    def replace_root(self, new_root: KAryNode) -> None:
        """Update the root pointer after a rotation displaced the old root."""
        if new_root.parent is not None:
            raise InvalidTreeError(
                f"node {new_root.nid} still has a parent; cannot be root"
            )
        self.root = new_root

    # ------------------------------------------------------------------
    # distance / LCA / paths
    # ------------------------------------------------------------------
    def depth(self, nid: int) -> int:
        """Depth of node ``nid`` (root has depth 0)."""
        node = self.node(nid)
        d = 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def lca(self, u: int, v: int) -> tuple[KAryNode, int, int]:
        """Lowest common ancestor of ``u`` and ``v``.

        Returns ``(lca_node, du, dv)`` where ``du``/``dv`` are the distances
        from ``u``/``v`` up to the LCA.  Runs in O(depth) by parent walks.
        """
        nu, nv = self.node(u), self.node(v)
        du_total, dv_total = 0, 0
        node = nu
        while node.parent is not None:
            node = node.parent
            du_total += 1
        node = nv
        while node.parent is not None:
            node = node.parent
            dv_total += 1
        a, b = nu, nv
        da, db = du_total, dv_total
        while da > db:
            a = a.parent  # type: ignore[assignment]
            da -= 1
        while db > da:
            b = b.parent  # type: ignore[assignment]
            db -= 1
        while a is not b:
            a = a.parent  # type: ignore[assignment]
            b = b.parent  # type: ignore[assignment]
            da -= 1
            db -= 1
        return a, du_total - da, dv_total - db

    def distance(self, u: int, v: int) -> int:
        """Tree distance (in edges) between identifiers ``u`` and ``v``."""
        if u == v:
            return 0
        _, du, dv = self.lca(u, v)
        return du + dv

    def path(self, u: int, v: int) -> list[int]:
        """The identifier sequence of the unique ``u``–``v`` tree path."""
        lca_node, du, _ = self.lca(u, v)
        up: list[int] = []
        node = self.node(u)
        for _ in range(du):
            up.append(node.nid)
            node = node.parent  # type: ignore[assignment]
        down: list[int] = []
        node = self.node(v)
        while node is not lca_node:
            down.append(node.nid)
            node = node.parent  # type: ignore[assignment]
        return up + [lca_node.nid] + down[::-1]

    # ------------------------------------------------------------------
    # greedy local routing
    # ------------------------------------------------------------------
    def local_route(self, u: int, v: int, *, max_hops: Optional[int] = None) -> list[int]:
        """Route from ``u`` to ``v`` using only local information.

        Each hop inspects the current node's subtree ranges: if the target
        lies in the ``[smin, smax]`` range of an unexplored child, descend;
        otherwise go to the parent.  The packet carries a set of exhausted
        subtree roots so a range *false positive* cannot loop.

        False positives are a structural fact of non-routing-based k-ary
        search trees, not an implementation artifact: rotations make subtree
        identifier sets non-contiguous, and an *ancestor's* identifier can
        fall inside a descendant range gap, where no interval rule can
        locally rule it out.  (Routing-based trees are immune — every
        ancestor identifier is a separator, hence a window *endpoint* of all
        its descendants — but Remark 11 shows self-adjusting trees cannot
        stay routing-based.)  On trees whose subtrees are contiguous
        segments (everything the builders produce) the route equals the
        unique tree path; after rotations it may backtrack, but each edge is
        traversed at most twice, so the hop count stays below ``2 n``.
        """
        if max_hops is None:
            max_hops = 4 * self.n + 4
        node = self.node(u)
        self.node(v)  # existence check
        hops = [node.nid]
        exhausted: set[int] = set()
        while node.nid != v:
            if len(hops) > max_hops:
                raise RoutingError(
                    f"local routing from {u} to {v} exceeded {max_hops} hops"
                )
            nxt: Optional[KAryNode] = None
            if node.smin <= v <= node.smax:
                for child in node.children:
                    if (
                        child is not None
                        and child.smin <= v <= child.smax
                        and child.nid not in exhausted
                    ):
                        nxt = child
                        break
            if nxt is None:
                exhausted.add(node.nid)
                nxt = node.parent
            if nxt is None:
                raise RoutingError(
                    f"local routing from {u} to {v} stuck at root {node.nid}"
                )
            node = nxt
            hops.append(node.nid)
        return hops

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def refresh_ranges(self) -> None:
        """Recompute every node's ``smin``/``smax`` bottom-up (O(n))."""
        order = list(self.root.iter_subtree())
        for node in reversed(order):
            node.recompute_range()

    def validate(self) -> None:
        """Check every structural invariant; raise :class:`InvalidTreeError`.

        Checked invariants:

        1. the root has no parent, every other node's parent/pslot wiring is
           mutually consistent;
        2. every routing array is sorted, duplicate-free, has exactly
           ``k - 1`` finite non-identifier separators, and lies strictly
           inside the node's ancestor window;
        3. each child's subtree identifier range lies strictly inside the
           open interval of the slot it occupies (the search property);
        4. every node's identifier lies strictly inside its ancestor window;
        5. ``smin``/``smax`` equal the true subtree ranges.
        """
        if self.root.parent is not None:
            raise InvalidTreeError("root has a parent")
        k = self.k
        seen = 0
        stack: list[tuple[KAryNode, float, float]] = [(self.root, NEG_INF, POS_INF)]
        while stack:
            node, wlo, whi = stack.pop()
            seen += 1
            r = node.routing
            if len(r) != k - 1:
                raise InvalidTreeError(
                    f"node {node.nid}: routing array has {len(r)} entries, "
                    f"expected {k - 1}"
                )
            if len(node.children) != k:
                raise InvalidTreeError(
                    f"node {node.nid}: children list has {len(node.children)}"
                    f" slots, expected {k}"
                )
            prev = wlo
            for value in r:
                if not prev < value:
                    raise InvalidTreeError(
                        f"node {node.nid}: routing array {r} not strictly "
                        f"increasing inside window ({wlo}, {whi})"
                    )
                if is_identifier_value(value) and not self.routing_based:
                    raise InvalidTreeError(
                        f"node {node.nid}: separator {value} collides with the"
                        " identifier lattice"
                    )
                prev = value
            if not prev < whi:
                raise InvalidTreeError(
                    f"node {node.nid}: routing array {r} escapes window"
                    f" ({wlo}, {whi})"
                )
            if not wlo < node.nid < whi:
                raise InvalidTreeError(
                    f"node {node.nid}: identifier outside window ({wlo}, {whi})"
                )
            smin = smax = node.nid
            for slot, child in enumerate(node.children):
                if child is None:
                    continue
                if child.parent is not node or child.pslot != slot:
                    raise InvalidTreeError(
                        f"node {child.nid}: inconsistent parent wiring"
                    )
                slo = r[slot - 1] if slot > 0 else wlo
                shi = r[slot] if slot < k - 1 else whi
                if not (slo < child.smin and child.smax < shi):
                    raise InvalidTreeError(
                        f"node {node.nid}: child {child.nid} (range "
                        f"[{child.smin}, {child.smax}]) escapes slot {slot} "
                        f"interval ({slo}, {shi})"
                    )
                smin = min(smin, child.smin)
                smax = max(smax, child.smax)
                stack.append((child, slo, shi))
            if (smin, smax) != (node.smin, node.smax):
                raise InvalidTreeError(
                    f"node {node.nid}: cached range [{node.smin}, {node.smax}]"
                    f" != true range [{smin}, {smax}]"
                )
        if seen != self.n:
            raise InvalidTreeError(
                f"tree reachable from root has {seen} nodes, index has {self.n}"
            )

    def window_of(self, nid: int) -> Interval:
        """The ancestor window (allowed identifier interval) of ``nid``."""
        node = self.node(nid)
        lo, hi = NEG_INF, POS_INF
        while node.parent is not None:
            parent = node.parent
            slot = node.pslot
            r = parent.routing
            if slot > 0:
                lo = max(lo, r[slot - 1])
            if slot < len(r):
                hi = min(hi, r[slot])
            node = parent
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # export / inspection
    # ------------------------------------------------------------------
    def depths(self) -> dict[int, int]:
        """Depth of every node, computed in one O(n) traversal."""
        out = {self.root.nid: 0}
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            for child in node.child_iter():
                out[child.nid] = d + 1
                stack.append((child, d + 1))
        return out

    def parents(self) -> dict[int, int]:
        """Map from each non-root identifier to its parent identifier."""
        return {
            child.nid: node.nid
            for node in self.root.iter_subtree()
            for child in node.child_iter()
        }

    def height(self) -> int:
        """Longest root-to-leaf path, in edges."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for child in node.child_iter():
                stack.append((child, d + 1))
        return best

    def to_networkx(self):
        """Export the topology as a :class:`networkx.Graph`."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(1, self.n + 1))
        g.add_edges_from(self.iter_edges())
        return g

    def render(self, *, max_nodes: int = 200) -> str:
        """An indented ASCII rendering of the tree (for small trees)."""
        if self.n > max_nodes:
            return f"<KAryTreeNetwork n={self.n} k={self.k} (too large to render)>"
        lines: list[str] = []

        def visit(node: KAryNode, depth: int) -> None:
            lines.append(
                "  " * depth
                + f"{node.nid} r={['%g' % v for v in node.routing]}"
            )
            for child in node.child_iter():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def clone(self) -> "KAryTreeNetwork":
        """A deep copy of the network (fresh node objects, same layout)."""
        mapping: dict[int, KAryNode] = {}
        for node in self.root.iter_subtree():
            twin = KAryNode(node.nid, self.k)
            twin.routing = list(node.routing)
            twin.smin, twin.smax = node.smin, node.smax
            mapping[node.nid] = twin
        for node in self.root.iter_subtree():
            twin = mapping[node.nid]
            for slot, child in enumerate(node.children):
                if child is not None:
                    twin.attach_child(mapping[child.nid], slot)
        return KAryTreeNetwork(
            self.k,
            mapping[self.root.nid],
            validate=False,
            routing_based=self.routing_based,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KAryTreeNetwork(n={self.n}, k={self.k}, root={self.root.nid})"


def subtree_identifiers(node: KAryNode) -> Iterable[int]:
    """All identifiers in ``node``'s subtree (test helper)."""
    return (member.nid for member in node.iter_subtree())
