"""Tree-engine selection for the self-adjusting networks.

The library ships three interchangeable backends for the k-ary search tree
hot loop:

* ``"object"`` — the original pointer-linked :class:`~repro.core.node.KAryNode`
  graph.  Every node is a Python object; rotations rewire attributes.  This
  backend is the reference implementation: it carries the paranoid
  per-rotation invariant checks used by the test suite and is the natural
  representation for structural inspection, rendering and export.
* ``"flat"`` — the structure-of-arrays engine in :mod:`repro.core.flat`.
  All node state lives in preallocated flat arrays indexed by node
  identifier (``parent``, ``pslot``, ``children[nid*k + slot]``,
  ``routing[nid*(k-1) + j]``, ``smin``, ``smax``) and the k-splay /
  k-semi-splay rotations are reimplemented as index arithmetic, which
  removes per-request attribute lookups, helper-call overhead and
  intermediate object allocation from the serve loop.
* ``"native"`` — the compiled C kernel behind :mod:`repro.core.native`:
  the same flat layout, with the batched serve loop executed by
  ``src/repro/core/_native/kernel.c`` (built on demand with the local C
  toolchain).  When no toolchain is available the engine degrades to
  ``"flat"`` with a one-time warning, so ``engine="native"`` is always
  safe to request.

All backends are kept *structurally equivalent*: on the same request
sequence they produce identical topologies and identical cost totals
(enforced by ``tests/test_flat_engine.py`` and
``tests/test_native_engine.py``).

Networks accept an ``engine=`` keyword (threaded through
:class:`~repro.core.splaynet.KArySplayNet` and
:class:`~repro.core.centroid_splaynet.CentroidSplayNet`); ``None`` falls
back to the process-wide default, which is ``"object"`` unless overridden
by the ``REPRO_ENGINE`` environment variable or
:func:`set_default_engine`.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

import numpy as np

from repro.errors import EngineError

__all__ = [
    "ENGINES",
    "best_available_engine",
    "default_engine",
    "engine_tree_class",
    "native_available",
    "set_default_engine",
    "resolve_engine",
    "as_request_lists",
    "as_request_arrays",
    "accumulate_serve_totals",
    "batch_serve",
]

#: The available tree-engine backends.
ENGINES = ("object", "flat", "native")

_default_engine = os.environ.get("REPRO_ENGINE", "object")

_native_fallback_warned = False


def native_available() -> bool:
    """Whether the compiled serve kernel can be used in this process.

    True once :mod:`repro.core._native` has compiled (or loaded a cached)
    shared library; False when ``REPRO_NATIVE=0`` or no C toolchain is
    present (the failure reason is in ``repro.core._native.build_error()``).
    """
    from repro.core import _native

    return _native.available()


def best_available_engine() -> str:
    """The fastest tree engine usable in this process.

    ``"native"`` when the compiled kernel is available, else ``"flat"``.
    The examples and benchmarks route their default engine choice through
    here so they automatically pick up the kernel where it exists.
    """
    return "native" if native_available() else "flat"


def _warn_native_unavailable() -> None:
    global _native_fallback_warned
    if _native_fallback_warned:
        return
    _native_fallback_warned = True
    from repro.core import _native

    warnings.warn(
        "engine='native' requested but the compiled serve kernel is"
        f" unavailable ({_native.build_error()}); falling back to the"
        " pure-Python 'flat' engine",
        RuntimeWarning,
        stacklevel=3,
    )


def default_engine() -> str:
    """The process-wide default engine (``REPRO_ENGINE`` or ``"object"``).

    Validated lazily (not at import time) so a misconfigured environment
    variable surfaces as a catchable :class:`EngineError` at the call site
    instead of breaking ``import repro``.
    """
    if _default_engine not in ENGINES:
        raise EngineError(
            f"REPRO_ENGINE={_default_engine!r} is not one of {ENGINES}"
        )
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine for networks built afterwards."""
    global _default_engine
    if name not in ENGINES:
        raise EngineError(f"unknown engine {name!r}; choose from {ENGINES}")
    _default_engine = name


def resolve_engine(name: Optional[str]) -> str:
    """Validate an ``engine=`` argument; ``None`` means the default.

    ``"native"`` degrades gracefully: when the compiled kernel cannot be
    built or loaded in this process the resolution is ``"flat"`` (the
    structurally-identical pure-Python engine) and a ``RuntimeWarning``
    is emitted once per process.
    """
    if name is None:
        name = default_engine()
    elif name not in ENGINES:
        raise EngineError(f"unknown engine {name!r}; choose from {ENGINES}")
    if name == "native" and not native_available():
        _warn_native_unavailable()
        return "flat"
    return name


def engine_tree_class(name: str):
    """The :class:`~repro.core.flat.FlatTree` subclass behind an engine.

    Valid for the array-backed engines only (``"flat"`` / ``"native"``);
    the object engine has no flat backing class.  Imported lazily — the
    flat modules import helpers from here at load time.
    """
    if name == "flat":
        from repro.core.flat import FlatTree

        return FlatTree
    if name == "native":
        from repro.core.native import NativeTree

        return NativeTree
    raise EngineError(
        f"engine {name!r} has no flat tree class (choose 'flat' or 'native')"
    )


def as_request_lists(sources, targets=None) -> tuple[list[int], list[int]]:
    """Normalize batched-serve input to two parallel Python int lists.

    Accepts ``(sources, targets)`` as NumPy arrays / sequences, or a single
    :class:`~repro.workloads.trace.Trace`-like object (anything exposing
    ``sources``/``targets``) in the first position.  Plain int lists are the
    fastest thing to iterate in the pure-Python serve loop, so the
    conversion happens once here instead of per request.
    """
    if targets is None:
        trace_sources = getattr(sources, "sources", None)
        if trace_sources is None:
            raise EngineError(
                "serve_trace needs (sources, targets) arrays or a Trace"
            )
        sources, targets = trace_sources, sources.targets
    src = sources.tolist() if hasattr(sources, "tolist") else list(sources)
    dst = targets.tolist() if hasattr(targets, "tolist") else list(targets)
    if len(src) != len(dst):
        raise EngineError(
            f"sources/targets length mismatch: {len(src)} != {len(dst)}"
        )
    return src, dst


def as_request_arrays(sources, targets=None) -> tuple[np.ndarray, np.ndarray]:
    """Normalize batched-serve input to two parallel NumPy int64 arrays.

    The vectorized counterpart of :func:`as_request_lists`, for networks
    whose batch path stays in NumPy (static trees, lazy rebuilding).
    """
    if targets is None:
        trace_sources = getattr(sources, "sources", None)
        if trace_sources is None:
            raise EngineError(
                "serve_trace needs (sources, targets) arrays or a Trace"
            )
        sources, targets = trace_sources, sources.targets
    us = np.asarray(sources, dtype=np.int64)
    vs = np.asarray(targets, dtype=np.int64)
    if us.ndim != 1 or us.shape != vs.shape:
        raise EngineError(
            f"sources/targets must be equal-length 1-D arrays;"
            f" got shapes {us.shape} and {vs.shape}"
        )
    return us, vs


def accumulate_serve_totals(
    serve_totals,
    sources,
    targets,
    routing_series=None,
    rotation_series=None,
) -> tuple[int, int, int]:
    """Accumulate a scalar serving callable over a request batch.

    ``serve_totals(u, v)`` must return ``(routing, rotations, links)``
    tuples; the optional series buffers are filled per request.  This is
    the shared fallback loop behind every network's ``serve_trace`` when
    no fully-inlined batch path applies.
    """
    total_r = total_rot = total_l = 0
    if routing_series is not None:
        for i in range(len(sources)):
            r, ro, l = serve_totals(sources[i], targets[i])
            total_r += r
            total_rot += ro
            total_l += l
            routing_series[i] = r
            rotation_series[i] = ro
    else:
        for u, v in zip(sources, targets):
            r, ro, l = serve_totals(u, v)
            total_r += r
            total_rot += ro
            total_l += l
    return total_r, total_rot, total_l


def batch_serve(serve_totals, sources, targets=None, *, record_series=False):
    """The generic ``serve_trace`` body: accumulate a scalar serving core.

    Wraps :func:`as_request_lists` + :func:`accumulate_serve_totals` +
    result packing, so networks whose batch path is "loop the scalar core"
    share one implementation.  Returns a
    :class:`~repro.network.protocols.BatchServeResult`.
    """
    from repro.network.protocols import BatchServeResult

    src, dst = as_request_lists(sources, targets)
    m = len(src)
    routing_series = rotation_series = None
    if record_series:
        routing_series = np.empty(m, dtype=np.int64)
        rotation_series = np.empty(m, dtype=np.int64)
    totals = accumulate_serve_totals(
        serve_totals, src, dst, routing_series, rotation_series
    )
    return BatchServeResult(
        m, totals[0], totals[1], totals[2], routing_series, rotation_series
    )
