"""Tree-engine selection for the self-adjusting networks.

The library ships two interchangeable backends for the k-ary search tree
hot loop:

* ``"object"`` — the original pointer-linked :class:`~repro.core.node.KAryNode`
  graph.  Every node is a Python object; rotations rewire attributes.  This
  backend is the reference implementation: it carries the paranoid
  per-rotation invariant checks used by the test suite and is the natural
  representation for structural inspection, rendering and export.
* ``"flat"`` — the structure-of-arrays engine in :mod:`repro.core.flat`.
  All node state lives in preallocated flat arrays indexed by node
  identifier (``parent``, ``pslot``, ``children[nid*k + slot]``,
  ``routing[nid*(k-1) + j]``, ``smin``, ``smax``) and the k-splay /
  k-semi-splay rotations are reimplemented as index arithmetic, which
  removes per-request attribute lookups, helper-call overhead and
  intermediate object allocation from the serve loop.  The two engines are
  kept *structurally equivalent*: on the same request sequence they produce
  identical topologies and identical cost totals (enforced by
  ``tests/test_flat_engine.py``).

Networks accept an ``engine=`` keyword (threaded through
:class:`~repro.core.splaynet.KArySplayNet` and
:class:`~repro.core.centroid_splaynet.CentroidSplayNet`); ``None`` falls
back to the process-wide default, which is ``"object"`` unless overridden
by the ``REPRO_ENGINE`` environment variable or
:func:`set_default_engine`.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.errors import EngineError

__all__ = [
    "ENGINES",
    "default_engine",
    "set_default_engine",
    "resolve_engine",
    "as_request_lists",
    "as_request_arrays",
    "accumulate_serve_totals",
    "batch_serve",
]

#: The available tree-engine backends.
ENGINES = ("object", "flat")

_default_engine = os.environ.get("REPRO_ENGINE", "object")


def default_engine() -> str:
    """The process-wide default engine (``REPRO_ENGINE`` or ``"object"``).

    Validated lazily (not at import time) so a misconfigured environment
    variable surfaces as a catchable :class:`EngineError` at the call site
    instead of breaking ``import repro``.
    """
    if _default_engine not in ENGINES:
        raise EngineError(
            f"REPRO_ENGINE={_default_engine!r} is not one of {ENGINES}"
        )
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine for networks built afterwards."""
    global _default_engine
    if name not in ENGINES:
        raise EngineError(f"unknown engine {name!r}; choose from {ENGINES}")
    _default_engine = name


def resolve_engine(name: Optional[str]) -> str:
    """Validate an ``engine=`` argument; ``None`` means the default."""
    if name is None:
        return default_engine()
    if name not in ENGINES:
        raise EngineError(f"unknown engine {name!r}; choose from {ENGINES}")
    return name


def as_request_lists(sources, targets=None) -> tuple[list[int], list[int]]:
    """Normalize batched-serve input to two parallel Python int lists.

    Accepts ``(sources, targets)`` as NumPy arrays / sequences, or a single
    :class:`~repro.workloads.trace.Trace`-like object (anything exposing
    ``sources``/``targets``) in the first position.  Plain int lists are the
    fastest thing to iterate in the pure-Python serve loop, so the
    conversion happens once here instead of per request.
    """
    if targets is None:
        trace_sources = getattr(sources, "sources", None)
        if trace_sources is None:
            raise EngineError(
                "serve_trace needs (sources, targets) arrays or a Trace"
            )
        sources, targets = trace_sources, sources.targets
    src = sources.tolist() if hasattr(sources, "tolist") else list(sources)
    dst = targets.tolist() if hasattr(targets, "tolist") else list(targets)
    if len(src) != len(dst):
        raise EngineError(
            f"sources/targets length mismatch: {len(src)} != {len(dst)}"
        )
    return src, dst


def as_request_arrays(sources, targets=None) -> tuple[np.ndarray, np.ndarray]:
    """Normalize batched-serve input to two parallel NumPy int64 arrays.

    The vectorized counterpart of :func:`as_request_lists`, for networks
    whose batch path stays in NumPy (static trees, lazy rebuilding).
    """
    if targets is None:
        trace_sources = getattr(sources, "sources", None)
        if trace_sources is None:
            raise EngineError(
                "serve_trace needs (sources, targets) arrays or a Trace"
            )
        sources, targets = trace_sources, sources.targets
    us = np.asarray(sources, dtype=np.int64)
    vs = np.asarray(targets, dtype=np.int64)
    if us.ndim != 1 or us.shape != vs.shape:
        raise EngineError(
            f"sources/targets must be equal-length 1-D arrays;"
            f" got shapes {us.shape} and {vs.shape}"
        )
    return us, vs


def accumulate_serve_totals(
    serve_totals,
    sources,
    targets,
    routing_series=None,
    rotation_series=None,
) -> tuple[int, int, int]:
    """Accumulate a scalar serving callable over a request batch.

    ``serve_totals(u, v)`` must return ``(routing, rotations, links)``
    tuples; the optional series buffers are filled per request.  This is
    the shared fallback loop behind every network's ``serve_trace`` when
    no fully-inlined batch path applies.
    """
    total_r = total_rot = total_l = 0
    if routing_series is not None:
        for i in range(len(sources)):
            r, ro, l = serve_totals(sources[i], targets[i])
            total_r += r
            total_rot += ro
            total_l += l
            routing_series[i] = r
            rotation_series[i] = ro
    else:
        for u, v in zip(sources, targets):
            r, ro, l = serve_totals(u, v)
            total_r += r
            total_rot += ro
            total_l += l
    return total_r, total_rot, total_l


def batch_serve(serve_totals, sources, targets=None, *, record_series=False):
    """The generic ``serve_trace`` body: accumulate a scalar serving core.

    Wraps :func:`as_request_lists` + :func:`accumulate_serve_totals` +
    result packing, so networks whose batch path is "loop the scalar core"
    share one implementation.  Returns a
    :class:`~repro.network.protocols.BatchServeResult`.
    """
    from repro.network.protocols import BatchServeResult

    src, dst = as_request_lists(sources, targets)
    m = len(src)
    routing_series = rotation_series = None
    if record_series:
        routing_series = np.empty(m, dtype=np.int64)
        rotation_series = np.empty(m, dtype=np.int64)
    totals = accumulate_serve_totals(
        serve_totals, src, dst, routing_series, rotation_series
    )
    return BatchServeResult(
        m, totals[0], totals[1], totals[2], routing_series, rotation_series
    )
