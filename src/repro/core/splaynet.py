"""k-ary SplayNet — the paper's first online self-adjusting network.

``KArySplayNet`` generalizes SplayNet [22] to arity ``k``: on a request
``(u, v)`` it finds the lowest common ancestor ``w`` of the endpoints, splays
``u`` into ``w``'s position using the ``k-splay``/``k-semi-splay`` rotations,
then splays ``v`` up to a child of ``u``, so the pair ends up adjacent and
repeated requests cost 1.  For ``k = 2`` this reproduces standard SplayNet
behaviour (the paper's "2-ary SplayNet").

The routing cost charged for a request is the endpoint distance in the
topology *before* the adjustment; rotations and link churn are reported
separately (see :class:`repro.network.protocols.ServeResult`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.builders import (
    build_balanced_tree,
    build_complete_tree,
    build_random_tree,
)
from repro.core.rotations import BLOCK_POLICIES, splay_step
from repro.core.splay import splay_until
from repro.core.tree import KAryTreeNetwork
from repro.errors import InvalidTreeError, RotationError
from repro.network.protocols import ServeResult

__all__ = ["KArySplayNet"]

_INITIAL_BUILDERS = {
    "complete": build_complete_tree,
    "balanced": build_balanced_tree,
}


class KArySplayNet:
    """An online self-adjusting k-ary search tree network.

    Parameters
    ----------
    n:
        Number of network nodes (identifiers ``1..n``).
    k:
        Arity (``k >= 2``; ``k = 2`` is standard SplayNet re-expressed with
        separate routing arrays).
    initial:
        Initial topology: ``"complete"`` (default), ``"balanced"``,
        ``"random"``, or an explicit :class:`KAryTreeNetwork` to adopt.
    policy:
        Block-selection policy for rotations (see
        :data:`repro.core.rotations.BLOCK_POLICIES`).
    splay_depth:
        Levels climbed per transformation: 2 = the paper's k-splay
        discipline (default); >2 uses the generalized d-node rotation
        (Section 4.1's closing remark; see the deep-splay ablation bench).
    seed:
        Seed for the ``"random"`` initial topology.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        k: int = 2,
        *,
        initial: "str | KAryTreeNetwork" = "complete",
        policy: str = "center",
        splay_depth: int = 2,
        seed: Optional[int] = None,
    ) -> None:
        if policy not in BLOCK_POLICIES:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if splay_depth < 2:
            raise RotationError(f"splay_depth must be >= 2, got {splay_depth}")
        self.policy = policy
        self.splay_depth = splay_depth
        if isinstance(initial, KAryTreeNetwork):
            if n is not None and n != initial.n:
                raise InvalidTreeError(
                    f"n={n} conflicts with provided tree of size {initial.n}"
                )
            if initial.routing_based:
                raise InvalidTreeError(
                    "routing-based trees cannot self-adjust (identifiers double"
                    " as separators); build a non-routing-based initial tree"
                )
            self.tree = initial
        else:
            if n is None:
                raise InvalidTreeError("n is required unless a tree is provided")
            if initial == "random":
                self.tree = build_random_tree(
                    n, k, np.random.default_rng(seed), validate=False
                )
            elif initial in _INITIAL_BUILDERS:
                self.tree = _INITIAL_BUILDERS[initial](n, k, validate=False)
            else:
                raise InvalidTreeError(f"unknown initial topology {initial!r}")
        if isinstance(initial, KAryTreeNetwork) and initial.k != k and n is not None:
            raise InvalidTreeError("arity of provided tree conflicts with k")
        self._k = self.tree.k

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def k(self) -> int:
        return self._k

    def distance(self, u: int, v: int) -> int:
        return self.tree.distance(u, v)

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve request ``(u, v)``: route, then splay the endpoints together.

        After the call (for ``u != v``) the endpoints are adjacent, so a
        burst of repeated requests costs 1 per request — the self-adjusting
        property the paper's experiments exploit on high-locality traces.
        """
        if u == v:
            return ServeResult(0, 0, 0)
        tree = self.tree
        lca, du, dv = tree.lca(u, v)
        routing_cost = du + dv
        node_u = tree.node(u)
        node_v = tree.node(v)
        rotations = 0
        links = 0
        if lca is node_v:
            # v is an ancestor of u: lift u to a child of v.
            rotations, links = splay_until(
                tree, node_u, node_v, policy=self.policy, depth=self.splay_depth
            )
        else:
            if lca is not node_u:
                # Lift u into the LCA's old position (the subtree's root).
                stop = lca.parent
                rotations, links = splay_until(
                    tree, node_u, stop, policy=self.policy, depth=self.splay_depth
                )
            # v is now strictly below u; lift it to a child of u.
            r2, l2 = splay_until(
                tree, node_v, node_u, policy=self.policy, depth=self.splay_depth
            )
            rotations += r2
            links += l2
        return ServeResult(routing_cost, rotations, links)

    def access(self, x: int) -> ServeResult:
        """A splay-*tree* access: search ``x`` from the root, splay it up.

        This is the Theorem 12 setting ("all the routing requests are from
        the root"): the request costs the depth of ``x`` and ``x`` finishes
        as the new root.  A sequence of accesses therefore obeys the splay
        tree's static-optimality bound
        ``O(m + Σ_x n_x log(m / n_x))`` — checked empirically by
        ``bench_theorem12_static_optimality``.
        """
        tree = self.tree
        node = tree.node(x)
        routing_cost = tree.depth(x)
        rotations, links = splay_until(
            tree, node, None, policy=self.policy, depth=self.splay_depth
        )
        return ServeResult(routing_cost, rotations, links)

    def serve_semi(self, u: int, v: int) -> ServeResult:
        """Partially-reactive serving: one splay step per endpoint.

        The spectrum sketched in the paper's introduction runs from fully
        reactive (``serve``) to static; this variant adjusts by exactly one
        transformation per endpoint per request, trading slower adaptation
        for minimal reconfiguration churn.  Unlike ``serve`` it does *not*
        leave the endpoints adjacent.
        """
        if u == v:
            return ServeResult(0, 0, 0)
        tree = self.tree
        _, du, dv = tree.lca(u, v)
        rotations = 0
        links = 0
        for endpoint in (u, v):
            node = tree.node(endpoint)
            if node.parent is None:
                continue
            outcome = splay_step(node, None, policy=self.policy)
            rotations += 1
            links += outcome.links_changed
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
        return ServeResult(du + dv, rotations, links)

    def validate(self) -> None:
        """Full structural validation of the current topology."""
        self.tree.validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KArySplayNet(n={self.n}, k={self.k}, policy={self.policy!r})"
