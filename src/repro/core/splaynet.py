"""k-ary SplayNet — the paper's first online self-adjusting network.

``KArySplayNet`` generalizes SplayNet [22] to arity ``k``: on a request
``(u, v)`` it finds the lowest common ancestor ``w`` of the endpoints, splays
``u`` into ``w``'s position using the ``k-splay``/``k-semi-splay`` rotations,
then splays ``v`` up to a child of ``u``, so the pair ends up adjacent and
repeated requests cost 1.  For ``k = 2`` this reproduces standard SplayNet
behaviour (the paper's "2-ary SplayNet").

The routing cost charged for a request is the endpoint distance in the
topology *before* the adjustment; rotations and link churn are reported
separately (see :class:`repro.network.protocols.ServeResult`).

Two interchangeable backends drive the hot loop (see
:mod:`repro.core.engine`): ``engine="object"`` serves on the pointer-linked
:class:`~repro.core.node.KAryNode` graph, ``engine="flat"`` on the
structure-of-arrays :class:`~repro.core.flat.FlatTree`.  Both produce
identical topologies and cost totals; the flat engine is several times
faster on long traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.builders import (
    build_balanced_tree,
    build_complete_tree,
    build_random_tree,
)
from repro.core.engine import (
    as_request_arrays,
    as_request_lists,
    batch_serve,
    engine_tree_class,
    resolve_engine,
)
from repro.core.flat import FlatTree
from repro.core.rotations import BLOCK_POLICIES, splay_step
from repro.core.splay import splay_until
from repro.core.tree import KAryTreeNetwork
from repro.errors import InvalidTreeError, RotationError
from repro.network.protocols import BatchServeResult, ServeResult

__all__ = ["KArySplayNet"]

_INITIAL_BUILDERS = {
    "complete": build_complete_tree,
    "balanced": build_balanced_tree,
}


class KArySplayNet:
    """An online self-adjusting k-ary search tree network.

    Parameters
    ----------
    n:
        Number of network nodes (identifiers ``1..n``).
    k:
        Arity (``k >= 2``; ``k = 2`` is standard SplayNet re-expressed with
        separate routing arrays).  Defaults to 2 when building an initial
        topology; when an explicit tree is provided its arity is adopted,
        and a ``k`` that conflicts with it is rejected.
    initial:
        Initial topology: ``"complete"`` (default), ``"balanced"``,
        ``"random"``, or an explicit :class:`KAryTreeNetwork` to adopt.
    policy:
        Block-selection policy for rotations (see
        :data:`repro.core.rotations.BLOCK_POLICIES`).
    splay_depth:
        Levels climbed per transformation: 2 = the paper's k-splay
        discipline (default); >2 uses the generalized d-node rotation
        (Section 4.1's closing remark; see the deep-splay ablation bench).
    seed:
        Seed for the ``"random"`` initial topology.
    engine:
        Tree-engine backend, ``"object"``, ``"flat"`` or ``"native"``
        (``None`` = the process default, see :mod:`repro.core.engine`).
        ``"native"`` resolves to ``"flat"`` with a one-time warning when
        the compiled kernel is unavailable.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        k: Optional[int] = None,
        *,
        initial: "str | KAryTreeNetwork" = "complete",
        policy: str = "center",
        splay_depth: int = 2,
        seed: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        if policy not in BLOCK_POLICIES:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if splay_depth < 2:
            raise RotationError(f"splay_depth must be >= 2, got {splay_depth}")
        self.policy = policy
        self.splay_depth = splay_depth
        self.engine = resolve_engine(engine)
        if isinstance(initial, KAryTreeNetwork):
            if n is not None and n != initial.n:
                raise InvalidTreeError(
                    f"n={n} conflicts with provided tree of size {initial.n}"
                )
            if k is not None and k != initial.k:
                raise InvalidTreeError(
                    f"k={k} conflicts with provided tree of arity {initial.k}"
                )
            if initial.routing_based:
                raise InvalidTreeError(
                    "routing-based trees cannot self-adjust (identifiers double"
                    " as separators); build a non-routing-based initial tree"
                )
            tree = initial
        else:
            if n is None:
                raise InvalidTreeError("n is required unless a tree is provided")
            if k is None:
                k = 2
            if initial == "random":
                tree = build_random_tree(
                    n, k, np.random.default_rng(seed), validate=False
                )
            elif initial in _INITIAL_BUILDERS:
                tree = _INITIAL_BUILDERS[initial](n, k, validate=False)
            else:
                raise InvalidTreeError(f"unknown initial topology {initial!r}")
        self._k = tree.k
        if self.engine == "object":
            self._flat: Optional[FlatTree] = None
            self._tree: Optional[KAryTreeNetwork] = tree
        else:
            # "flat" or "native": both are FlatTree layouts; the native
            # subclass swaps the batched serve loop for the C kernel.
            self._flat = engine_tree_class(self.engine).from_tree(tree)
            self._tree = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        if self._flat is not None:
            return self._flat.n
        return self._tree.n

    @property
    def k(self) -> int:
        return self._k

    @property
    def tree(self) -> KAryTreeNetwork:
        """The current topology as an object tree.

        For the object engine this is the live tree; for the flat engine it
        is a fresh :class:`KAryTreeNetwork` snapshot materialized from the
        arrays (mutating it does not affect the network).
        """
        if self._flat is not None:
            return self._flat.to_tree()
        return self._tree

    @property
    def flat(self) -> Optional[FlatTree]:
        """The live :class:`FlatTree` backend (``None`` on the object engine)."""
        return self._flat

    def distance(self, u: int, v: int) -> int:
        if self._flat is not None:
            return self._flat.distance(u, v)
        return self._tree.distance(u, v)

    def depth(self, x: int) -> int:
        """Depth of node ``x`` in the current topology (root = 0)."""
        if self._flat is not None:
            return self._flat.depth(x)
        return self._tree.depth(x)

    # ------------------------------------------------------------------
    def _serve_totals(self, u: int, v: int) -> tuple[int, int, int]:
        """Serve one request, returning ``(routing, rotations, links)``.

        The scalar core shared by :meth:`serve` (which wraps the totals in a
        :class:`ServeResult`) and the batched paths, which accumulate the
        bare tuples without per-request object construction.
        """
        if self._flat is not None:
            return self._flat.serve_one(u, v, self.policy, self.splay_depth)
        if u == v:
            return 0, 0, 0
        tree = self._tree
        lca, du, dv = tree.lca(u, v)
        routing_cost = du + dv
        node_u = tree.node(u)
        node_v = tree.node(v)
        rotations = 0
        links = 0
        if lca is node_v:
            # v is an ancestor of u: lift u to a child of v.
            rotations, links = splay_until(
                tree, node_u, node_v, policy=self.policy, depth=self.splay_depth
            )
        else:
            if lca is not node_u:
                # Lift u into the LCA's old position (the subtree's root).
                stop = lca.parent
                rotations, links = splay_until(
                    tree, node_u, stop, policy=self.policy, depth=self.splay_depth
                )
            # v is now strictly below u; lift it to a child of u.
            r2, l2 = splay_until(
                tree, node_v, node_u, policy=self.policy, depth=self.splay_depth
            )
            rotations += r2
            links += l2
        return routing_cost, rotations, links

    def serve(self, u: int, v: int) -> ServeResult:
        """Serve request ``(u, v)``: route, then splay the endpoints together.

        After the call (for ``u != v``) the endpoints are adjacent, so a
        burst of repeated requests costs 1 per request — the self-adjusting
        property the paper's experiments exploit on high-locality traces.
        """
        return ServeResult(*self._serve_totals(u, v))

    def serve_trace(
        self,
        sources,
        targets=None,
        *,
        record_series: bool = False,
    ) -> BatchServeResult:
        """Serve a whole request batch; returns accumulated cost totals.

        ``sources``/``targets`` are parallel identifier arrays (NumPy or
        lists), or a single :class:`~repro.workloads.trace.Trace` in the
        first position.  Per-request :class:`ServeResult` construction is
        skipped; series arrays are only built when ``record_series`` is
        set.  This is the fast path :class:`~repro.network.simulator.
        Simulator` uses when no per-request validation is requested.
        """
        if self._flat is None:
            return batch_serve(
                self._serve_totals, sources, targets, record_series=record_series
            )
        if self._flat.prefers_request_arrays and self.splay_depth == 2:
            # The native kernel consumes int64 arrays directly — going
            # through Python lists would box and re-unbox every request.
            src, dst = as_request_arrays(sources, targets)
        else:
            src, dst = as_request_lists(sources, targets)
        m = len(src)
        routing_series = rotation_series = None
        if record_series:
            routing_series = np.empty(m, dtype=np.int64)
            rotation_series = np.empty(m, dtype=np.int64)
        totals = self._flat.serve_many(
            src,
            dst,
            policy=self.policy,
            depth=self.splay_depth,
            routing_series=routing_series,
            rotation_series=rotation_series,
        )
        return BatchServeResult(
            m, totals[0], totals[1], totals[2], routing_series, rotation_series
        )

    def access(self, x: int) -> ServeResult:
        """A splay-*tree* access: search ``x`` from the root, splay it up.

        This is the Theorem 12 setting ("all the routing requests are from
        the root"): the request costs the depth of ``x`` and ``x`` finishes
        as the new root.  A sequence of accesses therefore obeys the splay
        tree's static-optimality bound
        ``O(m + Σ_x n_x log(m / n_x))`` — checked empirically by
        ``bench_theorem12_static_optimality``.
        """
        routing_cost = self.depth(x)
        rotations, links = self.splay_to_root(x)
        return ServeResult(routing_cost, rotations, links)

    def splay_to_root(self, x: int) -> tuple[int, int]:
        """Splay ``x`` all the way to the root; returns ``(rotations, links)``."""
        if self._flat is not None:
            return self._flat.splay_until(
                x, 0, policy=self.policy, depth=self.splay_depth
            )
        tree = self._tree
        return splay_until(
            tree, tree.node(x), None, policy=self.policy, depth=self.splay_depth
        )

    def serve_semi(self, u: int, v: int) -> ServeResult:
        """Partially-reactive serving: one splay step per endpoint.

        The spectrum sketched in the paper's introduction runs from fully
        reactive (``serve``) to static; this variant adjusts by exactly one
        transformation per endpoint per request, trading slower adaptation
        for minimal reconfiguration churn.  Unlike ``serve`` it does *not*
        leave the endpoints adjacent.
        """
        if u == v:
            return ServeResult(0, 0, 0)
        flat = self._flat
        if flat is not None:
            _, du, dv = flat.lca(u, v)
            rotations = 0
            links = 0
            parent = flat.parent
            for endpoint in (u, v):
                p = parent[endpoint]
                if not p:
                    continue
                if parent[p]:
                    links += flat.splay(endpoint, self.policy)
                else:
                    links += flat.semi_splay(endpoint, self.policy)
                rotations += 1
            return ServeResult(du + dv, rotations, links)
        tree = self._tree
        _, du, dv = tree.lca(u, v)
        rotations = 0
        links = 0
        for endpoint in (u, v):
            node = tree.node(endpoint)
            if node.parent is None:
                continue
            outcome = splay_step(node, None, policy=self.policy)
            rotations += 1
            links += outcome.links_changed
            if outcome.new_top.parent is None:
                tree.replace_root(outcome.new_top)
        return ServeResult(du + dv, rotations, links)

    # ------------------------------------------------------------------
    def snapshot_state(self):
        """An opaque, immutable checkpoint of the current topology.

        The state is engine-native (a :class:`FlatTree` copy or an object
        tree clone) but :meth:`restore_state` accepts either, so a
        checkpoint taken on one engine restores on the other — both
        engines represent the identical topology.
        """
        if self._flat is not None:
            return self._flat.copy()
        return self._tree.clone()

    def restore_state(self, state) -> None:
        """Rewind the topology to a :meth:`snapshot_state` checkpoint."""
        if not isinstance(state, (FlatTree, KAryTreeNetwork)):
            raise InvalidTreeError(
                f"cannot restore a KArySplayNet from {type(state).__name__}"
            )
        tree_state = state
        if tree_state.n != self.n or tree_state.k != self._k:
            raise InvalidTreeError(
                f"snapshot shape (n={tree_state.n}, k={tree_state.k}) does not"
                f" match network (n={self.n}, k={self._k})"
            )
        if self._flat is not None:
            # Adopt the snapshot into this engine's own tree class:
            # flat/native checkpoints transfer freely in either direction
            # (both carry the same list-backed state layout).
            cls = type(self._flat)
            self._flat = (
                cls.from_flat(tree_state)
                if isinstance(tree_state, FlatTree)
                else cls.from_tree(tree_state)
            )
        else:
            self._tree = (
                tree_state.clone()
                if isinstance(tree_state, KAryTreeNetwork)
                else tree_state.to_tree()
            )

    def validate(self) -> None:
        """Full structural validation of the current topology."""
        if self._flat is not None:
            self._flat.validate()
        else:
            self._tree.validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KArySplayNet(n={self.n}, k={self.k}, policy={self.policy!r},"
            f" engine={self.engine!r})"
        )
