"""core subpackage — see module docstrings."""
