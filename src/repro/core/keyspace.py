"""Key-space primitives for k-ary search tree networks.

The paper (Definition 1) distinguishes *node identifiers* (the permanent
integer key ``1..n`` carried by each network node) from *routing elements*
(the ``k-1`` values in each node's routing array that partition the key space
into child slots).  Identifiers never move; routing elements are redistributed
among nodes by rotations but their *values* never change after construction.

This module fixes the value discipline that makes that safe in floating
point, without any global allocator state:

* **Boundary separators** sit at integer-gap midpoints ``x + 0.5``.  A
  boundary is only ever created between two consecutive identifiers that are
  split apart by some node of the (laminar) segment decomposition, so at most
  one boundary per integer gap exists in a tree.
* **Pad separators** fill routing arrays up to length ``k-1`` when a node has
  fewer children than slots.  Node ``i`` pads exclusively inside its private
  zone ``(i, i + 0.5)`` with the dyadic values ``i + 2^-2, i + 2^-3, ...``.
  The zone is private to ``i`` (identifiers are unique) and always contained
  in ``i``'s ancestor window, because the only foreign separator that can
  fall in ``(i, i+1)`` is the boundary ``i + 0.5`` itself.

Every separator is therefore exactly representable in float64 for any
``k <= MAX_K``, globally distinct, and never equal to an integer identifier.
Rotations merge and re-split these values but never mint new ones, so the
discipline is preserved for the lifetime of the tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import InvalidTreeError

__all__ = [
    "NEG_INF",
    "POS_INF",
    "MAX_K",
    "Interval",
    "boundary_between",
    "pad_values",
    "is_separator_value",
    "is_identifier_value",
]

#: Sentinel for the left end of the whole key space.
NEG_INF: float = float("-inf")

#: Sentinel for the right end of the whole key space.
POS_INF: float = float("inf")

#: Largest supported arity.  Pad values use dyadic offsets down to
#: ``2**-(MAX_K + 1)``, which is comfortably exact in float64.
MAX_K: int = 40


@dataclass(frozen=True, slots=True)
class Interval:
    """An *open* interval ``(lo, hi)`` over the key space.

    Open intervals are the natural citizens of search-tree slot arithmetic:
    a routing array ``(r_1, ..., r_{k-1})`` partitions the key space into the
    open slots ``(-inf, r_1), (r_1, r_2), ..., (r_{k-1}, +inf)`` and no
    identifier ever equals a separator, so endpoint membership never arises.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise InvalidTreeError(
                f"empty interval ({self.lo}, {self.hi}); lo must be < hi"
            )

    def __contains__(self, value: float) -> bool:
        return self.lo < value < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is a (non-strict) sub-interval of ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection of two overlapping open intervals."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if not lo < hi:
            raise InvalidTreeError(
                f"intervals ({self.lo}, {self.hi}) and ({other.lo}, {other.hi})"
                " do not overlap"
            )
        return Interval(lo, hi)

    def overlaps(self, other: "Interval") -> bool:
        return max(self.lo, other.lo) < min(self.hi, other.hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.lo}, {self.hi})"


#: The whole key space.
FULL_SPACE = Interval(NEG_INF, POS_INF)


def boundary_between(left_id: int, right_id: int) -> float:
    """The boundary separator between two consecutive identifier blocks.

    ``left_id`` is the largest identifier of the left block and ``right_id``
    the smallest identifier of the right block; the blocks must be adjacent
    in identifier space (``right_id == left_id + 1``) because segment
    decompositions of ``1..n`` are contiguous.
    """
    if right_id != left_id + 1:
        raise InvalidTreeError(
            f"boundary requested between non-adjacent ids {left_id} and {right_id}"
        )
    return left_id + 0.5


def pad_values(node_id: int, count: int) -> Iterator[float]:
    """Yield ``count`` private pad separators for node ``node_id``.

    The values are ``node_id + 2^-2, node_id + 2^-3, ...`` — strictly inside
    the private zone ``(node_id, node_id + 0.5)``, strictly decreasing, and
    exact in float64 for ``count <= MAX_K - 1``.
    """
    if count < 0:
        raise InvalidTreeError(f"negative pad count {count}")
    if count > MAX_K - 1:
        raise InvalidTreeError(
            f"pad count {count} exceeds supported maximum {MAX_K - 1}"
        )
    for j in range(2, 2 + count):
        value = node_id + 2.0 ** (-j)
        if value == node_id or (value - node_id) != 2.0 ** (-j):
            # float64 runs out of mantissa around bits(node_id) + j > 53;
            # reachable only for ~million-node networks at extreme arity.
            raise InvalidTreeError(
                f"separator precision exhausted for node {node_id} at pad {j};"
                " reduce n or k"
            )
        yield value


def is_identifier_value(value: float) -> bool:
    """Whether ``value`` is an identifier (integral) rather than a separator."""
    return float(value).is_integer()


def is_separator_value(value: float) -> bool:
    """Whether ``value`` is a legal separator produced by this module.

    Legal separators are finite, non-integral, and of the form ``x + 0.5``
    (boundaries) or ``i + 2^-j`` with ``2 <= j <= MAX_K + 1`` (pads).
    """
    if not math.isfinite(value) or float(value).is_integer():
        return False
    frac = value - math.floor(value)
    if frac == 0.5:
        return True
    j = 2
    while j <= MAX_K + 1:
        if frac == 2.0 ** (-j):
            return True
        j += 1
    return False
