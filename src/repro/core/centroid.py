"""The centroid static k-ary search tree network (Section 3.2, Theorems 6-8).

Construction, in O(n):

1. Build the *centroid (k+1)-degree tree* (Definition 5): a centroid node
   with ``k + 1`` weakly-complete k-ary subtrees, all levels of the whole
   tree full except possibly the last, whose leaves are packed left.
2. Re-root it at a leaf — a ``(k+1)``-degree tree rooted at a leaf is a
   legal k-ary rooted tree (every internal node keeps at most ``k``
   children).
3. Assign identifiers ``1..n`` in child order (the uniform workload lets the
   labelling be chosen after the structure, Remark 7/34).

The paper proves the result is within ``O(n²k log k)`` of the optimal
``(k+1)``-degree tree (Theorem 6) and observes it is *exactly* optimal for
``n < 10³``, ``k ≤ 10`` (Remark 10) — which our benchmark
``bench_remark10_centroid_optimality`` re-verifies against the O(n²k) DP.
"""

from __future__ import annotations

from repro.core.builders import ShapeNode, build_from_shape, complete_tree_capacity
from repro.core.tree import KAryTreeNetwork
from repro.errors import InvalidTreeError

__all__ = [
    "centroid_subtree_sizes",
    "centroid_shape",
    "build_centroid_tree",
]


def centroid_subtree_sizes(n: int, k: int) -> list[int]:
    """Sizes of the ``k + 1`` weakly-complete subtrees around the centroid.

    All levels of the whole tree are filled except the last; the ``r``
    leftover last-level leaves are packed into the leftmost subtrees.
    Level ``i >= 1`` of the whole tree holds ``(k+1) k^{i-1}`` nodes.
    """
    if n < 1:
        raise InvalidTreeError("need n >= 1")
    remaining = n - 1
    depth = 0
    while True:
        level = (k + 1) * k**depth
        if remaining < level:
            break
        remaining -= level
        depth += 1
    # Each subtree now has `depth` full levels; `remaining` nodes go to
    # level depth+1, packed left, at most k**depth per subtree.
    interior = complete_tree_capacity(depth, k)
    cap = k**depth
    sizes = []
    for j in range(k + 1):
        extra = min(max(remaining - j * cap, 0), cap)
        sizes.append(interior + extra)
    assert sum(sizes) == n - 1
    return sizes


def _complete_shape(size: int, k: int) -> ShapeNode:
    """Weakly-complete k-ary shape with the last level packed left."""
    node = ShapeNode()
    if size <= 0:
        raise InvalidTreeError("shape size must be positive")
    if size == 1:
        return node
    levels = 1
    while complete_tree_capacity(levels, k) < size:
        levels += 1
    interior = complete_tree_capacity(levels - 1, k)
    last = size - interior
    child_full = complete_tree_capacity(levels - 2, k)
    child_cap = k ** (levels - 2)
    for j in range(k):
        extra = min(max(last - j * child_cap, 0), child_cap)
        s = child_full + extra
        if s > 0:
            node.add(_complete_shape(s, k))
    return node


def centroid_shape(n: int, k: int) -> ShapeNode:
    """The centroid ``(k+1)``-degree tree, re-rooted at a leaf.

    Returns a rooted shape whose root is a leaf of the unrooted centroid
    tree (so the root has exactly one child and every node has at most
    ``k`` children).
    """
    if n < 1:
        raise InvalidTreeError("need n >= 1")
    if n == 1:
        return ShapeNode()
    centroid = ShapeNode()
    for size in centroid_subtree_sizes(n, k):
        if size > 0:
            centroid.add(_complete_shape(size, k))
    if not centroid.children:  # pragma: no cover - n >= 2 always has one
        return centroid
    # Walk to a leaf (first-child descent), then reverse the path so the
    # leaf becomes the root: every node on the path adopts its old parent
    # as an extra child and drops the path child.
    leaf = centroid.children[0]
    while leaf.children:
        leaf = leaf.children[0]
    node = leaf
    while node.parent is not None:
        parent = node.parent
        parent.children.remove(node)
        node.children.append(parent)
        node = parent
    # Fix parent pointers wholesale (cheaper than tracking during reversal).
    stack = [leaf]
    leaf.parent = None
    while stack:
        cur = stack.pop()
        for child in cur.children:
            child.parent = cur
            stack.append(child)
    return leaf


def build_centroid_tree(
    n: int, k: int, *, own_index: str = "middle", validate: bool = True
) -> KAryTreeNetwork:
    """Theorem 8: the centroid k-ary search tree network, built in O(n)."""
    shape = centroid_shape(n, k)
    tree = build_from_shape(shape, k, own_index=own_index, validate=validate)
    return tree
