"""The compiled tree engine: :class:`NativeTree` behind ``engine="native"``.

``NativeTree`` is a :class:`~repro.core.flat.FlatTree` whose serve paths
run in the C kernel of :mod:`repro.core._native` — and, since ABI v2,
whose authoritative state lives in a **resident kernel handle** between
calls.  The state protocol:

* The first kernel serve allocates a handle (``repro_tree_create``) and
  loads the list-backed flat state into it once (``repro_tree_load``).
  While the handle is *resident*, batches (``repro_tree_serve_batch``)
  and single requests (``repro_tree_serve_one``) run against the
  C-owned buffers with zero per-call marshalling — the scalar path costs
  one ctypes call, not an O(n·k) pack/unpack round trip.
* Any consumer of the Python list state — snapshot/copy, signature,
  ``to_tree``, validation, LCA/depth queries, the Python-side rotation
  entry points, cross-engine transfer via :meth:`FlatTree.from_flat` —
  triggers :meth:`_sync_lists` first: one ``repro_tree_sync_out`` copies
  the resident buffers back into the lists (in place, so long-lived
  aliases stay valid) and clears the resident flag.  The next kernel
  serve reloads the handle.  This is the dirty-flag sync the equivalence
  and snapshot suites pin down.

Residency can be disabled (``set_resident(False)`` or
``REPRO_NATIVE_RESIDENT=0``), which restores the previous marshalled
behaviour — every call loads and syncs the full state — used by
``repro bench-servefarm`` to measure the resident win honestly.

Unsupported configurations (deep-splay ``depth != 2``, arity beyond the
kernel's static scratch, a kernel that failed to load after construction)
sync and delegate to the inherited pure-Python path, which is
structurally identical by the engine-equivalence contract.
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from repro.core import _native
from repro.core.flat import FlatTree
from repro.core.rotations import BLOCK_POLICIES
from repro.errors import EngineError, RotationError

__all__ = ["NativeTree", "resident_enabled", "set_resident"]

#: Block-policy encoding shared with kernel.c.
_POLICY_CODES = {"center": 0, "left": 1, "right": 2}


def _env_resident() -> bool:
    return os.environ.get("REPRO_NATIVE_RESIDENT", "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


_resident_mode = _env_resident()


def resident_enabled() -> bool:
    """Whether serves keep tree state resident in the kernel handle."""
    return _resident_mode


def set_resident(enabled: bool) -> bool:
    """Enable/disable residency process-wide; returns the previous mode.

    With residency off every kernel call marshals the full flat state in
    and back out (the pre-ABI-v2 behaviour) — the comparison baseline of
    the serve-farm benchmark, and an escape hatch should a resident-state
    bug ever need ruling out in production.
    """
    global _resident_mode
    previous = _resident_mode
    _resident_mode = bool(enabled)
    return previous


class NativeTree(FlatTree):
    """A :class:`FlatTree` served by the C kernel via a resident handle."""

    __slots__ = ("_lib", "_handle", "_resident", "_c_totals")

    prefers_request_arrays = True

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n, k)
        self._lib = None  # the CDLL that owns _handle (survives loader resets)
        self._handle = None
        self._resident = False
        self._c_totals = None

    def __del__(self) -> None:
        try:
            handle, lib = self._handle, self._lib
        except AttributeError:  # pragma: no cover - init never completed
            return
        if handle and lib is not None:
            try:
                lib.repro_tree_destroy(handle)
            except Exception:  # pragma: no cover - interpreter shutdown
                pass
            self._handle = None

    # ------------------------------------------------------------------
    # resident-state protocol
    # ------------------------------------------------------------------
    def _pack(self):
        """Marshal the list-backed state into contiguous buffers (O(n·k))."""
        n, km1 = self.n, self.k - 1
        parent = np.array(self.parent, dtype=np.int64)
        pslot = np.array(self.pslot, dtype=np.int64)
        children = np.array(self.child_rows, dtype=np.int64)
        routing = np.zeros((n + 1, km1), dtype=np.float64)
        if n:
            routing[1:] = self.routing_rows[1:]
        return parent, pslot, children, routing

    def _ensure_resident(self):
        """Make the kernel handle authoritative; returns it (or ``None``).

        Allocates the handle on first use and loads the current list
        state whenever the lists are authoritative (after construction,
        after a sync-out, after Python-side rotations).  ``None`` means
        the kernel cannot own this tree (no kernel, or allocation
        failed) and the caller must take the pure-Python path.
        """
        if self._resident:
            return self._handle
        kernel = _native.load_kernel()
        if kernel is None:
            return None
        if self._handle is None:
            handle = kernel.repro_tree_create(self.n, self.k)
            if not handle:
                return None
            self._lib = kernel
            self._handle = handle
            self._c_totals = (ctypes.c_int64 * 3)()
        parent, pslot, children, routing = self._pack()
        self._lib.repro_tree_load(
            self._handle,
            self.root,
            parent.ctypes.data,
            pslot.ctypes.data,
            children.ctypes.data,
            routing.ctypes.data,
        )
        self._resident = True
        return self._handle

    def _sync_lists(self) -> None:
        """Dirty-flag sync: copy resident kernel state back into the lists.

        No-op unless the handle is authoritative.  Updates the lists *in
        place* so references handed out earlier (e.g. a bound
        ``flat.parent`` in :meth:`KArySplayNet.serve_semi`) observe the
        synced state.  After the sync the lists are authoritative again;
        the next kernel serve reloads the handle.
        """
        if not self._resident:
            return
        n, k, km1 = self.n, self.k, self.k - 1
        parent = np.empty(n + 1, dtype=np.int64)
        pslot = np.empty(n + 1, dtype=np.int64)
        children = np.empty((n + 1, k), dtype=np.int64)
        routing = np.empty((n + 1, km1), dtype=np.float64)
        root_out = np.empty(1, dtype=np.int64)
        self._lib.repro_tree_sync_out(
            self._handle,
            root_out.ctypes.data,
            parent.ctypes.data,
            pslot.ctypes.data,
            children.ctypes.data,
            routing.ctypes.data,
        )
        self.parent[:] = parent.tolist()
        self.pslot[:] = pslot.tolist()
        self.child_rows[:] = children.tolist()
        rows = routing.tolist()
        rows[0] = []
        self.routing_rows[:] = rows
        self.root = int(root_out[0])
        self._resident = False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_one(
        self, u: int, v: int, policy: str = "center", depth: int = 2
    ) -> tuple[int, int, int]:
        """Serve one request through the resident scalar kernel entry.

        The ``Session.serve`` hot path: no batch marshalling, no state
        copies — one ctypes call against the resident handle.  Falls back
        to the (equivalent) pure-Python path for deep splay, oversized
        arity, or a missing kernel.
        """
        code = _POLICY_CODES.get(policy)
        if code is None:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if depth != 2 or self.k > _native.MAX_NATIVE_K:
            self._sync_lists()
            return super().serve_one(u, v, policy, depth)
        if u == v:
            # Mirrors the engines' self-pair short-circuit, including for
            # out-of-range identifiers (served at cost 0, never indexed).
            return 0, 0, 0
        n = self.n
        if not (1 <= u <= n) or not (1 <= v <= n):
            raise EngineError(
                f"request identifiers must be in 1..{n} for the native kernel"
            )
        if self._ensure_resident() is None:
            self._sync_lists()
            return super().serve_one(u, v, policy, depth)
        totals = self._c_totals
        status = self._lib.repro_tree_serve_one(
            self._handle, u, v, code, totals
        )
        if status != 0:  # pragma: no cover - arity guarded above
            raise EngineError(f"native serve kernel failed (status {status})")
        self._ranges_dirty = True
        if not _resident_mode:
            self._sync_lists()
        return int(totals[0]), int(totals[1]), int(totals[2])

    def serve_many(
        self,
        sources,
        targets,
        *,
        policy: str = "center",
        depth: int = 2,
        routing_series=None,
        rotation_series=None,
    ) -> tuple[int, int, int]:
        """Serve a whole request batch in the compiled kernel.

        Same contract as :meth:`FlatTree.serve_many` — scalar cost totals,
        optional preallocated series buffers — and the same results bit
        for bit (pinned by ``tests/test_native_engine.py``).  Only the
        request arrays cross the ctypes boundary; the tree state stays
        resident in the handle.
        """
        if policy not in BLOCK_POLICIES:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if (routing_series is None) != (rotation_series is None):
            raise EngineError(
                "routing_series and rotation_series must be provided together"
            )
        if depth != 2 or self.k > _native.MAX_NATIVE_K:
            # Deep-splay and oversized arities run the (equivalent)
            # pure-Python discipline.
            self._sync_lists()
            return super().serve_many(
                sources,
                targets,
                policy=policy,
                depth=depth,
                routing_series=routing_series,
                rotation_series=rotation_series,
            )

        n = self.n
        src = np.ascontiguousarray(sources, dtype=np.int64)
        dst = np.ascontiguousarray(targets, dtype=np.int64)
        m = min(src.shape[0], dst.shape[0])  # zip() semantics
        if m:
            # Only non-self pairs index the arrays in the kernel: u == v
            # short-circuits before any access (so a degenerate
            # out-of-range self-pair serves at cost 0 here exactly as the
            # Python engines serve it).
            su, sv = src[:m], dst[:m]
            bad = ((su < 1) | (su > n) | (sv < 1) | (sv > n)) & (su != sv)
            if bad.any():
                raise EngineError(
                    f"request identifiers must be in 1..{n} for the"
                    " native kernel"
                )
        if self._ensure_resident() is None:
            # A kernel that vanished after construction (or a failed
            # handle allocation) degrades to the pure-Python path.
            self._sync_lists()
            return super().serve_many(
                sources,
                targets,
                policy=policy,
                depth=depth,
                routing_series=routing_series,
                rotation_series=rotation_series,
            )

        totals = np.zeros(3, dtype=np.int64)
        record = routing_series is not None
        if record:
            routing_out = np.empty(m, dtype=np.int64)
            rotation_out = np.empty(m, dtype=np.int64)
            routing_ptr = routing_out.ctypes.data
            rotation_ptr = rotation_out.ctypes.data
        else:
            routing_ptr = rotation_ptr = None

        status = self._lib.repro_tree_serve_batch(
            self._handle,
            src.ctypes.data,
            dst.ctypes.data,
            ctypes.c_int64(m),
            ctypes.c_int64(_POLICY_CODES[policy]),
            routing_ptr,
            rotation_ptr,
            totals.ctypes.data,
        )
        if status != 0:  # pragma: no cover - arity guarded above
            raise EngineError(f"native serve kernel failed (status {status})")
        self._ranges_dirty = True
        if not _resident_mode:
            self._sync_lists()

        if record:
            routing_series[:m] = (
                routing_out
                if isinstance(routing_series, np.ndarray)
                else routing_out.tolist()
            )
            rotation_series[:m] = (
                rotation_out
                if isinstance(rotation_series, np.ndarray)
                else rotation_out.tolist()
            )
        return int(totals[0]), int(totals[1]), int(totals[2])

    # ------------------------------------------------------------------
    # list-state consumers: sync the resident handle out first
    # ------------------------------------------------------------------
    def to_tree(self, *, validate: bool = False):
        self._sync_lists()
        return super().to_tree(validate=validate)

    def signature(self):
        self._sync_lists()
        return super().signature()

    def refresh_ranges(self) -> None:
        self._sync_lists()
        super().refresh_ranges()

    def depth(self, nid: int) -> int:
        self._sync_lists()
        return super().depth(nid)

    def lca(self, u: int, v: int) -> tuple[int, int, int]:
        self._sync_lists()
        return super().lca(u, v)

    def semi_splay(self, y: int, policy: str = "center") -> int:
        self._sync_lists()
        return super().semi_splay(y, policy)

    def splay(self, z: int, policy: str = "center") -> int:
        self._sync_lists()
        return super().splay(z, policy)

    def semi_splay_fast(self, y: int, policy: str = "center") -> int:
        self._sync_lists()
        return super().semi_splay_fast(y, policy)

    def splay_fast(self, z: int, policy: str = "center") -> int:
        self._sync_lists()
        return super().splay_fast(z, policy)

    def generalized_splay(self, chain: list[int]) -> int:
        self._sync_lists()
        return super().generalized_splay(chain)

    def splay_until(
        self,
        node: int,
        stop: int,
        *,
        policy: str = "center",
        depth: int = 2,
    ) -> tuple[int, int]:
        self._sync_lists()
        return super().splay_until(node, stop, policy=policy, depth=depth)

    def validate(self) -> None:
        self._sync_lists()
        super().validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NativeTree(n={self.n}, k={self.k}, root={self.root},"
            f" resident={self._resident})"
        )
