"""The compiled tree engine: :class:`NativeTree` behind ``engine="native"``.

``NativeTree`` is a :class:`~repro.core.flat.FlatTree` whose batched serve
loop runs in the C kernel of :mod:`repro.core._native` instead of the
pure-Python inlined loop.  Everything else — construction, conversion,
scalar serving, rotations, snapshots, validation — is inherited unchanged,
so the class stays interchangeable with :class:`FlatTree` everywhere
(``isinstance`` checks, cross-engine snapshot transfer via
:meth:`FlatTree.from_flat`, the equivalence suite).

The division of labour per :meth:`serve_many` call:

1. *Pack*: the list-backed flat state (``parent``/``pslot``/``child_rows``/
   ``routing_rows``) is marshalled into contiguous int64/float64 NumPy
   buffers — O(n·k), negligible against any real batch.
2. *Serve*: ``repro_serve_batch`` runs the whole batch over those buffers
   (LCA walk, k-splay / k-semi-splay rotation groups, cost accounting) with
   zero Python involvement.
3. *Unpack*: the buffers are converted back to the list layout, and the
   lazy caches (subtree ranges, self-slot positions) are marked dirty
   exactly as the Python batch loop leaves them.

Unsupported configurations (deep-splay ``depth != 2``, arity beyond the
kernel's static scratch, a kernel that failed to load after construction)
delegate to the inherited pure-Python path, which is structurally
identical by the engine-equivalence contract.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.core import _native
from repro.core.flat import FlatTree
from repro.core.rotations import BLOCK_POLICIES
from repro.errors import EngineError, RotationError

__all__ = ["NativeTree"]

#: Block-policy encoding shared with kernel.c.
_POLICY_CODES = {"center": 0, "left": 1, "right": 2}


class NativeTree(FlatTree):
    """A :class:`FlatTree` whose batched serve loop is the C kernel."""

    __slots__ = ("_c_visit", "_c_vdepth", "_c_epoch")

    prefers_request_arrays = True

    def __init__(self, n: int, k: int) -> None:
        super().__init__(n, k)
        # Persistent epoch-stamped scratch for the kernel's LCA walk
        # (allocated lazily on the first batched serve).
        self._c_visit = None
        self._c_vdepth = None
        self._c_epoch = 0

    def serve_many(
        self,
        sources,
        targets,
        *,
        policy: str = "center",
        depth: int = 2,
        routing_series=None,
        rotation_series=None,
    ) -> tuple[int, int, int]:
        """Serve a whole request batch in the compiled kernel.

        Same contract as :meth:`FlatTree.serve_many` — scalar cost totals,
        optional preallocated series buffers — and the same results bit
        for bit (pinned by ``tests/test_native_engine.py``).
        """
        if policy not in BLOCK_POLICIES:
            raise RotationError(
                f"unknown block policy {policy!r}; choose from {BLOCK_POLICIES}"
            )
        if (routing_series is None) != (rotation_series is None):
            raise EngineError(
                "routing_series and rotation_series must be provided together"
            )
        kernel = _native.load_kernel()
        if depth != 2 or self.k > _native.MAX_NATIVE_K or kernel is None:
            # Deep-splay and oversized arities run the (equivalent)
            # pure-Python discipline; a kernel that vanished after
            # construction degrades the same way.
            return super().serve_many(
                sources,
                targets,
                policy=policy,
                depth=depth,
                routing_series=routing_series,
                rotation_series=rotation_series,
            )

        n, k = self.n, self.k
        km1 = k - 1

        src = np.ascontiguousarray(sources, dtype=np.int64)
        dst = np.ascontiguousarray(targets, dtype=np.int64)
        m = min(src.shape[0], dst.shape[0])  # zip() semantics
        if m:
            # Only non-self pairs index the arrays in the kernel: u == v
            # short-circuits before any access (so a degenerate
            # out-of-range self-pair serves at cost 0 here exactly as the
            # Python engines serve it).
            su, sv = src[:m], dst[:m]
            bad = ((su < 1) | (su > n) | (sv < 1) | (sv > n)) & (su != sv)
            if bad.any():
                raise EngineError(
                    f"request identifiers must be in 1..{n} for the"
                    " native kernel"
                )

        # -- pack the list-backed state into contiguous buffers ---------
        parent = np.array(self.parent, dtype=np.int64)
        pslot = np.array(self.pslot, dtype=np.int64)
        children = np.array(self.child_rows, dtype=np.int64)
        routing = np.zeros((n + 1, km1), dtype=np.float64)
        if n:
            routing[1:] = self.routing_rows[1:]
        if self._c_visit is None:
            self._c_visit = np.zeros(n + 1, dtype=np.int64)
            self._c_vdepth = np.zeros(n + 1, dtype=np.int64)
        root_io = np.array([self.root], dtype=np.int64)
        epoch_io = np.array([self._c_epoch], dtype=np.int64)
        totals = np.zeros(3, dtype=np.int64)
        record = routing_series is not None
        if record:
            routing_out = np.empty(m, dtype=np.int64)
            rotation_out = np.empty(m, dtype=np.int64)
            routing_ptr = routing_out.ctypes.data
            rotation_ptr = rotation_out.ctypes.data
        else:
            routing_ptr = rotation_ptr = None

        status = kernel.repro_serve_batch(
            ctypes.c_int64(n),
            ctypes.c_int64(k),
            root_io.ctypes.data,
            parent.ctypes.data,
            pslot.ctypes.data,
            children.ctypes.data,
            routing.ctypes.data,
            self._c_visit.ctypes.data,
            self._c_vdepth.ctypes.data,
            epoch_io.ctypes.data,
            src.ctypes.data,
            dst.ctypes.data,
            ctypes.c_int64(m),
            ctypes.c_int64(_POLICY_CODES[policy]),
            routing_ptr,
            rotation_ptr,
            totals.ctypes.data,
        )
        if status != 0:  # pragma: no cover - guarded by the k check above
            raise EngineError(f"native serve kernel failed (status {status})")

        # -- unpack the mutated buffers back into the list layout --------
        self.parent = parent.tolist()
        self.pslot = pslot.tolist()
        self.child_rows = children.tolist()
        rows = routing.tolist()
        rows[0] = []
        self.routing_rows = rows
        self.root = int(root_io[0])
        self._c_epoch = int(epoch_io[0])
        self._ranges_dirty = True

        if record:
            routing_series[:m] = (
                routing_out
                if isinstance(routing_series, np.ndarray)
                else routing_out.tolist()
            )
            rotation_series[:m] = (
                rotation_out
                if isinstance(rotation_series, np.ndarray)
                else rotation_out.tolist()
            )
        return int(totals[0]), int(totals[1]), int(totals[2])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeTree(n={self.n}, k={self.k}, root={self.root})"
