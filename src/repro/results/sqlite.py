"""The SQLite result store: indexed, transactional, million-cell scale.

One row per :class:`~repro.scenarios.core.ScenarioResult`, keyed by the
spec's canonical JSON plus its content hash
(:func:`~repro.results.store.spec_store_hash`), with the query-bearing
spec coordinates — scenario (``group``), algorithm, ``k``, ``n``,
workload and the campaign's scale label — denormalized into indexed
columns.  Where the JSONL backend answers a spec-hash lookup by scanning
the whole file, this backend answers it from a B-tree.

Durability model (mirrors the JSONL crash contract):

* the database runs in **WAL mode** — a writer killed mid-transaction
  loses only the uncommitted transaction; every committed row survives
  and the next open recovers cleanly from the write-ahead log;
* :meth:`SqliteStore.write` commits each record individually (the
  streaming contract ``run_specs`` relies on: a killed campaign keeps
  every completed cell);
* :meth:`SqliteStore.append_many` is the **batched ingest** path —
  records are grouped into multi-row transactions (``batch`` per
  commit), trading per-record durability for throughput;
* ``synchronous=NORMAL`` survives process death (SIGKILL); pass
  ``fsync=True`` for ``synchronous=FULL`` (survives power loss), the
  analogue of the JSONL store's per-line ``fsync``.

Schema evolution: a ``schema_version`` table records the layout version;
opening a database written by a *newer* layout refuses loudly, and
opening an older one walks the :data:`SqliteStore.MIGRATIONS` hook table
(from-version → migration callable) forward step by step, so record
files keep working across schema changes instead of being re-ingested.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Any, Callable, ClassVar, Dict, Iterable, Iterator, Optional

from repro.errors import ReproError

__all__ = ["SQLITE_SCHEMA_VERSION", "SqliteStore"]

#: Current layout version (bump alongside a MIGRATIONS entry from the
#: previous version whenever the table shape changes).
SQLITE_SCHEMA_VERSION = 1

_CREATE_RESULTS = """
CREATE TABLE IF NOT EXISTS results (
    id INTEGER PRIMARY KEY,
    spec_hash TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    workload TEXT NOT NULL,
    scenario TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    k INTEGER NOT NULL,
    n INTEGER NOT NULL,
    scale TEXT,
    total_routing INTEGER NOT NULL,
    total_rotations INTEGER NOT NULL,
    total_links_changed INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL
)
"""

_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_results_spec_hash ON results(spec_hash)",
    "CREATE INDEX IF NOT EXISTS idx_results_scenario ON results(scenario)",
    "CREATE INDEX IF NOT EXISTS idx_results_algorithm ON results(algorithm)",
    "CREATE INDEX IF NOT EXISTS idx_results_k ON results(k)",
    "CREATE INDEX IF NOT EXISTS idx_results_n ON results(n)",
    "CREATE INDEX IF NOT EXISTS idx_results_scale ON results(scale)",
)

_INSERT = """
INSERT INTO results (
    spec_hash, spec_json, workload, scenario, algorithm, k, n, scale,
    total_routing, total_rotations, total_links_changed, elapsed_seconds
) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""

#: Columns a query filter may address, in the protocol's vocabulary.
_FILTER_COLUMNS = {
    "spec_hash": "spec_hash",
    "group": "scenario",
    "scale": "scale",
    "workload": "workload",
    "algorithm": "algorithm",
    "k": "k",
    "n": "n",
}


class SqliteStore:
    """WAL-mode SQLite implementation of the result-store protocol.

    Construction never touches the filesystem; the database is opened
    (and its schema created or migrated) on first use.  The default open
    mode extends an existing record — ``overwrite=True`` deletes the
    database (and its WAL sidecars) first, mirroring the JSONL store's
    truncate semantics.  ``scale`` stamps each appended row with a
    campaign scale label for the protocol's scale-filtered queries.
    Usable as a context manager; ``close()`` is idempotent.

    Fault-injection point ``sink.write`` (same point as the JSONL
    store): ``error`` fails before anything reaches the database;
    ``truncate`` — the mid-write SIGKILL stand-in — leaves the record
    *uncommitted* and fails, so the torn write is exactly what WAL
    recovery discards on the next open.
    """

    #: Forward-migration hooks: ``MIGRATIONS[v]`` upgrades a version-``v``
    #: database to ``v + 1``.  Registered alongside each
    #: :data:`SQLITE_SCHEMA_VERSION` bump; walked in order on open.
    MIGRATIONS: ClassVar[Dict[int, Callable[[sqlite3.Connection], None]]] = {}

    def __init__(
        self,
        path: "str | Path",
        *,
        overwrite: bool = False,
        fsync: bool = False,
        scale: Optional[str] = None,
        batch: int = 1000,
    ) -> None:
        self.path = Path(path)
        self.overwrite = overwrite
        self.fsync = fsync
        self.scale = scale
        self.batch = max(1, int(batch))
        self._conn: Optional[sqlite3.Connection] = None
        self.count = 0
        self._preexisting: Optional[int] = None
        self._truncated = False

    # -- connection / schema -------------------------------------------
    def _connect(self, *, write: bool = False) -> sqlite3.Connection:
        # Overwrite semantics mirror the JSONL store: the existing record
        # is dropped lazily, on the first *write* — read-side access to an
        # overwrite-mode store never destroys anything.
        if write and self.overwrite and not self._truncated:
            self.close()
            if self.path.exists():
                self.path.unlink()
            for sidecar in ("-wal", "-shm"):
                side = Path(str(self.path) + sidecar)
                if side.exists():
                    side.unlink()
            self._truncated = True
            self._preexisting = 0
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path)
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute(
                    "PRAGMA synchronous=" + ("FULL" if self.fsync else "NORMAL")
                )
                self._ensure_schema(conn)
            except BaseException:
                conn.close()
                raise
            self._conn = conn
            if self._preexisting is None:
                self._preexisting = self._count_rows(conn)
        return self._conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL)"
        )
        row = conn.execute("SELECT version FROM schema_version").fetchone()
        if row is None:
            conn.execute(_CREATE_RESULTS)
            for statement in _INDEXES:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO schema_version (version) VALUES (?)",
                (SQLITE_SCHEMA_VERSION,),
            )
            conn.commit()
            return
        version = int(row[0])
        if version > SQLITE_SCHEMA_VERSION:
            raise ReproError(
                f"{self.path} has results-store schema v{version}, newer than"
                f" this code's v{SQLITE_SCHEMA_VERSION}; upgrade the package"
                " (or export the record back to JSONL with a newer build)"
            )
        while version < SQLITE_SCHEMA_VERSION:
            migrate = self.MIGRATIONS.get(version)
            if migrate is None:
                raise ReproError(
                    f"{self.path} has results-store schema v{version} and no"
                    f" registered migration to v{version + 1}"
                )
            migrate(conn)
            version += 1
            conn.execute("UPDATE schema_version SET version = ?", (version,))
            conn.commit()

    @staticmethod
    def _count_rows(conn: sqlite3.Connection) -> int:
        return int(conn.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    # -- session accounting --------------------------------------------
    @property
    def preexisting(self) -> int:
        """Rows the database held before this instance's first append."""
        if self._preexisting is None:
            if not self.path.exists() or self.overwrite:
                return 0
            self._connect()
        return self._preexisting or 0

    @property
    def total(self) -> int:
        """``preexisting + count`` — the record's size after this session."""
        return self.preexisting + self.count

    # -- write path ----------------------------------------------------
    def _row(self, result) -> tuple:
        from repro.results.store import spec_store_hash

        spec = result.spec
        return (
            spec_store_hash(spec),
            spec.to_json(),
            spec.workload,
            spec.group,
            spec.algorithm,
            spec.k,
            spec.n,
            self.scale,
            result.total_routing,
            result.total_rotations,
            result.total_links_changed,
            result.elapsed_seconds,
        )

    def write(self, result) -> None:
        """Append one record durably (committed before returning)."""
        from repro.errors import FaultInjected
        from repro.reliability.faults import fire_fault

        conn = self._connect(write=True)
        spec = fire_fault("sink.write", context=result.spec.to_json())
        if spec is not None and spec.mode == "truncate":
            # Simulate a kill mid-transaction: the row is inserted but
            # never committed — exactly what WAL recovery throws away.
            conn.execute(_INSERT, self._row(result))
            conn.rollback()
            raise FaultInjected(
                f"injected torn write at {self.path}: {spec.detail or spec.point}"
            )
        conn.execute(_INSERT, self._row(result))
        conn.commit()
        self.count += 1

    def append(self, result) -> None:
        """Protocol synonym of :meth:`write`."""
        self.write(result)

    def append_many(self, results: Iterable[Any]) -> int:
        """Batched transactional ingest: ``batch`` rows per commit.

        The high-throughput path for conversions and bulk recording —
        bounded memory (one batch of rows held at a time), with
        durability at batch granularity: a kill mid-batch loses at most
        the uncommitted batch, never a committed one.
        """
        conn = self._connect(write=True)
        appended = 0
        rows: list[tuple] = []
        for result in results:
            rows.append(self._row(result))
            if len(rows) >= self.batch:
                conn.executemany(_INSERT, rows)
                conn.commit()
                appended += len(rows)
                self.count += len(rows)
                rows.clear()
        if rows:
            conn.executemany(_INSERT, rows)
            conn.commit()
            appended += len(rows)
            self.count += len(rows)
        return appended

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    # -- read path -----------------------------------------------------
    @staticmethod
    def _result_from_row(row: tuple):
        from repro.scenarios.core import ScenarioResult
        from repro.scenarios.spec import ScenarioSpec

        spec_json, routing, rotations, links, elapsed = row
        return ScenarioResult(
            spec=ScenarioSpec.from_json(spec_json),
            total_routing=routing,
            total_rotations=rotations,
            total_links_changed=links,
            elapsed_seconds=elapsed,
        )

    _SELECT = (
        "SELECT spec_json, total_routing, total_rotations,"
        " total_links_changed, elapsed_seconds FROM results"
    )

    def __iter__(self) -> Iterator[Any]:
        """Stream records in append order (a fresh cursor; O(1) memory)."""
        if not self.path.exists():
            return
        cursor = self._connect().execute(self._SELECT + " ORDER BY id")
        for row in cursor:
            yield self._result_from_row(row)

    def _where(self, filters: Dict[str, Any]) -> tuple[str, list]:
        clauses, values = [], []
        for name, value in filters.items():
            if value is None:
                continue
            column = _FILTER_COLUMNS.get(name)
            if column is None:
                raise ReproError(
                    f"unknown result-store filter {name!r}; choose from"
                    f" {sorted(_FILTER_COLUMNS)}"
                )
            clauses.append(f"{column} = ?")
            values.append(value)
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", values

    def query(self, **filters: Any) -> Iterator[Any]:
        """Filtered iteration, answered from the indexed columns."""
        if not self.path.exists():
            return
        where, values = self._where(filters)
        cursor = self._connect().execute(
            self._SELECT + where + " ORDER BY id", values
        )
        for row in cursor:
            yield self._result_from_row(row)

    def count_records(self, **filters: Any) -> int:
        """``SELECT COUNT(*)`` under the same filters as :meth:`query`."""
        if not self.path.exists():
            return 0
        where, values = self._where(filters)
        return int(
            self._connect()
            .execute("SELECT COUNT(*) FROM results" + where, values)
            .fetchone()[0]
        )

    def schema_version(self) -> int:
        """The layout version recorded in the database (current if new)."""
        if not self.path.exists():
            return SQLITE_SCHEMA_VERSION
        row = (
            self._connect()
            .execute("SELECT version FROM schema_version")
            .fetchone()
        )
        return int(row[0]) if row else SQLITE_SCHEMA_VERSION
