"""The JSONL result store: one flushed line per cell, crash-safe.

One :class:`~repro.scenarios.core.ScenarioResult` per line, written (and
flushed) as results are handed over.  ``run_specs`` streams every cell to
the store the moment it completes — serially in spec order, pooled in
completion order — so a killed campaign keeps every completed cell on
disk and downstream tooling can tail the file while it runs.  Files are
opened in **append** mode, so re-running or resuming a campaign extends
the record instead of silently truncating it (pass ``overwrite=True``
for a fresh file).

Crash-safety contract: each record is emitted as **one** ``write`` call
of one complete line and flushed before ``write`` returns, so a process
killed between records never tears the file — and a process killed *mid*
record tears at most the final line.  :func:`iter_results_jsonl` upholds
the matching read guarantee: a truncated trailing line is skipped with a
warning (never an exception), so the record of an interrupted campaign
stays loadable and ``run_specs(..., resume=True)`` can seed from it.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional

from repro.results.store import matches_filters

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "JsonlStore",
    "iter_results_jsonl",
    "read_results_jsonl",
]

#: Version of the one-record-per-line layout (bump on a breaking change
#: to the line shape; additive spec fields are handled by the tolerant
#: ``ScenarioSpec.from_dict`` defaults and need no bump).
JSONL_SCHEMA_VERSION = 1


class JsonlStore:
    """Append-ordered JSONL result store (the historical sink, refactored).

    Opens lazily on the first ``write`` (so constructing a store never
    touches the filesystem), creates parent directories, emits each
    record as a single complete-line ``write`` and flushes it.  The
    default open mode is **append**: a second session on the same path
    extends the record, keeping the class's crash-survivability promise
    across re-runs and resumes (a torn partial line left by a killed
    writer is truncated away before the first append, so the file stays
    a sequence of whole records).  ``overwrite=True`` truncates instead;
    ``fsync=True`` additionally forces each line to stable storage
    (survives power loss, not just process death — at a per-line
    ``fsync`` cost).  Usable as a context manager; ``close()`` is
    idempotent.

    Session accounting: ``count`` is the number of records *this store
    instance* wrote, ``preexisting`` the number of complete records the
    file already held when this instance first looked, and ``total``
    their sum — so a resumed campaign's summary can say "3 new cells, 24
    already recorded" instead of a misleading bare ``count``.

    Fault-injection point ``sink.write``: ``error`` fails the write
    before anything reaches the file; ``truncate`` deliberately leaves a
    torn partial line (the stand-in for a SIGKILL mid-``write``) and then
    fails — exercised by the reliability suite to pin the tolerant read
    path.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        overwrite: bool = False,
        fsync: bool = False,
        scale: Optional[str] = None,
    ) -> None:
        self.path = Path(path)
        self.overwrite = overwrite
        self.fsync = fsync
        self.scale = scale
        self._handle = None
        self.count = 0
        self._preexisting: Optional[int] = None

    # -- session accounting --------------------------------------------
    def _count_complete_records(self) -> int:
        """Complete (newline-terminated, non-blank) records on disk now."""
        try:
            count = 0
            with self.path.open("r") as handle:
                for line in handle:
                    if line.endswith("\n") and line.strip():
                        count += 1
            return count
        except FileNotFoundError:
            return 0

    @property
    def preexisting(self) -> int:
        """Records the file held before this instance's first write."""
        if self._preexisting is None:
            self._preexisting = (
                0 if self.overwrite else self._count_complete_records()
            )
        return self._preexisting

    @property
    def total(self) -> int:
        """``preexisting + count`` — the record's size after this session."""
        return self.preexisting + self.count

    # -- write path ----------------------------------------------------
    def _repair_torn_tail(self) -> None:
        """Truncate a partial trailing line left by a killed writer.

        Append mode would otherwise glue the next record onto the torn
        fragment, corrupting a line *mid*-file — beyond what the tolerant
        reader forgives.  Trimming back to the last complete line keeps
        the file a sequence of whole records; the torn cell is simply
        recomputed by ``resume``.
        """
        try:
            with self.path.open("rb+") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size - 1)
                if handle.read(1) == b"\n":
                    return
                handle.seek(0)
                data = handle.read()
                keep = data.rfind(b"\n") + 1  # 0 when no newline at all
                handle.truncate(keep)
        except FileNotFoundError:
            return

    def write(self, result) -> None:
        from repro.errors import FaultInjected
        from repro.reliability.faults import fire_fault

        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if not self.overwrite:
                self._repair_torn_tail()
            # Snapshot the prior record count before this session appends.
            if self._preexisting is None:
                self._preexisting = (
                    0 if self.overwrite else self._count_complete_records()
                )
            self._handle = self.path.open("w" if self.overwrite else "a")
        line = json.dumps(result.to_dict(), sort_keys=True) + "\n"
        spec = fire_fault("sink.write", context=result.spec.to_json())
        if spec is not None and spec.mode == "truncate":
            # Simulate a kill mid-write: half the line lands, no newline.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            raise FaultInjected(
                f"injected torn write at {self.path}: {spec.detail or spec.point}"
            )
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.count += 1

    def append(self, result) -> None:
        """Protocol synonym of :meth:`write` (one durable record)."""
        self.write(result)

    def append_many(self, results: Iterable[Any]) -> int:
        """Append a stream of records; returns how many landed.

        JSONL has no cheaper batch mode than its per-line contract, so
        this is a loop over :meth:`write` — the method exists so the
        :class:`~repro.results.store.ResultStore` ingest surface is
        uniform across backends.
        """
        appended = 0
        for result in results:
            self.write(result)
            appended += 1
        return appended

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlStore":
        return self

    def __exit__(self, *exc_info: object) -> Optional[bool]:
        self.close()
        return None

    # -- read path -----------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        """Stream the file's records in append order (O(1) memory).

        Reads through a separate handle, so iterating a store that is
        also being written (resume seeding before the first new cell,
        tailing a live campaign) is safe.
        """
        if not self.path.exists():
            return
        yield from iter_results_jsonl(self.path)

    def query(
        self,
        *,
        spec_hash: Optional[str] = None,
        group: Optional[str] = None,
        scale: Optional[str] = None,
        workload: Optional[str] = None,
        algorithm: Optional[str] = None,
        k: Optional[int] = None,
        n: Optional[int] = None,
    ) -> Iterator[Any]:
        """Filtered scan over the record (the JSONL ``WHERE`` clause).

        Every filter is applied record-by-record while streaming — a
        JSONL store has no indexes, which is exactly the asymmetry the
        SQLite backend exists to fix.  ``scale`` matches the store-level
        campaign label (JSONL lines carry no scale column).
        """
        if scale is not None and scale != self.scale:
            return
        for result in self:
            if matches_filters(
                result,
                spec_hash=spec_hash,
                group=group,
                workload=workload,
                algorithm=algorithm,
                k=k,
                n=n,
            ):
                yield result

    def count_records(self, **filters: Any) -> int:
        """Number of records matching the filters (full count unfiltered)."""
        if not filters:
            return self._count_complete_records()
        return sum(1 for _ in self.query(**filters))

    def schema_version(self) -> int:
        return JSONL_SCHEMA_VERSION


def iter_results_jsonl(path: "str | Path") -> Iterator[Any]:
    """Stream a record file back as result objects, one line at a time.

    The O(1)-memory core of :func:`read_results_jsonl`: resume seeding
    over a multi-gigabyte campaign record holds one line in memory, not
    the whole file.  Tolerates the one corruption a killed writer can
    leave behind: a **truncated trailing line** (partial JSON with or
    without its newline) is skipped with a :class:`RuntimeWarning`
    instead of raising, so the completed cells of an interrupted campaign
    stay loadable.  Malformed JSON *before* the final line is not a crash
    artifact — single-``write`` line appends cannot tear mid-file — so it
    still raises :class:`json.JSONDecodeError`.
    """
    from repro.scenarios.core import ScenarioResult

    path = Path(path)
    # A decode failure is held back one step: only if another non-blank
    # line follows is it mid-file corruption (raise); a failure on the
    # final non-blank line is the torn tail the write contract permits.
    held_error: Optional[tuple[int, json.JSONDecodeError]] = None
    with path.open("r") as handle:
        for number, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line:
                continue
            if held_error is not None:
                raise held_error[1]
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                held_error = (number, exc)
                continue
            yield ScenarioResult.from_dict(data)
    if held_error is not None:
        warnings.warn(
            f"{path}: skipping truncated trailing line {held_error[0]}"
            " (partial write from an interrupted run)",
            RuntimeWarning,
            stacklevel=2,
        )


def read_results_jsonl(path: "str | Path") -> List[Any]:
    """Load a record file into a list (compatibility shim).

    Thin wrapper over :func:`iter_results_jsonl` — same tolerance and
    warning semantics, whole-campaign list materialized.  Prefer the
    iterator (or :class:`JsonlStore` iteration) for large records.
    """
    return list(iter_results_jsonl(path))
