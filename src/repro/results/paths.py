"""Where result records live: the results root and conventional paths.

Every store backend anchors its files under one directory —
``benchmarks/results/`` resolved against the repository root (or the
``REPRO_RESULTS_DIR`` environment override), never the current working
directory — so campaigns launched from anywhere land in one place.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

__all__ = [
    "RESULTS_DIR_ENV",
    "STORE_EXTENSIONS",
    "results_root",
    "default_results_path",
    "default_store_path",
]

#: Environment override for the results directory.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"

#: Store backend name → conventional file extension.
STORE_EXTENSIONS = {"jsonl": "jsonl", "sqlite": "sqlite"}


def results_root(start: Optional[Path] = None) -> Path:
    """The directory result files (and the result cache) live under.

    Resolution order:

    1. the ``REPRO_RESULTS_DIR`` environment variable, verbatim;
    2. the nearest ancestor of ``start`` (default: the current
       directory) containing ``benchmarks/results`` — a checkout,
       entered anywhere inside it;
    3. the checkout this package was imported from (``src`` layout), if
       it carries a ``benchmarks`` directory;
    4. ``benchmarks/results`` relative to the current directory (the
       historical fallback — only reached outside any checkout).
    """
    env = os.environ.get(RESULTS_DIR_ENV)
    if env:
        return Path(env)
    cwd = start if start is not None else Path.cwd()
    for base in (cwd, *cwd.parents):
        candidate = base / "benchmarks" / "results"
        if candidate.is_dir():
            return candidate
    # paths.py -> results -> repro -> src -> <checkout root>
    pkg_root = Path(__file__).resolve().parents[3]
    if (pkg_root / "benchmarks").is_dir():
        return pkg_root / "benchmarks" / "results"
    return Path("benchmarks") / "results"


def default_results_path(name: str, scale: str) -> Path:
    """``<results_root>/scenario_<name>_<scale>.jsonl`` (the historical
    JSONL convention; see :func:`default_store_path` for other backends)."""
    return default_store_path(name, scale, "jsonl")


def default_store_path(name: str, scale: str, backend: str = "jsonl") -> Path:
    """The conventional record path of a campaign for a store backend."""
    try:
        extension = STORE_EXTENSIONS[backend]
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r}; choose from"
            f" {sorted(STORE_EXTENSIONS)}"
        ) from None
    return results_root() / f"scenario_{name}_{scale}.{extension}"
