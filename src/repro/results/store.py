"""The :class:`ResultStore` protocol and the backend-agnostic helpers.

A result store is the persistence seam under the scenario pipeline: one
append-ordered collection of :class:`~repro.scenarios.core.ScenarioResult`
records that campaigns stream into (``run_specs(sink=store)``), resume
from (``resume=True`` seeds completed cells through the store's iterator)
and query after the fact.  Two backends implement it:

* :class:`~repro.results.jsonl.JsonlStore` — the historical append-only
  JSONL file, one flushed line per cell (crash-safe by construction);
* :class:`~repro.results.sqlite.SqliteStore` — a WAL-mode SQLite database
  with indexed spec coordinates and batched transactional ingest, for
  campaigns whose cell counts outgrow line-scanning.

Both speak the same protocol, so every producer and consumer — the
execution core, the CLI, the perf-trajectory report, conversion tools —
is backend-independent.  :func:`open_store` picks a backend from a path's
extension (or an explicit name); :func:`copy_results` streams any store
(or raw record path) into any other, which is all a JSONL ↔ SQLite
conversion is.

Record identity is the **full spec**: :func:`spec_store_hash` hashes the
spec's canonical JSON, so two cells differing only in provenance
(``group``) or reporting convention (``cost_model``) stay distinct rows —
unlike the *behavioural* cache key of :mod:`repro.scenarios.cache`, which
deliberately conflates them.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.core import ScenarioResult
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ResultStore",
    "STORE_BACKENDS",
    "spec_store_hash",
    "open_store",
    "copy_results",
    "iter_results",
]

#: Registered backend names (see :func:`open_store`).
STORE_BACKENDS = ("jsonl", "sqlite")

#: Path suffixes that select the SQLite backend when no explicit backend
#: is given to :func:`open_store`; anything else defaults to JSONL.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def spec_store_hash(spec: "ScenarioSpec") -> str:
    """Stable content hash of a spec's canonical JSON (store identity).

    Hashes *every* spec field — unlike the behavioural cache key
    (:func:`repro.scenarios.cache.spec_cache_key`), which excludes
    provenance/reporting fields — so store queries by hash retrieve
    exactly the requested cell, ``group`` and all.
    """
    return hashlib.sha256(spec.to_json().encode()).hexdigest()


@runtime_checkable
class ResultStore(Protocol):
    """What every results backend provides (structural protocol).

    ``write``/``append`` are synonyms: one record lands durably before
    the call returns (the streaming crash contract ``run_specs`` relies
    on).  ``append_many`` is the batched-ingest path — backends may
    amortize durability across a batch (SQLite groups rows into
    transactions), trading the per-record contract for throughput.
    Iteration yields records in append order; ``query``/``count_records``
    filter on spec coordinates (and the store's campaign ``scale`` label,
    where it carries one); ``schema_version`` reports the record layout
    so readers can refuse or migrate formats they predate.
    """

    path: Path

    def write(self, result: "ScenarioResult") -> None: ...

    def append(self, result: "ScenarioResult") -> None: ...

    def append_many(self, results: Iterable["ScenarioResult"]) -> int: ...

    def __iter__(self) -> Iterator["ScenarioResult"]: ...

    def query(self, **filters: Any) -> Iterator["ScenarioResult"]: ...

    def count_records(self, **filters: Any) -> int: ...

    def schema_version(self) -> int: ...

    def close(self) -> None: ...


def matches_filters(
    result: "ScenarioResult",
    *,
    spec_hash: Optional[str] = None,
    group: Optional[str] = None,
    workload: Optional[str] = None,
    algorithm: Optional[str] = None,
    k: Optional[int] = None,
    n: Optional[int] = None,
) -> bool:
    """The shared query predicate (what SQLite expresses as ``WHERE``)."""
    spec = result.spec
    if group is not None and spec.group != group:
        return False
    if workload is not None and spec.workload != workload:
        return False
    if algorithm is not None and spec.algorithm != algorithm:
        return False
    if k is not None and spec.k != k:
        return False
    if n is not None and spec.n != n:
        return False
    if spec_hash is not None and spec_store_hash(spec) != spec_hash:
        return False
    return True


def open_store(
    path: "str | Path",
    *,
    backend: Optional[str] = None,
    **kwargs: Any,
) -> "ResultStore":
    """Open a result store at ``path``, picking the backend by extension.

    ``backend="jsonl"``/``"sqlite"`` overrides the inference
    (``.sqlite``/``.sqlite3``/``.db`` → SQLite, everything else →
    JSONL).  Keyword arguments (``overwrite=``, ``scale=``, ...) pass
    through to the backend constructor.  Construction never touches the
    filesystem — both backends open lazily on first use.
    """
    from repro.results.jsonl import JsonlStore
    from repro.results.sqlite import SqliteStore

    if backend is None:
        suffix = Path(path).suffix.lower()
        backend = "sqlite" if suffix in _SQLITE_SUFFIXES else "jsonl"
    if backend == "jsonl":
        return JsonlStore(path, **kwargs)
    if backend == "sqlite":
        return SqliteStore(path, **kwargs)
    raise ValueError(
        f"unknown store backend {backend!r}; choose from {sorted(STORE_BACKENDS)}"
    )


def iter_results(source: "ResultStore | str | Path") -> Iterator["ScenarioResult"]:
    """Stream records from a store instance or a raw record path."""
    if isinstance(source, (str, Path)):
        store = open_store(source)
        try:
            yield from store
        finally:
            store.close()
        return
    yield from source


def copy_results(
    source: "ResultStore | str | Path",
    dest: "ResultStore | str | Path",
    *,
    overwrite: bool = True,
) -> int:
    """Stream every record of ``source`` into ``dest``; returns the count.

    This is the whole of a backend conversion: records pass one at a time
    through the common :class:`~repro.scenarios.core.ScenarioResult`
    representation (bounded memory for any campaign size), and the
    destination's ``append_many`` batches them transactionally where the
    backend supports it.  ``dest`` given as a path is opened fresh
    (``overwrite=True`` by default — a conversion is a copy, not an
    append); pass a store instance to control the open mode yourself.
    """
    opened = None
    if isinstance(dest, (str, Path)):
        opened = dest_store = open_store(dest, overwrite=overwrite)
    else:
        dest_store = dest
    try:
        return dest_store.append_many(iter_results(source))
    finally:
        if opened is not None:
            opened.close()
