"""Pluggable result storage for scenario campaigns.

The persistence seam of the reproduction: every campaign streams its
:class:`~repro.scenarios.core.ScenarioResult` cells into a
:class:`~repro.results.store.ResultStore`, and every consumer — resume
seeding, the CLI, the perf-trajectory report, conversions — reads back
through the same protocol.  Two backends: the crash-safe append-only
JSONL file (:class:`~repro.results.jsonl.JsonlStore`, the historical
sink) and an indexed WAL-mode SQLite database
(:class:`~repro.results.sqlite.SqliteStore`) for campaigns that outgrow
line scanning.  :func:`~repro.results.store.open_store` selects a
backend by path extension or explicit name;
:func:`~repro.results.store.copy_results` converts between them.
"""

from repro.results.jsonl import (
    JSONL_SCHEMA_VERSION,
    JsonlStore,
    iter_results_jsonl,
    read_results_jsonl,
)
from repro.results.paths import (
    RESULTS_DIR_ENV,
    STORE_EXTENSIONS,
    default_results_path,
    default_store_path,
    results_root,
)
from repro.results.sqlite import SQLITE_SCHEMA_VERSION, SqliteStore
from repro.results.store import (
    STORE_BACKENDS,
    ResultStore,
    copy_results,
    iter_results,
    matches_filters,
    open_store,
    spec_store_hash,
)

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "JsonlStore",
    "RESULTS_DIR_ENV",
    "ResultStore",
    "SQLITE_SCHEMA_VERSION",
    "STORE_BACKENDS",
    "STORE_EXTENSIONS",
    "SqliteStore",
    "copy_results",
    "default_results_path",
    "default_store_path",
    "iter_results",
    "iter_results_jsonl",
    "matches_filters",
    "open_store",
    "read_results_jsonl",
    "results_root",
    "spec_store_hash",
]
