"""Parameter-sweep engine: named axes, cell enumeration, parallel execution.

A sweep is a cartesian grid over named axes (``k``, ``workload``, ``seed
repetition``...).  The engine enumerates cells in a deterministic row-major
order, derives one independent seed per cell, executes cells through the
scenario execution core (:func:`repro.scenarios.core.run_cells` — the same
chokepoint behind the table runners and ``run_all``), and reassembles a
:class:`SweepResult` that can be queried by coordinate or exported as rows.

Simulation sweeps need no hand-written cell function:
:func:`run_scenario_sweep` maps axis coordinates straight onto
:class:`~repro.scenarios.spec.ScenarioSpec` fields, so each cell inherits
the core's per-worker trace memoization and flat-engine default.

Example
-------
>>> from repro.parallel import SweepSpec, run_sweep
>>> spec = SweepSpec(axes={"k": (2, 3), "n": (50, 100)}, root_seed=7)
>>> result = run_sweep(lambda cell: cell.coords["k"] * cell.coords["n"], spec)
>>> result.value(k=3, n=100)
300
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.parallel.pool import ParallelConfig
from repro.parallel.seeds import seed_for_cell

__all__ = [
    "SweepSpec",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "run_scenario_sweep",
]


@dataclass(frozen=True)
class SweepCell:
    """One grid point: coordinates plus a derived independent seed."""

    index: int
    coords: Mapping[str, Any]
    seed: int

    def __getitem__(self, axis: str) -> Any:
        return self.coords[axis]


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian sweep description.

    Attributes
    ----------
    axes:
        Ordered mapping of axis name → sequence of values.  Enumeration is
        row-major in declaration order (last axis varies fastest).
    root_seed:
        Root of the per-cell seed tree; cells get
        ``seed_for_cell(root_seed, coords)`` so the same coordinates always
        receive the same seed, independent of grid shape.
    repeats:
        Number of repetitions per coordinate; adds a synthetic ``rep`` axis
        when > 1, giving each repetition an independent seed.
    """

    axes: Mapping[str, Sequence[Any]]
    root_seed: int = 2024
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.axes:
            raise ExperimentError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ExperimentError(f"axis {name!r} has no values")
        if self.repeats < 1:
            raise ExperimentError(f"repeats must be >= 1, got {self.repeats}")
        if "rep" in self.axes and self.repeats > 1:
            raise ExperimentError("axis name 'rep' is reserved when repeats > 1")

    @property
    def axis_names(self) -> tuple[str, ...]:
        names = tuple(self.axes)
        return names + ("rep",) if self.repeats > 1 else names

    def size(self) -> int:
        total = self.repeats
        for values in self.axes.values():
            total *= len(values)
        return total

    def cells(self) -> Iterator[SweepCell]:
        """Enumerate cells row-major, seeds derived per-coordinate."""
        names = tuple(self.axes)
        index = 0
        for combo in itertools.product(*self.axes.values()):
            for rep in range(self.repeats):
                coords: dict[str, Any] = dict(zip(names, combo))
                if self.repeats > 1:
                    coords["rep"] = rep
                yield SweepCell(
                    index=index,
                    coords=coords,
                    seed=seed_for_cell(self.root_seed, coords),
                )
                index += 1


@dataclass
class SweepResult:
    """Cells and their values, queryable by coordinates."""

    spec: SweepSpec
    cells: list[SweepCell] = field(default_factory=list)
    values: list[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def rows(self) -> list[dict[str, Any]]:
        """Flat export: one dict per cell with coordinates, seed and value."""
        out = []
        for cell, value in zip(self.cells, self.values):
            row = dict(cell.coords)
            row["seed"] = cell.seed
            row["value"] = value
            out.append(row)
        return out

    def _match(self, coords: Mapping[str, Any]) -> list[int]:
        return [
            i
            for i, cell in enumerate(self.cells)
            if all(cell.coords.get(k) == v for k, v in coords.items())
        ]

    def select(self, **coords: Any) -> "SweepResult":
        """Sub-result of cells matching every given coordinate."""
        picks = self._match(coords)
        return SweepResult(
            spec=self.spec,
            cells=[self.cells[i] for i in picks],
            values=[self.values[i] for i in picks],
        )

    def value(self, **coords: Any) -> Any:
        """The unique value at the given coordinates."""
        picks = self._match(coords)
        if len(picks) != 1:
            raise ExperimentError(
                f"coordinates {coords} matched {len(picks)} cells, expected 1"
            )
        return self.values[picks[0]]

    def axis_values(self, axis: str) -> list[Any]:
        """Distinct values seen along one axis, in first-seen order."""
        seen: list[Any] = []
        for cell in self.cells:
            v = cell.coords.get(axis)
            if v not in seen:
                seen.append(v)
        return seen

    def group_mean(self, value_fn: Callable[[Any], float], axis: str) -> dict[Any, float]:
        """Mean of ``value_fn(value)`` grouped by one axis (for repeats)."""
        sums: dict[Any, float] = {}
        counts: dict[Any, int] = {}
        for cell, value in zip(self.cells, self.values):
            key = cell.coords.get(axis)
            sums[key] = sums.get(key, 0.0) + value_fn(value)
            counts[key] = counts.get(key, 0) + 1
        return {key: sums[key] / counts[key] for key in sums}


def run_sweep(
    cell_fn: Callable[[SweepCell], Any],
    spec: SweepSpec,
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> SweepResult:
    """Execute every cell of ``spec`` through the process pool.

    ``cell_fn`` must be picklable when ``jobs > 1``.  Values come back in
    enumeration order, so the result is independent of scheduling.
    """
    # Imported here, not at module level: the scenario core sits above this
    # package (it consumes repro.parallel.pool/tasks), so a top-level import
    # would be circular during package initialization.
    from repro.scenarios.core import run_cells

    cells = list(spec.cells())
    values = run_cells(cell_fn, cells, jobs=jobs, config=config)
    if len(values) != len(cells):
        raise ExperimentError(
            f"sweep produced {len(values)} values for {len(cells)} cells "
            "(a cell failed under on_error='collect'); use parallel_map_outcomes"
        )
    return SweepResult(spec=spec, cells=cells, values=values)


@dataclass(frozen=True)
class _ScenarioCellFn:
    """Picklable bridge: sweep coordinates → one scenario cell.

    Spec fields come from ``base`` overridden by the cell's coordinates
    (the synthetic ``rep`` axis is dropped — it exists only to vary the
    derived seed); a cell that names no ``seed`` gets the sweep's derived
    per-coordinate seed, so repetitions stay independent.
    """

    base: Mapping[str, Any]

    def __call__(self, cell: SweepCell) -> Any:
        from repro.scenarios.core import run_scenario
        from repro.scenarios.spec import ScenarioSpec

        fields = dict(self.base)
        fields.update(cell.coords)
        fields.pop("rep", None)
        fields.setdefault("seed", cell.seed)
        return run_scenario(ScenarioSpec(**fields))


def run_scenario_sweep(
    spec: SweepSpec,
    base: Optional[Mapping[str, Any]] = None,
    *,
    jobs: int = 1,
    config: Optional[ParallelConfig] = None,
) -> SweepResult:
    """Run a sweep whose cells are declarative scenario specs.

    Axis names and ``base`` entries are
    :class:`~repro.scenarios.spec.ScenarioSpec` fields (``workload``,
    ``n``, ``m``, ``algorithm``, ``k``, ``engine``, ...).  Values are
    :class:`~repro.scenarios.core.ScenarioResult` objects.

    >>> from repro.parallel import SweepSpec, run_scenario_sweep
    >>> spec = SweepSpec(axes={"k": (2, 3)}, root_seed=7)
    >>> result = run_scenario_sweep(
    ...     spec, {"workload": "uniform", "n": 16, "m": 64,
    ...            "algorithm": "kary-splaynet"})
    >>> len(result)
    2
    """
    return run_sweep(_ScenarioCellFn(dict(base or {})), spec, jobs=jobs, config=config)
