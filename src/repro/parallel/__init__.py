"""Parallel experiment execution substrate.

The paper's evaluation sweeps a grid of (workload, algorithm, k) cells, each
an independent trace-driven simulation.  This package runs such grids across
processes with three guarantees that matter for reproducible HPC-style
experiment harnesses:

1. **Determinism** — results are bit-identical regardless of the number of
   worker processes or scheduling order.  Every cell derives its own RNG seed
   from a root seed through a stable hash (:mod:`repro.parallel.seeds`), and
   outputs are reassembled in submission order.
2. **Parameters travel, data does not** — workers receive small picklable
   task descriptions and regenerate traces locally from seeds rather than
   receiving multi-megabyte arrays through the pipe
   (:mod:`repro.parallel.tasks`).
3. **Graceful degradation** — ``jobs=1`` (the default) executes serially in
   the calling process with identical semantics, so the parallel path never
   becomes the only tested path.

Typical use::

    from repro.parallel import parallel_map, SweepSpec, run_sweep

    spec = SweepSpec(axes={"k": [2, 3, 4], "workload": ["hpc", "uniform"]})
    results = run_sweep(my_cell_fn, spec, jobs=4)
"""

from repro.parallel.pool import ParallelConfig, cpu_jobs, parallel_map, parallel_starmap
from repro.parallel.seeds import derive_seed, spawn_seeds, seed_for_cell
from repro.parallel.sweep import (
    SweepCell,
    SweepResult,
    SweepSpec,
    run_scenario_sweep,
    run_sweep,
)
from repro.parallel.tasks import (
    SimulationTask,
    SimulationTaskResult,
    clear_trace_cache,
    materialize_trace,
    materialize_trace_cached,
    run_simulation_task,
    static_cost_task,
    trace_cache_stats,
)

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "parallel_starmap",
    "cpu_jobs",
    "derive_seed",
    "spawn_seeds",
    "seed_for_cell",
    "SweepSpec",
    "SweepCell",
    "SweepResult",
    "run_sweep",
    "run_scenario_sweep",
    "SimulationTask",
    "SimulationTaskResult",
    "run_simulation_task",
    "static_cost_task",
    "materialize_trace",
    "materialize_trace_cached",
    "clear_trace_cache",
    "trace_cache_stats",
]
