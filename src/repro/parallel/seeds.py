"""Deterministic seed derivation for parallel experiment cells.

Parallel sweeps must not share one RNG stream across workers: the stream
order would depend on scheduling, and results would change with the worker
count.  Instead, every cell gets an *independent* seed derived from the
sweep's root seed and the cell's identity.  Two derivation schemes are
provided:

* :func:`spawn_seeds` — NumPy ``SeedSequence.spawn``: statistically
  independent child streams, ideal when cells are indexed ``0..count-1``.
* :func:`derive_seed` / :func:`seed_for_cell` — a stable BLAKE2 hash of the
  root seed plus arbitrary labels (workload name, k, repetition index...).
  Unlike ``hash()``, this is stable across processes and Python builds
  (``PYTHONHASHSEED`` does not affect it), so a cell's seed is a pure
  function of its coordinates.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence, Union

import numpy as np

__all__ = ["spawn_seeds", "derive_seed", "seed_for_cell", "MAX_SEED"]

#: Seeds are confined to the non-negative int64 range so they can be passed
#: to every RNG constructor in the stack (NumPy, ``random``, C extensions).
MAX_SEED = 2**63 - 1

Label = Union[str, int, float, bool, None]


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent 63-bit seeds spawned from ``root_seed``.

    Uses :class:`numpy.random.SeedSequence`, the recommended mechanism for
    parallel stream splitting: children are statistically independent and
    the expansion is deterministic.

    >>> spawn_seeds(7, 3) == spawn_seeds(7, 3)
    True
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(root_seed)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] & MAX_SEED)
        for child in root.spawn(count)
    ]


def _encode_label(label: Label) -> bytes:
    if label is None:
        return b"\x00none"
    if isinstance(label, bool):  # before int: bool is an int subclass
        return b"\x01" + (b"T" if label else b"F")
    if isinstance(label, int):
        return b"\x02" + str(label).encode()
    if isinstance(label, float):
        return b"\x03" + repr(label).encode()
    if isinstance(label, str):
        return b"\x04" + label.encode("utf-8")
    raise TypeError(f"unsupported seed label type: {type(label).__name__}")


def derive_seed(root_seed: int, *labels: Label) -> int:
    """A 63-bit seed that is a stable function of ``root_seed`` and labels.

    The derivation hashes the root seed and each label (type-tagged, so
    ``1`` and ``"1"`` differ) with BLAKE2b.  Changing any label yields an
    unrelated seed; repeating the call yields the same seed in any process.

    >>> derive_seed(2024, "hpc", 3) == derive_seed(2024, "hpc", 3)
    True
    >>> derive_seed(2024, "hpc", 3) != derive_seed(2024, "hpc", 4)
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"\x1f")  # unit separator so labels cannot merge
        h.update(_encode_label(label))
    return int.from_bytes(h.digest(), "big") & MAX_SEED


def seed_for_cell(root_seed: int, cell: Mapping[str, Label]) -> int:
    """Seed for a named sweep cell (order-insensitive over axis names).

    The mapping is flattened as sorted ``(name, value)`` pairs so that two
    logically identical cells produce the same seed regardless of axis
    declaration order.
    """
    flat: list[Label] = []
    for key in sorted(cell):
        flat.append(key)
        flat.append(cell[key])
    return derive_seed(root_seed, *flat)


def interleave_check(seeds: Iterable[int], *, min_unique_fraction: float = 0.999) -> bool:
    """Sanity check used by tests: seeds should be (nearly) all distinct."""
    seen: Sequence[int] = list(seeds)
    if not seen:
        return True
    return len(set(seen)) / len(seen) >= min_unique_fraction
