"""Picklable task functions for parallel experiment cells.

Every function here is module-level (so it pickles under any multiprocessing
start method) and takes a small frozen dataclass describing the cell.  Tasks
*regenerate* their workload inside the worker from ``(workload, n, m,
seed)`` — shipping four scalars instead of a million-row trace array keeps
IPC negligible and makes cells independent of parent-process state.
Regenerated traces are memoized per worker process (see
:func:`materialize_trace_cached`), so the up-to-27 cells of one paper table
materialize their shared trace once per worker rather than once per cell.

Supported algorithm names (``SimulationTask.algorithm``):

====================  =====================================================
``kary-splaynet``     :class:`~repro.core.splaynet.KArySplayNet` (k from task)
``centroid-splaynet`` :class:`~repro.core.centroid_splaynet.CentroidSplayNet`
``splaynet``          binary :class:`~repro.splaynet.splaynet.SplayNet`
``lazy``              :class:`~repro.network.lazy.LazyRebuildNetwork`
``full-tree``         static full/complete k-ary tree
``centroid-tree``     static centroid k-ary tree
``optimal-tree``      optimal static routing-based k-ary tree (Theorem 2 DP)
``optimal-bst``       optimal static BST network (the [22] DP)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.distance import trace_static_cost
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.engine import ENGINES
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import Simulator
from repro.optimal.general import optimal_static_tree
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.splaynet import SplayNet
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import (
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "SimulationTask",
    "SimulationTaskResult",
    "run_simulation_task",
    "static_cost_task",
    "materialize_trace",
    "materialize_trace_cached",
    "materialize_demand_cached",
    "clear_trace_cache",
    "trace_cache_stats",
    "NETWORK_FACTORIES",
    "STATIC_BUILDERS",
]


def materialize_trace(workload: str, n: int, m: int, seed: int) -> Trace:
    """Regenerate a workload trace inside a worker process.

    Mirrors :func:`repro.experiments.presets.make_workload` but is driven by
    explicit ``(n, m, seed)`` so tasks stay self-contained.
    """
    if workload == "uniform":
        return uniform_trace(n, m, seed)
    if workload == "hpc":
        return hpc_trace(n, m, seed)
    if workload == "projector":
        return projector_trace(n, m, seed)
    if workload == "facebook":
        return facebook_trace(n, m, seed)
    if workload.startswith("temporal-"):
        return temporal_trace(n, m, float(workload.split("-", 1)[1]), seed)
    if workload.startswith("zipf-"):
        return zipf_trace(n, m, alpha=float(workload.split("-", 1)[1]), seed=seed)
    raise ExperimentError(f"unknown workload {workload!r}")


# ----------------------------------------------------------------------
# per-worker trace memoization
# ----------------------------------------------------------------------
#: (workload, n, m, seed) → materialized trace, per process.  A paper table
#: fans out up to 27 cells over the *same* trace; without this cache every
#: cell regenerates it from scratch.
_TRACE_CACHE: dict[tuple[str, int, int, int], Trace] = {}
#: Same keys → the trace's demand matrix, shared by the static-optimum
#: cells of a table row (the DP subsystem's "dense demand computed once
#: per (workload, n, seed)" input; see repro.optimal.context for the
#: derived inputs shared below this layer).
_DEMAND_CACHE: dict[tuple[str, int, int, int], DemandMatrix] = {}
#: Keys pre-seeded with caller-provided traces (never auto-evicted: for
#: those, regeneration from coordinates would produce a *different* trace).
_PINNED_KEYS: set[tuple[str, int, int, int]] = set()
#: Bound on distinct auto-cached traces (a full reproduction touches 8
#: workloads; paper scale is ~8 MB per million-request trace).
_TRACE_CACHE_MAX = 16
_trace_cache_hits = 0
_trace_cache_misses = 0


def materialize_trace_cached(workload: str, n: int, m: int, seed: int) -> Trace:
    """Memoized :func:`materialize_trace` (per-process, bounded).

    Traces are immutable once generated, so sharing one instance across
    cells is safe; when the memo would exceed :data:`_TRACE_CACHE_MAX`
    distinct traces the auto-generated entries are dropped — pinned
    entries (:func:`seed_trace_cache`) always survive.
    """
    global _trace_cache_hits, _trace_cache_misses
    key = (workload, n, m, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        _trace_cache_misses += 1
        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            for stale in [k for k in _TRACE_CACHE if k not in _PINNED_KEYS]:
                del _TRACE_CACHE[stale]
        trace = materialize_trace(workload, n, m, seed)
        _TRACE_CACHE[key] = trace
    else:
        _trace_cache_hits += 1
    return trace


def seed_trace_cache(trace: Trace, workload: str, seed: int) -> tuple[str, int, int, int]:
    """Pre-seed (and pin) the memo with an explicit trace; returns the key.

    Used by the serial experiment adapters when a caller hands them a
    pre-built trace instead of workload coordinates.  Pinned entries are
    exempt from eviction until :func:`evict_trace` / :func:`clear_trace_cache`.
    """
    key = (workload, trace.n, trace.m, seed)
    _TRACE_CACHE[key] = trace
    # A demand counted from a previously *generated* trace under these
    # coordinates no longer describes the pinned trace — drop it, or the
    # static-optimum cells would build from the wrong workload.
    _DEMAND_CACHE.pop(key, None)
    _PINNED_KEYS.add(key)
    return key


def evict_trace(key: tuple[str, int, int, int]) -> None:
    """Drop one cache entry (undo of :func:`seed_trace_cache`)."""
    _TRACE_CACHE.pop(key, None)
    _DEMAND_CACHE.pop(key, None)
    _PINNED_KEYS.discard(key)


def clear_trace_cache() -> None:
    """Empty the per-process trace/demand memos and reset the counters."""
    global _trace_cache_hits, _trace_cache_misses
    _TRACE_CACHE.clear()
    _DEMAND_CACHE.clear()
    _PINNED_KEYS.clear()
    _trace_cache_hits = 0
    _trace_cache_misses = 0


def materialize_demand_cached(trace: Trace, task: "SimulationTask") -> DemandMatrix:
    """The demand matrix of a task's trace, memoized per process.

    Keyed by the task's trace coordinates (the same key as the trace
    memo, and evicted alongside it), so the up-to-9 static-optimum cells
    of a table row count their shared trace into a matrix once.
    """
    key = (task.workload, task.n, task.m, task.seed)
    demand = _DEMAND_CACHE.get(key)
    if demand is None:
        if len(_DEMAND_CACHE) >= _TRACE_CACHE_MAX:
            for stale in [k for k in _DEMAND_CACHE if k not in _PINNED_KEYS]:
                del _DEMAND_CACHE[stale]
        demand = DemandMatrix.from_trace(trace)
        _DEMAND_CACHE[key] = demand
    return demand


def trace_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of this process's trace memo (for tests)."""
    return {
        "hits": _trace_cache_hits,
        "misses": _trace_cache_misses,
        "size": len(_TRACE_CACHE),
    }


# ----------------------------------------------------------------------
# algorithm registries
# ----------------------------------------------------------------------
def _make_kary_splaynet(task: "SimulationTask") -> KArySplayNet:
    return KArySplayNet(task.n, task.k, initial=task.initial, engine=task.engine)

def _make_centroid_splaynet(task: "SimulationTask") -> CentroidSplayNet:
    return CentroidSplayNet(task.n, task.k, engine=task.engine)

def _make_binary_splaynet(task: "SimulationTask") -> SplayNet:
    # SplayNet is the k=2 baseline regardless of the axis value (and has a
    # single implementation — no engine selection).
    return SplayNet(task.n)

def _make_lazy(task: "SimulationTask") -> LazyRebuildNetwork:
    return LazyRebuildNetwork(task.n, task.k)


#: Online (self-adjusting) algorithm name → ``factory(task) -> network``.
NETWORK_FACTORIES: dict[str, Callable[["SimulationTask"], object]] = {
    "kary-splaynet": _make_kary_splaynet,
    "centroid-splaynet": _make_centroid_splaynet,
    "splaynet": _make_binary_splaynet,
    "lazy": _make_lazy,
}

#: Algorithms whose factory threads the ``engine=`` backend selection
#: through (the k-ary tree-engine hot loop of :mod:`repro.core.engine`).
ENGINE_CAPABLE = frozenset({"kary-splaynet", "centroid-splaynet"})


def _build_full(trace: Trace, task: "SimulationTask"):
    return build_complete_tree(trace.n, task.k)

def _build_centroid(trace: Trace, task: "SimulationTask"):
    return build_centroid_tree(trace.n, task.k)

def _build_optimal_kary(trace: Trace, task: "SimulationTask"):
    # Shared demand + the per-demand DP context memo (repro.optimal.context)
    # make an arity sweep over one workload compute its inputs once.
    return optimal_static_tree(materialize_demand_cached(trace, task), task.k).tree

def _build_optimal_bst(trace: Trace, task: "SimulationTask"):
    return optimal_static_bst(materialize_demand_cached(trace, task)).network


#: Static baseline name → ``builder(trace, task) -> tree``.
STATIC_BUILDERS: dict[str, Callable[[Trace, "SimulationTask"], object]] = {
    "full-tree": _build_full,
    "centroid-tree": _build_centroid,
    "optimal-tree": _build_optimal_kary,
    "optimal-bst": _build_optimal_bst,
}


# ----------------------------------------------------------------------
# the task objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """One experiment cell: a workload served by one algorithm.

    Attributes
    ----------
    workload, n, m, seed:
        Trace coordinates, regenerated in the worker.
    algorithm:
        A key of :data:`NETWORK_FACTORIES` or :data:`STATIC_BUILDERS`.
    k:
        Tree arity (ignored by the binary baselines).
    engine:
        Tree-engine backend for :data:`ENGINE_CAPABLE` algorithms
        (``None`` = the process default; ignored by the rest).
    initial:
        Initial topology name for ``kary-splaynet``.
    """

    workload: str
    n: int
    m: int
    seed: int
    algorithm: str
    k: int = 2
    engine: Optional[str] = None
    initial: str = "complete"

    def __post_init__(self) -> None:
        if self.algorithm not in NETWORK_FACTORIES and self.algorithm not in STATIC_BUILDERS:
            raise ExperimentError(
                f"unknown algorithm {self.algorithm!r}; choose from "
                f"{sorted(NETWORK_FACTORIES) + sorted(STATIC_BUILDERS)}"
            )
        if self.k < 2:
            raise ExperimentError(f"k must be >= 2, got {self.k}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )


@dataclass(frozen=True)
class SimulationTaskResult:
    """Scalar outcomes of one cell (small: safe to pipe back to the parent)."""

    task: SimulationTask
    total_routing: int
    total_rotations: int
    total_links_changed: int

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.task.m if self.task.m else 0.0


def run_simulation_task(task: SimulationTask) -> SimulationTaskResult:
    """Execute one cell: regenerate the trace, run the algorithm, reduce.

    Static baselines are costed through the distance oracle (no simulation
    loop); online algorithms run the full trace through the simulator.
    """
    trace = materialize_trace_cached(task.workload, task.n, task.m, task.seed)
    if task.algorithm in STATIC_BUILDERS:
        tree = STATIC_BUILDERS[task.algorithm](trace, task)
        cost = trace_static_cost(tree, trace)
        return SimulationTaskResult(task, cost, 0, 0)
    network = NETWORK_FACTORIES[task.algorithm](task)
    run = Simulator().run(network, trace)
    return SimulationTaskResult(
        task, run.total_routing, run.total_rotations, run.total_links_changed
    )


def static_cost_task(task: SimulationTask) -> int:
    """Cost-only variant for static baselines (used by sweep reductions)."""
    if task.algorithm not in STATIC_BUILDERS:
        raise ExperimentError(
            f"static_cost_task requires a static algorithm, got {task.algorithm!r}"
        )
    return run_simulation_task(task).total_routing
