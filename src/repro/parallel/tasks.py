"""Picklable task functions for parallel experiment cells.

Every function here is module-level (so it pickles under any multiprocessing
start method) and takes a small frozen dataclass describing the cell.  Tasks
*regenerate* their workload inside the worker from ``(workload, n, m,
seed)`` — shipping four scalars instead of a million-row trace array keeps
IPC negligible and makes cells independent of parent-process state.

Supported algorithm names (``SimulationTask.algorithm``):

====================  =====================================================
``kary-splaynet``     :class:`~repro.core.splaynet.KArySplayNet` (k from task)
``centroid-splaynet`` :class:`~repro.core.centroid_splaynet.CentroidSplayNet`
``splaynet``          binary :class:`~repro.splaynet.splaynet.SplayNet`
``lazy``              :class:`~repro.network.lazy.LazyRebuildNetwork`
``full-tree``         static full/complete k-ary tree
``centroid-tree``     static centroid k-ary tree
``optimal-tree``      optimal static routing-based k-ary tree (Theorem 2 DP)
``optimal-bst``       optimal static BST network (the [22] DP)
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.distance import trace_static_cost
from repro.core.builders import build_complete_tree
from repro.core.centroid import build_centroid_tree
from repro.core.centroid_splaynet import CentroidSplayNet
from repro.core.splaynet import KArySplayNet
from repro.errors import ExperimentError
from repro.network.lazy import LazyRebuildNetwork
from repro.network.simulator import Simulator
from repro.optimal.general import optimal_static_tree
from repro.splaynet.optimal import optimal_static_bst
from repro.splaynet.splaynet import SplayNet
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import (
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "SimulationTask",
    "SimulationTaskResult",
    "run_simulation_task",
    "static_cost_task",
    "materialize_trace",
    "NETWORK_FACTORIES",
    "STATIC_BUILDERS",
]


def materialize_trace(workload: str, n: int, m: int, seed: int) -> Trace:
    """Regenerate a workload trace inside a worker process.

    Mirrors :func:`repro.experiments.presets.make_workload` but is driven by
    explicit ``(n, m, seed)`` so tasks stay self-contained.
    """
    if workload == "uniform":
        return uniform_trace(n, m, seed)
    if workload == "hpc":
        return hpc_trace(n, m, seed)
    if workload == "projector":
        return projector_trace(n, m, seed)
    if workload == "facebook":
        return facebook_trace(n, m, seed)
    if workload.startswith("temporal-"):
        return temporal_trace(n, m, float(workload.split("-", 1)[1]), seed)
    if workload.startswith("zipf-"):
        return zipf_trace(n, m, alpha=float(workload.split("-", 1)[1]), seed=seed)
    raise ExperimentError(f"unknown workload {workload!r}")


# ----------------------------------------------------------------------
# algorithm registries
# ----------------------------------------------------------------------
def _make_kary_splaynet(n: int, k: int) -> KArySplayNet:
    return KArySplayNet(n, k, initial="complete")

def _make_centroid_splaynet(n: int, k: int) -> CentroidSplayNet:
    return CentroidSplayNet(n, k)

def _make_binary_splaynet(n: int, k: int) -> SplayNet:
    del k  # SplayNet is the k=2 baseline regardless of the axis value
    return SplayNet(n)

def _make_lazy(n: int, k: int) -> LazyRebuildNetwork:
    return LazyRebuildNetwork(n, k)


#: Online (self-adjusting) algorithm name → ``factory(n, k) -> network``.
NETWORK_FACTORIES: dict[str, Callable[[int, int], object]] = {
    "kary-splaynet": _make_kary_splaynet,
    "centroid-splaynet": _make_centroid_splaynet,
    "splaynet": _make_binary_splaynet,
    "lazy": _make_lazy,
}


def _build_full(trace: Trace, k: int):
    return build_complete_tree(trace.n, k)

def _build_centroid(trace: Trace, k: int):
    return build_centroid_tree(trace.n, k)

def _build_optimal_kary(trace: Trace, k: int):
    return optimal_static_tree(DemandMatrix.from_trace(trace), k).tree

def _build_optimal_bst(trace: Trace, k: int):
    del k
    return optimal_static_bst(DemandMatrix.from_trace(trace)).network


#: Static baseline name → ``builder(trace, k) -> tree``.
STATIC_BUILDERS: dict[str, Callable[[Trace, int], object]] = {
    "full-tree": _build_full,
    "centroid-tree": _build_centroid,
    "optimal-tree": _build_optimal_kary,
    "optimal-bst": _build_optimal_bst,
}


# ----------------------------------------------------------------------
# the task objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """One experiment cell: a workload served by one algorithm.

    Attributes
    ----------
    workload, n, m, seed:
        Trace coordinates, regenerated in the worker.
    algorithm:
        A key of :data:`NETWORK_FACTORIES` or :data:`STATIC_BUILDERS`.
    k:
        Tree arity (ignored by the binary baselines).
    """

    workload: str
    n: int
    m: int
    seed: int
    algorithm: str
    k: int = 2

    def __post_init__(self) -> None:
        if self.algorithm not in NETWORK_FACTORIES and self.algorithm not in STATIC_BUILDERS:
            raise ExperimentError(
                f"unknown algorithm {self.algorithm!r}; choose from "
                f"{sorted(NETWORK_FACTORIES) + sorted(STATIC_BUILDERS)}"
            )
        if self.k < 2:
            raise ExperimentError(f"k must be >= 2, got {self.k}")


@dataclass(frozen=True)
class SimulationTaskResult:
    """Scalar outcomes of one cell (small: safe to pipe back to the parent)."""

    task: SimulationTask
    total_routing: int
    total_rotations: int
    total_links_changed: int

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.task.m if self.task.m else 0.0


def run_simulation_task(task: SimulationTask) -> SimulationTaskResult:
    """Execute one cell: regenerate the trace, run the algorithm, reduce.

    Static baselines are costed through the distance oracle (no simulation
    loop); online algorithms run the full trace through the simulator.
    """
    trace = materialize_trace(task.workload, task.n, task.m, task.seed)
    if task.algorithm in STATIC_BUILDERS:
        tree = STATIC_BUILDERS[task.algorithm](trace, task.k)
        cost = trace_static_cost(tree, trace)
        return SimulationTaskResult(task, cost, 0, 0)
    network = NETWORK_FACTORIES[task.algorithm](task.n, task.k)
    run = Simulator().run(network, trace)
    return SimulationTaskResult(
        task, run.total_routing, run.total_rotations, run.total_links_changed
    )


def static_cost_task(task: SimulationTask) -> int:
    """Cost-only variant for static baselines (used by sweep reductions)."""
    if task.algorithm not in STATIC_BUILDERS:
        raise ExperimentError(
            f"static_cost_task requires a static algorithm, got {task.algorithm!r}"
        )
    return run_simulation_task(task).total_routing
