"""Picklable task functions for parallel experiment cells.

Every function here is module-level (so it pickles under any multiprocessing
start method) and takes a small frozen dataclass describing the cell.  Tasks
*regenerate* their workload inside the worker from ``(workload, n, m,
seed)`` — shipping four scalars instead of a million-row trace array keeps
IPC negligible and makes cells independent of parent-process state.
Regenerated traces are memoized per worker process (see
:func:`materialize_trace_cached`), so the up-to-27 cells of one paper table
materialize their shared trace once per worker rather than once per cell.

Supported algorithm names (``SimulationTask.algorithm``) are whatever the
network construction registry (:mod:`repro.net.registry`) knows: the
built-ins (``kary-splaynet``, ``centroid-splaynet``, ``splaynet``,
``lazy``, ``full-tree``, ``centroid-tree``, ``optimal-tree``,
``optimal-bst``) plus anything added via
:func:`repro.net.register_network` — a registered algorithm is
immediately runnable as a parallel experiment cell, no table edits here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.engine import ENGINES
from repro.errors import ExperimentError
from repro.net.registry import build_network, require_algorithm
from repro.net.spec import NetworkSpec, freeze_params
from repro.network.simulator import Simulator
from repro.workloads.datacenter import facebook_trace, hpc_trace, projector_trace
from repro.workloads.demand import DemandMatrix
from repro.workloads.synthetic import (
    permutation_trace,
    temporal_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace

__all__ = [
    "SimulationTask",
    "SimulationTaskResult",
    "run_simulation_task",
    "static_cost_task",
    "materialize_trace",
    "materialize_trace_cached",
    "materialize_demand_cached",
    "clear_trace_cache",
    "trace_cache_stats",
]


def materialize_trace(workload: str, n: int, m: int, seed: int) -> Trace:
    """Regenerate a workload trace inside a worker process.

    Mirrors :func:`repro.experiments.presets.make_workload` but is driven by
    explicit ``(n, m, seed)`` so tasks stay self-contained.
    """
    if workload == "uniform":
        return uniform_trace(n, m, seed)
    if workload == "hpc":
        return hpc_trace(n, m, seed)
    if workload == "projector":
        return projector_trace(n, m, seed)
    if workload == "facebook":
        return facebook_trace(n, m, seed)
    if workload == "permutation":
        return permutation_trace(n, m, seed)
    if workload.startswith("temporal-"):
        return temporal_trace(n, m, float(workload.split("-", 1)[1]), seed)
    if workload.startswith("zipf-"):
        return zipf_trace(n, m, alpha=float(workload.split("-", 1)[1]), seed=seed)
    raise ExperimentError(f"unknown workload {workload!r}")


# ----------------------------------------------------------------------
# per-worker trace memoization
# ----------------------------------------------------------------------
#: (workload, n, m, seed) → materialized trace, per process.  A paper table
#: fans out up to 27 cells over the *same* trace; without this cache every
#: cell regenerates it from scratch.
_TRACE_CACHE: dict[tuple[str, int, int, int], Trace] = {}
#: Same keys → the trace's demand matrix, shared by the static-optimum
#: cells of a table row (the DP subsystem's "dense demand computed once
#: per (workload, n, seed)" input; see repro.optimal.context for the
#: derived inputs shared below this layer).
_DEMAND_CACHE: dict[tuple[str, int, int, int], DemandMatrix] = {}
#: Keys pre-seeded with caller-provided traces (never auto-evicted: for
#: those, regeneration from coordinates would produce a *different* trace).
_PINNED_KEYS: set[tuple[str, int, int, int]] = set()
#: Bound on distinct auto-cached traces (a full reproduction touches 8
#: workloads; paper scale is ~8 MB per million-request trace).
_TRACE_CACHE_MAX = 16
_trace_cache_hits = 0
_trace_cache_misses = 0


def materialize_trace_cached(workload: str, n: int, m: int, seed: int) -> Trace:
    """Memoized :func:`materialize_trace` (per-process, bounded).

    Traces are immutable once generated, so sharing one instance across
    cells is safe; when the memo would exceed :data:`_TRACE_CACHE_MAX`
    distinct traces the auto-generated entries are dropped — pinned
    entries (:func:`seed_trace_cache`) always survive.
    """
    global _trace_cache_hits, _trace_cache_misses
    key = (workload, n, m, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        _trace_cache_misses += 1
        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            for stale in [k for k in _TRACE_CACHE if k not in _PINNED_KEYS]:
                del _TRACE_CACHE[stale]
        trace = materialize_trace(workload, n, m, seed)
        _TRACE_CACHE[key] = trace
    else:
        _trace_cache_hits += 1
    return trace


def seed_trace_cache(trace: Trace, workload: str, seed: int) -> tuple[str, int, int, int]:
    """Pre-seed (and pin) the memo with an explicit trace; returns the key.

    Used by the serial experiment adapters when a caller hands them a
    pre-built trace instead of workload coordinates.  Pinned entries are
    exempt from eviction until :func:`evict_trace` / :func:`clear_trace_cache`.
    """
    key = (workload, trace.n, trace.m, seed)
    _TRACE_CACHE[key] = trace
    # A demand counted from a previously *generated* trace under these
    # coordinates no longer describes the pinned trace — drop it, or the
    # static-optimum cells would build from the wrong workload.
    _DEMAND_CACHE.pop(key, None)
    _PINNED_KEYS.add(key)
    return key


def evict_trace(key: tuple[str, int, int, int]) -> None:
    """Drop one cache entry (undo of :func:`seed_trace_cache`)."""
    _TRACE_CACHE.pop(key, None)
    _DEMAND_CACHE.pop(key, None)
    _PINNED_KEYS.discard(key)


def clear_trace_cache() -> None:
    """Empty the per-process trace/demand memos and reset the counters."""
    global _trace_cache_hits, _trace_cache_misses
    _TRACE_CACHE.clear()
    _DEMAND_CACHE.clear()
    _PINNED_KEYS.clear()
    _trace_cache_hits = 0
    _trace_cache_misses = 0


def materialize_demand_cached(trace: Trace, task: "SimulationTask") -> DemandMatrix:
    """The demand matrix of a task's trace, memoized per process.

    Keyed by the task's trace coordinates (the same key as the trace
    memo, and evicted alongside it), so the up-to-9 static-optimum cells
    of a table row count their shared trace into a matrix once.
    """
    key = (task.workload, task.n, task.m, task.seed)
    demand = _DEMAND_CACHE.get(key)
    if demand is None:
        if len(_DEMAND_CACHE) >= _TRACE_CACHE_MAX:
            for stale in [k for k in _DEMAND_CACHE if k not in _PINNED_KEYS]:
                del _DEMAND_CACHE[stale]
        demand = DemandMatrix.from_trace(trace)
        _DEMAND_CACHE[key] = demand
    return demand


def trace_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of this process's trace memo (for tests)."""
    return {
        "hits": _trace_cache_hits,
        "misses": _trace_cache_misses,
        "size": len(_TRACE_CACHE),
    }


# ----------------------------------------------------------------------
# the task objects
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimulationTask:
    """One experiment cell: a workload served by one algorithm.

    Attributes
    ----------
    workload, n, m, seed:
        Trace coordinates, regenerated in the worker.
    algorithm:
        A name registered in :mod:`repro.net.registry` (online or static).
    k:
        Tree arity (ignored by the binary baselines).
    engine:
        Tree-engine backend for engine-capable algorithms (``None`` = the
        process default; ignored by the rest).
    initial:
        Initial topology name for ``kary-splaynet``.
    params:
        Frozen ``(name, value)`` algorithm parameters, forwarded to the
        network constructor (e.g. ``alpha`` for ``lazy``).
    """

    workload: str
    n: int
    m: int
    seed: int
    algorithm: str
    k: int = 2
    engine: Optional[str] = None
    initial: str = "complete"
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", freeze_params(self.params))
        require_algorithm(self.algorithm)
        if self.k < 2:
            raise ExperimentError(f"k must be >= 2, got {self.k}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )

    def network_spec(self) -> NetworkSpec:
        """The construction spec this cell builds its network from."""
        return NetworkSpec(
            algorithm=self.algorithm,
            n=self.n,
            k=self.k,
            engine=self.engine,
            initial=self.initial,
            params=self.params,
        )


@dataclass(frozen=True)
class SimulationTaskResult:
    """Scalar outcomes of one cell (small: safe to pipe back to the parent)."""

    task: SimulationTask
    total_routing: int
    total_rotations: int
    total_links_changed: int

    @property
    def average_routing(self) -> float:
        return self.total_routing / self.task.m if self.task.m else 0.0


def run_simulation_task(task: SimulationTask) -> SimulationTaskResult:
    """Execute one cell: regenerate the trace, run the algorithm, reduce.

    Both kinds build through :func:`repro.net.build_network`.  Static
    baselines are costed through their precomputed distance oracle in one
    vectorized ``serve_trace`` query (no simulation loop); online
    algorithms run the full trace through the simulator.  Demand-aware
    constructions receive the per-process memoized demand matrix
    (:func:`materialize_demand_cached`), so an arity sweep over one
    workload counts its trace into a matrix once.
    """
    trace = materialize_trace_cached(task.workload, task.n, task.m, task.seed)
    entry = require_algorithm(task.algorithm)
    if entry.kind == "static":
        demand = (
            materialize_demand_cached(trace, task) if entry.needs_demand else None
        )
        network = build_network(task.network_spec(), demand=demand)
        cost = int(network.serve_trace(trace.sources, trace.targets).total_routing)
        return SimulationTaskResult(task, cost, 0, 0)
    network = build_network(task.network_spec())
    run = Simulator().run(network, trace)
    return SimulationTaskResult(
        task, run.total_routing, run.total_rotations, run.total_links_changed
    )


def static_cost_task(task: SimulationTask) -> int:
    """Cost-only variant for static baselines (used by sweep reductions)."""
    if require_algorithm(task.algorithm).kind != "static":
        raise ExperimentError(
            f"static_cost_task requires a static algorithm, got {task.algorithm!r}"
        )
    return run_simulation_task(task).total_routing
