"""Process-pool map primitives with deterministic ordering and recovery.

A thin, dependency-free layer over :class:`concurrent.futures` tuned for the
shape of this repository's workloads: tens-to-hundreds of medium-grained
tasks (one trace simulation each), where result *order* must match
submission order and failures must surface with context rather than as bare
tracebacks from a worker.

Why not ``multiprocessing.Pool.map`` directly?  Four reasons:

* serial fallback — ``jobs=1`` runs in-process, so unit tests exercise the
  exact task functions without fork overhead and coverage tools see them;
* chunk sizing — tasks here are seconds-long, so the default is one task
  per dispatch (``chunk_size=1``); callers batching many micro-tasks can
  raise it;
* failure policy — ``on_error="raise"`` (default) re-raises the first
  failure with the offending item attached; ``on_error="collect"`` returns
  per-item :class:`TaskOutcome` records so a sweep survives isolated cell
  failures (e.g. an optimal-tree DP that exceeds a node budget);
* recovery — transient failures are retried with deterministic
  exponential backoff (``retries``/``backoff``), stuck tasks are bounded
  by a per-dispatch wall-clock ``task_timeout``, and a worker killed
  mid-task (``BrokenProcessPool``) triggers an executor **respawn** that
  resubmits only the unfinished chunks — a crashed worker costs one
  respawn, never the campaign.

The fault-injection point ``pool.task`` (see
:mod:`repro.reliability.faults`) fires inside the per-item execution
wrapper on both the serial and pooled paths, so the recovery machinery
above is pinned by tests that deterministically crash it.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Literal, Optional, Sequence, TypeVar

from repro.errors import ExperimentError, ReliabilityError
from repro.reliability.faults import fire_fault, kill_process
from repro.reliability.retry import RetryPolicy

__all__ = [
    "ParallelConfig",
    "TaskOutcome",
    "cpu_jobs",
    "parallel_map",
    "parallel_map_outcomes",
    "parallel_starmap",
]

T = TypeVar("T")
R = TypeVar("R")


def cpu_jobs(reserve: int = 1, *, cap: Optional[int] = None) -> int:
    """A sensible worker count: ``cpu_count - reserve``, at least 1.

    ``reserve`` keeps cores free for the parent process and the OS; ``cap``
    bounds the result (e.g. when tasks are memory-hungry).
    """
    count = os.cpu_count() or 1
    jobs = max(1, count - max(0, reserve))
    if cap is not None:
        jobs = max(1, min(jobs, cap))
    return jobs


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs shared by :func:`parallel_map` and the sweep engine.

    Attributes
    ----------
    jobs:
        Worker process count. ``1`` (default) executes serially in the
        calling process; ``0`` or negative resolves to :func:`cpu_jobs`.
    chunk_size:
        Items handed to a worker per dispatch.  Keep at 1 for seconds-long
        tasks; raise for micro-tasks to amortize IPC.  Retries and
        timeouts apply per *chunk*, so recovery granularity follows this.
    on_error:
        ``"raise"`` aborts on the first failure; ``"collect"`` records
        failures per item and keeps going.
    max_pending:
        Backpressure bound: at most this many unfinished futures in flight
        (defaults to ``4 * jobs``), so a million-item iterable does not
        materialize in the executor queue.
    retries:
        Re-attempts per chunk after its first failure (``0`` = fail fast).
        Applies to both the serial and pooled paths; only ``Exception``
        subclasses are retried.
    backoff:
        Base delay (seconds) of the deterministic exponential backoff
        between re-attempts (``backoff * 2**attempt``, capped at 2s).
    task_timeout:
        Wall-clock bound (seconds) for one dispatched chunk — pooled
        execution only.  A chunk running past it is charged a failed
        attempt and its (possibly stuck) executor is torn down and
        respawned; the serial path cannot preempt and ignores this.
    pool_respawns:
        How many times a broken or deliberately torn-down executor
        (killed worker, timed-out chunk) may be respawned before the run
        gives up with :class:`~repro.errors.ReliabilityError`.
    """

    jobs: int = 1
    chunk_size: int = 1
    on_error: Literal["raise", "collect"] = "raise"
    max_pending: Optional[int] = None
    retries: int = 0
    backoff: float = 0.05
    task_timeout: Optional[float] = None
    pool_respawns: int = 2

    def resolved_jobs(self) -> int:
        if self.jobs >= 1:
            return self.jobs
        return cpu_jobs()

    def resolved_pending(self) -> int:
        if self.max_pending is not None:
            if self.max_pending < 1:
                raise ExperimentError("max_pending must be >= 1")
            return self.max_pending
        return 4 * self.resolved_jobs()

    def retry_policy(self) -> RetryPolicy:
        """The :class:`RetryPolicy` this config's retry knobs describe."""
        return RetryPolicy(retries=self.retries, base=self.backoff)

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ExperimentError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.on_error not in ("raise", "collect"):
            raise ExperimentError(
                f"on_error must be 'raise' or 'collect', got {self.on_error!r}"
            )
        if self.retries < 0:
            raise ExperimentError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ExperimentError(f"backoff must be >= 0, got {self.backoff}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ExperimentError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )
        if self.pool_respawns < 0:
            raise ExperimentError(
                f"pool_respawns must be >= 0, got {self.pool_respawns}"
            )


@dataclass
class TaskOutcome:
    """Result envelope for one input item under ``on_error='collect'``."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_item(fn: Callable[[T], R], item: T) -> R:
    """Execute one item, firing the ``pool.task`` injection point first.

    ``error`` faults raise :class:`~repro.errors.FaultInjected` (absorbed
    by the retry layer like any transient failure); ``kill`` faults
    hard-exit the hosting process — in a worker that simulates SIGKILL
    and surfaces as ``BrokenProcessPool`` in the parent.
    """
    spec = fire_fault("pool.task", context=repr(item))
    if spec is not None and spec.mode == "kill":
        kill_process(spec)
    return fn(item)


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Worker-side loop (module-level so it pickles under spawn)."""
    return [_call_item(fn, item) for item in chunk]


def _serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> list[TaskOutcome]:
    policy = config.retry_policy()
    outcomes: list[TaskOutcome] = []
    for index, item in enumerate(items):
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = TaskOutcome(
                    index, value=_call_item(fn, item), attempts=attempts
                )
                break
            except Exception as exc:  # noqa: BLE001 - policy decides
                if attempts <= config.retries and policy.is_transient(exc):
                    delay = policy.delay(attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if config.on_error == "raise":
                    raise ExperimentError(
                        f"task {index} failed on item {item!r}: {exc}"
                    ) from exc
                outcome = TaskOutcome(index, error=exc, attempts=attempts)
                break
        if on_outcome is not None:
            on_outcome(outcome)
        outcomes.append(outcome)
    return outcomes


def _chunks(items: Sequence[T], size: int) -> list[tuple[int, Sequence[T]]]:
    return [
        (start, items[start : start + size])
        for start in range(0, len(items), size)
    ]


@dataclass
class _ChunkState:
    """Scheduling state of one dispatched chunk (retries, backoff)."""

    start: int
    items: Sequence[Any]
    attempts: int = 0
    not_before: float = field(default=0.0, repr=False)


def _parallel_outcomes(
    fn: Callable[[T], R],
    items: Sequence[T],
    config: ParallelConfig,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> list[TaskOutcome]:
    """The pooled scheduler: backpressure, retries, timeouts, respawns.

    Invariants: every chunk reaches exactly one terminal state (success
    or failure), terminal outcomes are emitted to ``on_outcome`` in
    completion order, and the returned list is in submission order.
    """
    jobs = config.resolved_jobs()
    max_pending = config.resolved_pending()
    policy = config.retry_policy()
    outcomes: list[Optional[TaskOutcome]] = [None] * len(items)
    pending: deque[_ChunkState] = deque(
        _ChunkState(start, chunk)
        for start, chunk in _chunks(items, config.chunk_size)
    )
    respawns_left = config.pool_respawns

    def emit_success(state: _ChunkState, values: list[Any]) -> None:
        for offset, value in enumerate(values):
            outcome = TaskOutcome(
                state.start + offset, value=value, attempts=state.attempts + 1
            )
            outcomes[outcome.index] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

    def emit_failure(state: _ChunkState, exc: BaseException) -> None:
        if config.on_error == "raise":
            raise ExperimentError(
                f"task chunk starting at {state.start} failed after"
                f" {state.attempts} attempt(s): {exc}"
            ) from exc
        for offset in range(len(state.items)):
            outcome = TaskOutcome(
                state.start + offset, error=exc, attempts=state.attempts
            )
            outcomes[outcome.index] = outcome
            if on_outcome is not None:
                on_outcome(outcome)

    def charge_attempt(state: _ChunkState, exc: BaseException) -> None:
        """One failed attempt: requeue with backoff, or go terminal."""
        state.attempts += 1
        if state.attempts <= config.retries and policy.is_transient(exc):
            state.not_before = time.monotonic() + policy.delay(state.attempts)
            pending.append(state)
        else:
            emit_failure(state, exc)

    pool = ProcessPoolExecutor(max_workers=jobs)
    in_flight: dict[Any, tuple[_ChunkState, Optional[float]]] = {}

    def respawn(cause: BaseException, reason: str) -> None:
        """Tear down the executor, resubmit every unfinished chunk."""
        nonlocal pool, respawns_left
        if respawns_left <= 0:
            raise ReliabilityError(
                f"worker pool gave up after {config.pool_respawns} respawn(s):"
                f" {reason}: {cause}"
            ) from cause
        respawns_left -= 1
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=jobs)
        # Unfinished in-flight chunks go back to the queue; the caller
        # charges the blamed chunk separately.
        for state, _ in in_flight.values():
            pending.append(state)
        in_flight.clear()

    try:
        while pending or in_flight:
            # -- submit every ready chunk within the backpressure bound --
            now = time.monotonic()
            for _ in range(len(pending)):
                if len(in_flight) >= max_pending:
                    break
                state = pending.popleft()
                if state.not_before > now:
                    pending.append(state)  # still backing off; rotate past
                    continue
                deadline = (
                    now + config.task_timeout
                    if config.task_timeout is not None
                    else None
                )
                future = pool.submit(_run_chunk, fn, state.items)
                in_flight[future] = (state, deadline)
            if not in_flight:
                # Everything runnable is backing off: sleep to the soonest.
                soonest = min(state.not_before for state in pending)
                time.sleep(max(0.0, soonest - time.monotonic()))
                continue

            # -- wait for completions (bounded by deadlines/backoffs) ----
            horizons = [
                deadline for _, deadline in in_flight.values() if deadline
            ]
            if pending:
                horizons.extend(
                    state.not_before
                    for state in pending
                    if state.not_before > 0
                )
            timeout = (
                max(0.0, min(horizons) - time.monotonic()) if horizons else None
            )
            done, _ = wait(
                set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
            )

            broken: Optional[tuple[_ChunkState, BaseException]] = None
            for future in done:
                state, _deadline = in_flight.pop(future)
                try:
                    values = future.result()
                except BrokenProcessPool as exc:
                    # The executor died under this chunk (a killed
                    # worker).  Every other in-flight future is dead too;
                    # stop collecting and rebuild below.
                    broken = (state, exc)
                    break
                except Exception as exc:  # noqa: BLE001 - policy decides
                    charge_attempt(state, exc)
                else:
                    emit_success(state, values)

            if broken is not None:
                state, exc = broken
                respawn(exc, f"worker died running chunk at {state.start}")
                # The surfacing chunk is charged an attempt (a chunk that
                # *always* kills its worker must not loop forever); the
                # other resubmitted chunks ride the respawn for free.
                charge_attempt(state, exc)
                continue

            # -- reap chunks that outran their wall-clock budget ---------
            now = time.monotonic()
            timed_out = [
                future
                for future, (_state, deadline) in in_flight.items()
                if deadline is not None and deadline <= now
            ]
            if timed_out:
                # A stuck worker cannot be preempted; reclaim it by
                # tearing the executor down (costs one respawn).
                states = [in_flight.pop(future)[0] for future in timed_out]
                cause = ReliabilityError(
                    f"chunk(s) at {[s.start for s in states]} exceeded"
                    f" task_timeout={config.task_timeout}s"
                )
                respawn(cause, "task timeout")
                for state in states:
                    charge_attempt(state, cause)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return [outcome for outcome in outcomes if outcome is not None]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order in the output.

    ``fn`` and every item must be picklable when ``jobs > 1`` (use
    module-level functions and plain dataclasses).  With the default
    ``on_error="raise"`` the return is a plain list of results; under
    ``on_error="collect"`` failed slots are *omitted* — use
    :func:`parallel_map_outcomes` when you need the per-item envelopes.
    """
    outcomes = parallel_map_outcomes(fn, items, config=config, jobs=jobs)
    return [outcome.value for outcome in outcomes if outcome.ok]


def parallel_map_outcomes(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
) -> list[TaskOutcome]:
    """Like :func:`parallel_map` but returns :class:`TaskOutcome` envelopes.

    ``on_outcome`` (optional) is called in the parent process with each
    *terminal* outcome the moment it is known — in completion order,
    which under pooled execution may differ from submission order.  Sinks
    hook in here so a killed campaign keeps every finished cell.
    """
    if config is not None and jobs is not None and config.jobs != jobs:
        raise ExperimentError("pass either config or jobs, not conflicting both")
    if config is None:
        config = ParallelConfig(jobs=jobs if jobs is not None else 1)
    materialized = list(items)
    if not materialized:
        return []
    if config.resolved_jobs() == 1 or len(materialized) == 1:
        return _serial_map(fn, materialized, config, on_outcome)
    return _parallel_outcomes(fn, materialized, config, on_outcome)


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[tuple],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
) -> list[R]:
    """``parallel_map`` for functions of several arguments."""
    return parallel_map(
        _StarCall(fn), list(argument_tuples), config=config, jobs=jobs
    )


@dataclass(frozen=True)
class _StarCall:
    """Picklable adapter turning ``fn(*args)`` into a single-argument call."""

    fn: Callable[..., Any]

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)
