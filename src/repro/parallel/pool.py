"""Process-pool map primitives with deterministic ordering.

A thin, dependency-free layer over :class:`concurrent.futures` tuned for the
shape of this repository's workloads: tens-to-hundreds of medium-grained
tasks (one trace simulation each), where result *order* must match
submission order and failures must surface with context rather than as bare
tracebacks from a worker.

Why not ``multiprocessing.Pool.map`` directly?  Three reasons:

* serial fallback — ``jobs=1`` runs in-process, so unit tests exercise the
  exact task functions without fork overhead and coverage tools see them;
* chunk sizing — tasks here are seconds-long, so the default is one task
  per dispatch (``chunk_size=1``); callers batching many micro-tasks can
  raise it;
* failure policy — ``on_error="raise"`` (default) re-raises the first
  failure with the offending item attached; ``on_error="collect"`` returns
  per-item :class:`TaskOutcome` records so a sweep survives isolated cell
  failures (e.g. an optimal-tree DP that exceeds a node budget).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Literal, Optional, Sequence, TypeVar

from repro.errors import ExperimentError

__all__ = [
    "ParallelConfig",
    "TaskOutcome",
    "cpu_jobs",
    "parallel_map",
    "parallel_starmap",
]

T = TypeVar("T")
R = TypeVar("R")


def cpu_jobs(reserve: int = 1, *, cap: Optional[int] = None) -> int:
    """A sensible worker count: ``cpu_count - reserve``, at least 1.

    ``reserve`` keeps cores free for the parent process and the OS; ``cap``
    bounds the result (e.g. when tasks are memory-hungry).
    """
    count = os.cpu_count() or 1
    jobs = max(1, count - max(0, reserve))
    if cap is not None:
        jobs = max(1, min(jobs, cap))
    return jobs


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs shared by :func:`parallel_map` and the sweep engine.

    Attributes
    ----------
    jobs:
        Worker process count. ``1`` (default) executes serially in the
        calling process; ``0`` or negative resolves to :func:`cpu_jobs`.
    chunk_size:
        Items handed to a worker per dispatch.  Keep at 1 for seconds-long
        tasks; raise for micro-tasks to amortize IPC.
    on_error:
        ``"raise"`` aborts on the first failure; ``"collect"`` records
        failures per item and keeps going.
    max_pending:
        Backpressure bound: at most this many unfinished futures in flight
        (defaults to ``4 * jobs``), so a million-item iterable does not
        materialize in the executor queue.
    """

    jobs: int = 1
    chunk_size: int = 1
    on_error: Literal["raise", "collect"] = "raise"
    max_pending: Optional[int] = None

    def resolved_jobs(self) -> int:
        if self.jobs >= 1:
            return self.jobs
        return cpu_jobs()

    def resolved_pending(self) -> int:
        if self.max_pending is not None:
            if self.max_pending < 1:
                raise ExperimentError("max_pending must be >= 1")
            return self.max_pending
        return 4 * self.resolved_jobs()

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ExperimentError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.on_error not in ("raise", "collect"):
            raise ExperimentError(
                f"on_error must be 'raise' or 'collect', got {self.on_error!r}"
            )


@dataclass
class TaskOutcome:
    """Result envelope for one input item under ``on_error='collect'``."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Worker-side loop (module-level so it pickles under spawn)."""
    return [fn(item) for item in chunk]


def _serial_map(
    fn: Callable[[T], R], items: Sequence[T], config: ParallelConfig
) -> list[TaskOutcome]:
    outcomes: list[TaskOutcome] = []
    for index, item in enumerate(items):
        try:
            outcomes.append(TaskOutcome(index, value=fn(item)))
        except Exception as exc:  # noqa: BLE001 - policy decides
            if config.on_error == "raise":
                raise ExperimentError(
                    f"task {index} failed on item {item!r}: {exc}"
                ) from exc
            outcomes.append(TaskOutcome(index, error=exc))
    return outcomes


def _chunks(items: Sequence[T], size: int) -> list[tuple[int, Sequence[T]]]:
    return [
        (start, items[start : start + size])
        for start in range(0, len(items), size)
    ]


def _parallel_outcomes(
    fn: Callable[[T], R], items: Sequence[T], config: ParallelConfig
) -> list[TaskOutcome]:
    jobs = config.resolved_jobs()
    max_pending = config.resolved_pending()
    pending_chunks = _chunks(items, config.chunk_size)
    outcomes: list[Optional[TaskOutcome]] = [None] * len(items)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        in_flight: dict[Any, tuple[int, Sequence[T]]] = {}
        cursor = 0
        while cursor < len(pending_chunks) or in_flight:
            while cursor < len(pending_chunks) and len(in_flight) < max_pending:
                start, chunk = pending_chunks[cursor]
                future = pool.submit(_run_chunk, fn, chunk)
                in_flight[future] = (start, chunk)
                cursor += 1
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                start, chunk = in_flight.pop(future)
                try:
                    values = future.result()
                except Exception as exc:  # noqa: BLE001 - policy decides
                    if config.on_error == "raise":
                        raise ExperimentError(
                            f"task chunk starting at {start} failed: {exc}"
                        ) from exc
                    for offset in range(len(chunk)):
                        outcomes[start + offset] = TaskOutcome(
                            start + offset, error=exc
                        )
                else:
                    for offset, value in enumerate(values):
                        outcomes[start + offset] = TaskOutcome(
                            start + offset, value=value
                        )
    return [outcome for outcome in outcomes if outcome is not None]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order in the output.

    ``fn`` and every item must be picklable when ``jobs > 1`` (use
    module-level functions and plain dataclasses).  With the default
    ``on_error="raise"`` the return is a plain list of results; under
    ``on_error="collect"`` failed slots are *omitted* — use
    :func:`parallel_map_outcomes` when you need the per-item envelopes.
    """
    outcomes = parallel_map_outcomes(fn, items, config=config, jobs=jobs)
    return [outcome.value for outcome in outcomes if outcome.ok]


def parallel_map_outcomes(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
) -> list[TaskOutcome]:
    """Like :func:`parallel_map` but returns :class:`TaskOutcome` envelopes."""
    if config is not None and jobs is not None and config.jobs != jobs:
        raise ExperimentError("pass either config or jobs, not conflicting both")
    if config is None:
        config = ParallelConfig(jobs=jobs if jobs is not None else 1)
    materialized = list(items)
    if not materialized:
        return []
    if config.resolved_jobs() == 1 or len(materialized) == 1:
        return _serial_map(fn, materialized, config)
    return _parallel_outcomes(fn, materialized, config)


def parallel_starmap(
    fn: Callable[..., R],
    argument_tuples: Iterable[tuple],
    *,
    config: Optional[ParallelConfig] = None,
    jobs: Optional[int] = None,
) -> list[R]:
    """``parallel_map`` for functions of several arguments."""
    return parallel_map(
        _StarCall(fn), list(argument_tuples), config=config, jobs=jobs
    )


@dataclass(frozen=True)
class _StarCall:
    """Picklable adapter turning ``fn(*args)`` into a single-argument call."""

    fn: Callable[..., Any]

    def __call__(self, args: tuple) -> Any:
        return self.fn(*args)
