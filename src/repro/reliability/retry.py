"""Bounded retry with deterministic exponential backoff.

One small policy object shared by every retry site in the repository (the
pool's serial and process paths, and any caller wrapping a flaky external
step).  Delays are deterministic — ``base * factor**attempt``, capped —
because reproducibility is the house rule: a retried campaign must behave
identically run to run, so there is no jitter by default.  When many
clients retry in lockstep (the thundering-herd shape the ingress gateway
sees after a shard failover), *seeded* jitter spreads them out without
giving up reproducibility: the same seed always yields the same schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ReliabilityError

__all__ = ["RetryPolicy", "backoff_delays", "call_with_retries"]

R = TypeVar("R")

# Large odd multiplier decorrelates the per-attempt RNG streams derived
# from one seed; any fixed odd constant works, reproducibility only needs
# it to never change.
_JITTER_STREAM_STRIDE = 1_000_003


def _jittered(delay: float, jitter: float, seed: Optional[int], attempt: int) -> float:
    """Spread ``delay`` uniformly over ``[delay*(1-j), delay*(1+j)]``.

    Deterministic per ``(seed, attempt)`` so a reseeded rerun sleeps the
    exact same schedule; clamped at zero so jitter never goes negative.
    """
    if jitter == 0 or delay == 0:
        return delay
    rng = random.Random(
        attempt if seed is None else seed * _JITTER_STREAM_STRIDE + attempt
    )
    spread = delay * jitter
    return max(0.0, delay - spread + rng.random() * 2 * spread)


def backoff_delays(
    retries: int,
    *,
    base: float = 0.05,
    factor: float = 2.0,
    cap: float = 2.0,
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> list[float]:
    """The sleep schedule for ``retries`` re-attempts: [base, base*factor, ...].

    Deterministic and capped; ``retries=0`` returns an empty schedule.
    ``jitter`` (a fraction in ``[0, 1]``, default off) widens each capped
    delay ``d`` to a seeded-uniform draw from ``[d*(1-jitter),
    d*(1+jitter)]`` — the same ``seed`` always reproduces the same
    schedule.
    """
    if retries < 0:
        raise ReliabilityError(f"retries must be >= 0, got {retries}")
    if not 0.0 <= jitter <= 1.0:
        raise ReliabilityError(f"jitter must be in [0, 1], got {jitter}")
    return [
        _jittered(min(cap, base * factor**i), jitter, seed, i + 1)
        for i in range(retries)
    ]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt a failed task, and how fast.

    Attributes
    ----------
    retries:
        Re-attempts after the first try (``0`` = fail fast, the default).
    base, factor, cap:
        Exponential-backoff schedule parameters (seconds); see
        :func:`backoff_delays`.
    jitter, seed:
        Seeded bounded jitter (default off).  ``jitter`` is the fraction
        of each delay to spread over; ``seed`` pins the draw so reruns
        sleep identically.
    retry_on:
        Exception classes considered transient.  Anything else fails
        immediately regardless of budget.  Default: every ``Exception``.
    """

    retries: int = 0
    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.0
    seed: Optional[int] = None
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ReliabilityError(f"retries must be >= 0, got {self.retries}")
        if self.base < 0 or self.factor < 1 or self.cap < 0:
            raise ReliabilityError(
                "backoff needs base >= 0, factor >= 1, cap >= 0; got "
                f"base={self.base}, factor={self.factor}, cap={self.cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReliabilityError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> list[float]:
        """The full deterministic sleep schedule for this policy."""
        return backoff_delays(
            self.retries,
            base=self.base,
            factor=self.factor,
            cap=self.cap,
            jitter=self.jitter,
            seed=self.seed,
        )

    def delay(self, attempt: int) -> float:
        """Sleep before re-attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ReliabilityError(f"attempt is 1-based, got {attempt}")
        bare = min(self.cap, self.base * self.factor ** (attempt - 1))
        return _jittered(bare, self.jitter, self.seed, attempt)

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)


def call_with_retries(
    fn: Callable[[], R],
    policy: RetryPolicy,
    *,
    sleep: Optional[Callable[[float], None]] = None,
) -> R:
    """Run ``fn`` under ``policy``; re-raise the last failure when spent.

    ``sleep`` is injectable for tests (default: :func:`time.sleep`).
    """
    do_sleep = time.sleep if sleep is None else sleep
    attempt = 0
    while True:
        try:
            return fn()
        except policy.retry_on:
            attempt += 1
            if attempt > policy.retries:
                raise
            delay = policy.delay(attempt)
            if delay > 0:
                do_sleep(delay)
