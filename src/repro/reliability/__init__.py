"""Fault tolerance: injection harness, retry policy, recovery plumbing.

The serving story of a self-adjusting network is resilience — the
topology absorbs whatever the workload does to it.  This package gives
the *infrastructure* the same property:

* :mod:`repro.reliability.faults` — deterministic, replayable fault
  injection (worker crashes, torn sink writes, corrupted kernel caches,
  corrupted snapshots) behind named points and the ``REPRO_FAULTS``
  environment hook, so every recovery path below is pinned by tests that
  *cause* the failure;
* :mod:`repro.reliability.retry` — the one bounded-retry /
  exponential-backoff policy (optionally with seeded bounded jitter),
  shared by the pool and ingress paths;
* :mod:`repro.reliability.chaos` — the chaos soak harness
  (``repro chaos``): seeded multi-round fault storms against a live
  ``repro serve`` process under concurrent client load, gated on hard
  end-state invariants (totals equal a clean run, no dropped admitted
  request, every shard healthy at drain);
* pool hardening lives in :mod:`repro.parallel.pool` (per-task timeouts,
  retry, ``BrokenProcessPool`` respawn-and-resubmit), campaign resume in
  :mod:`repro.scenarios.core` (``run_specs(resume=True)``), and session
  auto-checkpointing in :mod:`repro.net.session`
  (``checkpoint_every`` / ``recover()`` / ``audit()``).

Errors: :class:`~repro.errors.ReliabilityError` (recovery impossible or
corruption detected) and its subclass :class:`~repro.errors.FaultInjected`
(raised only by the harness, never organically).
"""

from repro.errors import FaultInjected, ReliabilityError
from repro.reliability.chaos import ChaosConfig, run_chaos, write_chaos_record
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    active_fault_plan,
    clear_fault_plan,
    fire_fault,
    inject_faults,
    install_fault_plan,
)
from repro.reliability.retry import RetryPolicy, backoff_delays, call_with_retries

__all__ = [
    "FAULTS_ENV",
    "ChaosConfig",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "ReliabilityError",
    "RetryPolicy",
    "active_fault_plan",
    "backoff_delays",
    "call_with_retries",
    "clear_fault_plan",
    "fire_fault",
    "inject_faults",
    "install_fault_plan",
    "run_chaos",
    "write_chaos_record",
]
