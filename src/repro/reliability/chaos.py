"""Chaos soak harness: seeded fault storms against a live serve process.

The fault-injection drills in :mod:`repro.reliability.faults` prove each
recovery path in isolation.  This module composes them: it boots a real
``repro serve`` process (ingress gateway + sharded farm, exactly what
production runs), drives concurrent client load at it, and — seeded and
reproducibly — storms it for several rounds:

* every round SIGKILLs one shard worker (round-robin, so a full soak
  kills **every** shard at least once) while client lanes keep pumping;
* an injected :class:`~repro.reliability.faults.FaultPlan` (inherited by
  the server via ``REPRO_FAULTS``) fires ``error``-mode faults at the
  ``ingress.accept``, ``ingress.dispatch`` and ``farm.serve`` points at
  seeded invocation indices, exercising the client retry policy, the
  ingress circuit breakers and the farm's reactive replay on top of the
  kills.  The plan is ledger-backed so a fired index stays fired across
  worker respawns (a replayed journal must not re-trip old faults);
* a control connection polls the v2 ``METRICS`` response (per-shard pid
  / health / breaker trailer) to time **detection** (the supervisor
  noticing the kill) and **recovery** (the shard healthy again under a
  new pid) from the outside, exactly as an operator would.

Because every layer below is exactly-once (the farm journals and replays
acknowledged batches; lanes resubmit only on *known-not-served* outcomes
— ``OVERLOAD`` responses and injected-fault ``ERROR`` responses, both
answered before any serving happened), the soak can check hard end-state
invariants rather than "it didn't crash":

* client-observed cost totals are cell-for-cell equal to a clean
  single-process oracle run of the same keyed stream;
* no admitted request was dropped: every lane request was eventually
  served, and the server's ``admitted == served + errors`` at drain
  (no deadlines are set, so nothing expires post-admission);
* every shard reports ``healthy`` at drain, and SIGTERM drains to a
  clean exit.

Run via ``repro chaos --seed S --rounds R``; records go to
``benchmarks/results/BENCH_chaos.json`` for ``repro bench-report``.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.errors import (
    IngressError,
    IngressOverload,
    ReliabilityError,
)
from repro.reliability.faults import FAULTS_ENV, FaultPlan, FaultSpec

__all__ = ["ChaosConfig", "run_chaos", "write_chaos_record"]

_ALGORITHM = "kary-splaynet"

#: Fault points stormed by default (all ``error`` mode — ``kill`` mode on
#: the ingress points would take the whole gateway down, which is the
#: controller's job to do per-shard via SIGKILL instead).
DEFAULT_FAULT_POINTS = ("ingress.accept", "ingress.dispatch", "farm.serve")


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible soak: workload shape, storm schedule, deadlines.

    ``seed`` pins everything random — the Zipf workload, the fault
    invocation indices — so a failing soak replays identically from its
    printed seed.  ``rounds`` should be >= ``shards`` so the round-robin
    victim selection kills every shard at least once.
    """

    n: int = 128
    k: int = 4
    keys: int = 6
    shards: int = 2
    rounds: int = 2
    requests_per_round: int = 400
    zipf_alpha: float = 1.2
    seed: int = 0
    engine: Optional[str] = None
    batch_window: float = 0.002
    batch_max: int = 64
    health_interval: float = 0.05
    suspect_after: float = 0.2
    down_after: float = 0.6
    checkpoint_every: int = 64
    fault_points: tuple[str, ...] = DEFAULT_FAULT_POINTS
    faults_per_point: int = 2
    recovery_timeout: float = 30.0
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        for name in ("keys", "shards", "rounds", "requests_per_round"):
            if getattr(self, name) < 1:
                raise ReliabilityError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.requests_per_round < self.keys:
            raise ReliabilityError(
                "requests_per_round must be >= keys so every lane has"
                " work each round"
            )
        if self.faults_per_point < 0:
            raise ReliabilityError(
                f"faults_per_point must be >= 0, got {self.faults_per_point}"
            )


# ----------------------------------------------------------------------
# workload + oracle
# ----------------------------------------------------------------------
def _keyed_lanes(config: ChaosConfig) -> dict[str, list[tuple[int, int]]]:
    """Per-key request lanes (the serve discipline is order-dependent
    *per key*, so each lane must stay serial; lanes are independent)."""
    from repro.workloads.synthetic import zipf_trace

    total = config.rounds * config.requests_per_round
    trace = zipf_trace(config.n, total, config.zipf_alpha, config.seed)
    sources = trace.sources.tolist()
    targets = trace.targets.tolist()
    lanes: dict[str, list[tuple[int, int]]] = {
        f"key-{i}": [] for i in range(config.keys)
    }
    for i in range(total):
        lanes[f"key-{i % config.keys}"].append((sources[i], targets[i]))
    return lanes


def _round_slice(pairs: list, rnd: int, rounds: int) -> list:
    """Round ``rnd``'s contiguous slice of one lane (order preserved)."""
    per = len(pairs) // rounds
    start = rnd * per
    end = start + per if rnd < rounds - 1 else len(pairs)
    return pairs[start:end]


def _clean_totals(
    lanes: dict[str, list[tuple[int, int]]], config: ChaosConfig
) -> list[int]:
    """Oracle totals: one fresh in-process session per key, in order."""
    from repro.net.session import open_session

    totals = [0, 0, 0, 0]
    for key in sorted(lanes):
        session = open_session(
            _ALGORITHM, n=config.n, k=config.k, engine=config.engine
        )
        batch = session.serve_stream(
            [u for u, _ in lanes[key]], [v for _, v in lanes[key]]
        )
        totals[0] += batch.m
        totals[1] += batch.total_routing
        totals[2] += batch.total_rotations
        totals[3] += batch.total_links_changed
    return totals


def _storm_plan(config: ChaosConfig, ledger: str) -> FaultPlan:
    """Seeded error-mode fault schedule over the configured points.

    Indices are drawn once from the soak seed; the ledger makes each
    index fire exactly once across *all* server-side processes, so a
    respawned worker replaying its journal cannot re-trip a fault that
    already fired in its predecessor.
    """
    rng = random.Random(config.seed)
    specs = []
    for point in config.fault_points:
        if config.faults_per_point == 0:
            continue
        # Low-ish indices so the faults actually land inside the soak
        # window, but never index 1: let each path warm up cleanly.
        # Accept events are rare (one per client connection), so its
        # indices stay tight; dispatch/serve windows number in the
        # hundreds and can spread out.
        if point == "ingress.accept":
            population = range(2, 2 + 6 * config.faults_per_point)
        else:
            population = range(3, 3 + 30 * config.faults_per_point)
        at = tuple(sorted(rng.sample(population, config.faults_per_point)))
        specs.append(
            FaultSpec(point, mode="error", at=at, detail="chaos storm")
        )
    return FaultPlan(specs=tuple(specs), ledger=ledger)


# ----------------------------------------------------------------------
# the live server under test
# ----------------------------------------------------------------------
def _spawn_server(config: ChaosConfig, plan: FaultPlan) -> tuple:
    """Boot ``repro serve`` with fast health deadlines and the storm plan."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    env[FAULTS_ENV] = plan.to_env()
    args = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--host", config.host,
        "-n", str(config.n),
        "-k", str(config.k),
        "--shards", str(config.shards),
        "--batch-window", str(config.batch_window),
        "--batch-max", str(config.batch_max),
        "--health-interval", str(config.health_interval),
        "--suspect-after", str(config.suspect_after),
        "--down-after", str(config.down_after),
        "--checkpoint-every", str(config.checkpoint_every),
        # Generous budget: every round's kill spends one respawn.
        "--max-respawns", str(config.rounds * 2 + 2),
    ]
    if config.engine:
        args += ["--engine", config.engine]
    proc = subprocess.Popen(
        args,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.match(r"ingress listening on (\S+):(\d+)", line)
    if not match:
        proc.kill()
        err = proc.stderr.read() if proc.stderr else ""
        raise ReliabilityError(
            f"chaos target failed to start (got {line!r}): {err.strip()}"
        )
    return proc, match.group(1), int(match.group(2))


def _client(config: ChaosConfig, port: int):
    from repro.errors import IngressConnectionError
    from repro.ingress import IngressClient
    from repro.reliability.retry import RetryPolicy

    # Accept faults and mid-storm resets are absorbed by reconnect-and-
    # retry (safe: a reset connection never had its request dispatched
    # without an answer — the farm layer is exactly-once underneath);
    # breaker sheds are absorbed by the retry-after honoring loop.
    return IngressClient(
        host=config.host,
        port=port,
        retry=RetryPolicy(
            retries=8,
            base=0.02,
            cap=0.5,
            jitter=0.5,
            seed=config.seed,
            retry_on=(IngressConnectionError,),
        ),
        overload_retries=4,
        max_retry_after=1.0,
    )


def _pump_lane(
    client,
    key: str,
    pairs: list[tuple[int, int]],
    tally: dict[str, list[int]],
    counters: dict[str, int],
    failures: list[str],
    lock: threading.Lock,
) -> None:
    """Serve one lane slice serially, resubmitting only not-served fails.

    ``OVERLOAD`` and injected-fault ``ERROR`` responses are both answered
    *before* the request touched a session, so resubmission preserves the
    exactly-once totals.  Anything else is a real drop: recorded as a
    failure, which fails the soak's invariants loudly.
    """
    for u, v in pairs:
        while True:
            try:
                result = client.serve(key, u, v)
            except IngressOverload as exc:
                with lock:
                    counters["resubmissions"] += 1
                time.sleep(min(max(exc.retry_after, 0.01), 0.5))
                continue
            except IngressError as exc:
                if "injected fault" in str(exc):
                    with lock:
                        counters["resubmissions"] += 1
                    time.sleep(0.01)
                    continue
                with lock:
                    failures.append(f"{key}: {type(exc).__name__}: {exc}")
                return
            with lock:
                row = tally[key]
                row[0] += result.m
                row[1] += result.total_routing
                row[2] += result.total_rotations
                row[3] += result.total_links_changed
                counters["served"] += 1
            break


# ----------------------------------------------------------------------
# the controller: kill, time detection, time recovery
# ----------------------------------------------------------------------
def _shard_row(metrics: dict, shard: int) -> Optional[dict]:
    for row in metrics.get("shards", ()):
        if row.get("shard") == shard:
            return row
    return None


def _kill_and_observe(
    control,
    victim: int,
    config: ChaosConfig,
) -> dict[str, Any]:
    """SIGKILL ``victim``'s worker; time detection and recovery via METRICS."""

    def poll() -> Optional[dict]:
        try:
            return control.metrics()
        except IngressError:
            return None

    metrics = poll()
    row = _shard_row(metrics, victim) if metrics else None
    if row is None or not row.get("pid"):
        raise ReliabilityError(
            f"chaos controller could not resolve shard {victim}'s pid"
        )
    old_pid = row["pid"]
    recoveries_before = row["recoveries"]
    try:
        os.kill(old_pid, signal.SIGKILL)
    except ProcessLookupError:  # pragma: no cover - raced a respawn
        pass
    killed_at = time.monotonic()
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None
    new_pid: Optional[int] = None
    deadline = killed_at + config.recovery_timeout
    while time.monotonic() < deadline:
        metrics = poll()
        if metrics is None:
            time.sleep(0.005)
            continue
        row = _shard_row(metrics, victim)
        if row is None:
            time.sleep(0.005)
            continue
        pid_changed = bool(row["pid"]) and row["pid"] != old_pid
        noticed = (
            row["health"] != "healthy"
            or row["recoveries"] > recoveries_before
            or pid_changed
        )
        if detected_at is None and noticed:
            detected_at = time.monotonic()
        if (
            row["health"] == "healthy"
            and row["recoveries"] > recoveries_before
            and pid_changed
        ):
            recovered_at = time.monotonic()
            new_pid = row["pid"]
            break
        time.sleep(0.005)
    return {
        "victim_shard": victim,
        "old_pid": old_pid,
        "new_pid": new_pid,
        "recovered": recovered_at is not None,
        "time_to_detect_seconds": (
            detected_at - killed_at if detected_at is not None else None
        ),
        "time_to_recover_seconds": (
            recovered_at - killed_at if recovered_at is not None else None
        ),
    }


# ----------------------------------------------------------------------
# the soak
# ----------------------------------------------------------------------
def run_chaos(config: ChaosConfig) -> dict:
    """Run one seeded soak; return a JSON-serializable invariant report."""
    lanes = _keyed_lanes(config)
    clean = _clean_totals(lanes, config)
    total_requests = sum(len(pairs) for pairs in lanes.values())

    report: dict[str, Any] = {
        "benchmark": "chaos",
        "config": {
            "n": config.n,
            "k": config.k,
            "keys": config.keys,
            "shards": config.shards,
            "rounds": config.rounds,
            "requests_per_round": config.requests_per_round,
            "zipf_alpha": config.zipf_alpha,
            "seed": config.seed,
            "engine": config.engine,
            "fault_points": list(config.fault_points),
            "faults_per_point": config.faults_per_point,
            "checkpoint_every": config.checkpoint_every,
        },
        "rounds": [],
    }

    tally = {key: [0, 0, 0, 0] for key in lanes}
    counters = {"served": 0, "resubmissions": 0}
    failures: list[str] = []
    lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        plan = _storm_plan(config, ledger=os.path.join(tmp, "ledger"))
        report["config"]["fault_run_id"] = plan.run_id
        proc, _host, port = _spawn_server(config, plan)
        control = _client(config, port)
        clients = {key: _client(config, port) for key in lanes}
        try:
            for rnd in range(config.rounds):
                threads = [
                    threading.Thread(
                        target=_pump_lane,
                        args=(
                            clients[key],
                            key,
                            _round_slice(pairs, rnd, config.rounds),
                            tally,
                            counters,
                            failures,
                            lock,
                        ),
                        name=f"chaos-lane-{key}",
                    )
                    for key, pairs in lanes.items()
                ]
                for thread in threads:
                    thread.start()
                # Let the lanes build real load before pulling the rug.
                time.sleep(max(config.health_interval, 0.05))
                round_report = _kill_and_observe(
                    control, rnd % config.shards, config
                )
                round_report["round"] = rnd
                report["rounds"].append(round_report)
                for thread in threads:
                    thread.join()
        finally:
            final_metrics: Optional[dict] = None
            try:
                final_metrics = control.metrics()
            except IngressError:
                pass
            control.close()
            for client in clients.values():
                client.close()
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10)

    observed = [0, 0, 0, 0]
    for row in tally.values():
        for i in range(4):
            observed[i] += row[i]

    recovered_rounds = [r for r in report["rounds"] if r["recovered"]]
    detects = [
        r["time_to_detect_seconds"]
        for r in report["rounds"]
        if r["time_to_detect_seconds"] is not None
    ]
    recovers = [
        r["time_to_recover_seconds"] for r in recovered_rounds
    ]

    server_counters = {
        name: final_metrics.get(name) if final_metrics else None
        for name in ("admitted", "served", "overloaded", "errors")
    }
    shard_rows = final_metrics.get("shards", []) if final_metrics else []
    all_healthy = bool(shard_rows) and all(
        row["health"] == "healthy" for row in shard_rows
    )
    # No deadlines are configured, so nothing can overload *after*
    # admission: every admitted request must land in served or errors.
    accounted = (
        final_metrics is not None
        and server_counters["admitted"]
        == server_counters["served"] + server_counters["errors"]
    )

    report.update(
        {
            "requests_sent": total_requests,
            "requests_served": counters["served"],
            "resubmissions": counters["resubmissions"],
            "lane_failures": failures,
            "clean_totals": clean,
            "observed_totals": observed,
            "totals_match": observed == clean,
            "server": server_counters,
            "final_shards": shard_rows,
            "rounds_survived": len(recovered_rounds),
            "mean_time_to_detect_seconds": (
                sum(detects) / len(detects) if detects else None
            ),
            "mean_time_to_recover_seconds": (
                sum(recovers) / len(recovers) if recovers else None
            ),
            "no_dropped_requests": (
                not failures
                and counters["served"] == total_requests
                and accounted
            ),
            "all_shards_healthy": all_healthy,
            "clean_exit": proc.returncode == 0,
        }
    )
    report["passed"] = (
        report["totals_match"]
        and report["no_dropped_requests"]
        and report["all_shards_healthy"]
        and report["clean_exit"]
        and report["rounds_survived"] == config.rounds
    )
    return report


def write_chaos_record(result: dict, path: "str | Path") -> Path:
    """Persist a soak record as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out
