"""Deterministic fault injection: named points, replayable plans.

Production code cannot prove its recovery paths work without a way to
*cause* the failures they recover from — deterministically, so the same
crash replays identically in a unit test, in CI and in a bisect.  This
module provides that harness:

* a :class:`FaultSpec` names one failure: an **injection point** (a dotted
  string compiled into the production code, e.g. ``"pool.task"``), a
  **mode** (how to fail), the **invocation indices** at which to fire and
  an optional **match** substring narrowing the firing to specific
  contexts (e.g. one scenario cell out of a campaign);
* a :class:`FaultPlan` is a frozen, JSON-round-tripping set of specs plus
  an optional file-backed **ledger** directory that makes invocation
  counting global across worker processes (essential for ``kill`` faults:
  the marker outlives the process it killed, so the respawned worker does
  not re-fire);
* production code calls :func:`fire_fault` at its injection points; with
  no plan installed this is a dict lookup and an early return, so the
  hooks cost nothing in normal operation;
* plans activate either in-process (:func:`install_fault_plan` /
  :func:`inject_faults`) or via the ``REPRO_FAULTS`` environment variable
  (JSON text, or ``@/path/to/plan.json``), which worker processes inherit
  — the same plan replays in every process of a pooled run.

Injection points compiled into the repository (mode semantics are
interpreted by the site):

=====================  ======================================================
``pool.task``          around one task item in a pool worker
                       (``error`` raises :class:`FaultInjected`;
                       ``kill`` hard-exits the worker process —
                       a SIGKILL stand-in producing ``BrokenProcessPool``)
``sink.write``         in :meth:`JsonlResultSink.write` (``error`` fails the
                       write; ``truncate`` leaves a torn partial line on
                       disk, then fails — a mid-``write`` SIGKILL stand-in)
``native.load``        in the native kernel loader (``corrupt`` overwrites
                       the cached shared object with garbage before the
                       load attempt; ``error`` fails the load outright)
``session.snapshot``   in :meth:`Session.snapshot` (``corrupt`` tampers the
                       checkpointed tree state so a post-restore
                       :meth:`Session.audit` must detect it;
                       ``error`` fails the snapshot)
``farm.serve``         around one dispatched window in a serve-farm shard
                       worker (``error`` raises :class:`FaultInjected`,
                       relayed to the farm parent; ``kill`` hard-exits the
                       worker — the parent respawns it and replays its
                       journal; use a ledger so the kill stays fired)
``ingress.accept``     as the ingress gateway accepts a connection
                       (``error`` closes the socket before the handshake —
                       a refused/reset connection the client's retry
                       policy must absorb; ``kill`` hard-exits the server
                       process)
``ingress.dispatch``   around one coalesced micro-batch in an ingress
                       dispatcher (context ``shard=N``; ``error`` raises
                       :class:`FaultInjected`, answered to every affected
                       client as an ``ERROR`` response; ``kill`` hard-exits
                       the server mid-stream — clients see a dropped
                       connection, the retryable state)
=====================  ======================================================
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.errors import FaultInjected, ReliabilityError

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "clear_fault_plan",
    "fire_fault",
    "inject_faults",
    "install_fault_plan",
]

#: Environment variable carrying a serialized plan (JSON text, or
#: ``@<path>`` naming a JSON file).  Inherited by worker processes, so one
#: export activates the identical plan across a whole pooled campaign.
FAULTS_ENV = "REPRO_FAULTS"

#: Failure modes a spec may request (sites interpret them; unknown
#: combinations degrade to ``error``).
FAULT_MODES = ("error", "kill", "truncate", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic failure: where, how, and at which invocations.

    Attributes
    ----------
    point:
        Injection-point name (see the module table).
    mode:
        Failure mode the site should enact.
    at:
        1-based invocation indices (of calls matching ``point`` +
        ``match``) at which the fault fires.  Default: first call only.
    match:
        Substring that must appear in the call's context string for the
        call to count — e.g. ``"seed=3"`` to target one cell of a
        campaign.  Empty matches every call at the point.
    detail:
        Free-form text carried into the raised :class:`FaultInjected`.
    """

    point: str
    mode: str = "error"
    at: tuple[int, ...] = (1,)
    match: str = ""
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.point:
            raise ReliabilityError("FaultSpec.point must be non-empty")
        if self.mode not in FAULT_MODES:
            raise ReliabilityError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}"
            )
        object.__setattr__(self, "at", tuple(int(i) for i in self.at))
        if any(i < 1 for i in self.at):
            raise ReliabilityError("FaultSpec.at indices are 1-based (>= 1)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": self.point,
            "mode": self.mode,
            "at": list(self.at),
            "match": self.match,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {"point", "mode", "at", "match", "detail"}
        unknown = set(data) - known
        if unknown:
            raise ReliabilityError(f"unknown FaultSpec fields {sorted(unknown)}")
        return cls(
            point=data["point"],
            mode=data.get("mode", "error"),
            at=tuple(data.get("at", (1,))),
            match=data.get("match", ""),
            detail=data.get("detail", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable set of :class:`FaultSpec` injections.

    ``ledger`` (optional) is a directory used to count invocations
    *globally* across processes: each matching call claims the next
    marker file atomically (``O_CREAT | O_EXCL``), so an index fired in a
    worker that was then killed stays fired for the respawned worker.
    Without a ledger, counters are per-process (fine for single-process
    tests).

    Markers live under ``ledger/<run_id>/`` so two drills sharing a
    ledger directory never see each other's claims.  ``run_id`` is
    auto-generated when a ledger is set, serialized with the plan (so
    worker processes inheriting it via ``REPRO_FAULTS`` share the run's
    namespace), and its subdirectory is removed by
    :func:`inject_faults` on exit.
    """

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    ledger: Optional[str] = None
    run_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.ledger is not None and not self.run_id:
            object.__setattr__(self, "run_id", uuid.uuid4().hex[:12])

    def for_point(self, point: str) -> tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.point == point)

    def ledger_dir(self) -> Optional[Path]:
        """This run's marker directory (``ledger/<run_id>``), or ``None``."""
        if self.ledger is None:
            return None
        return Path(self.ledger) / self.run_id

    # -- JSON / environment round trip ---------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "specs": [spec.to_dict() for spec in self.specs],
            "ledger": self.ledger,
            "run_id": self.run_id,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_dict(item) for item in data.get("specs", ())
            ),
            ledger=data.get("ledger"),
            run_id=data.get("run_id", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ReliabilityError("FaultPlan JSON must be an object")
        return cls.from_dict(data)

    def to_env(self) -> str:
        """The ``REPRO_FAULTS`` value activating this plan (JSON text)."""
        return self.to_json()

    @classmethod
    def from_env(cls, value: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value (JSON text or ``@<path>``)."""
        text = value.strip()
        if text.startswith("@"):
            text = Path(text[1:]).read_text()
        return cls.from_json(text)


# ----------------------------------------------------------------------
# runtime state: the installed plan + invocation counters
# ----------------------------------------------------------------------
_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
_plan_from_env = False
_env_checked = False
_counters: dict[tuple[str, str], int] = {}


def install_fault_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process (counters reset)."""
    global _plan, _plan_from_env, _env_checked
    with _lock:
        _plan = plan
        _plan_from_env = False
        _env_checked = True
        _counters.clear()


def clear_fault_plan() -> None:
    """Deactivate any installed plan and forget the counters.

    Also forgets a plan adopted from ``REPRO_FAULTS`` — the environment
    is re-examined on the next :func:`fire_fault` call, so tests that
    monkeypatch the variable get fresh behaviour.
    """
    global _plan, _plan_from_env, _env_checked
    with _lock:
        _plan = None
        _plan_from_env = False
        _env_checked = False
        _counters.clear()


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan in effect (installed, or adopted from ``REPRO_FAULTS``)."""
    global _plan, _plan_from_env, _env_checked
    with _lock:
        if _plan is None and not _env_checked:
            _env_checked = True
            value = os.environ.get(FAULTS_ENV)
            if value:
                _plan = FaultPlan.from_env(value)
                _plan_from_env = True
        return _plan


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: activate ``plan``, deactivate on exit.

    Exit also removes the run's ledger markers (``ledger/<run_id>/``),
    so consecutive drills sharing a ledger directory start from a clean
    invocation count.
    """
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        clear_fault_plan()
        run_dir = plan.ledger_dir()
        if run_dir is not None:
            shutil.rmtree(run_dir, ignore_errors=True)


def _next_index(plan: FaultPlan, spec: FaultSpec) -> int:
    """Claim this call's 1-based invocation index for ``spec``.

    With a ledger directory the claim is a marker file created with
    ``O_CREAT | O_EXCL`` — atomic across processes, persistent across a
    killed worker.  Without one it is a per-process counter.
    """
    key = (spec.point, spec.match)
    root = plan.ledger_dir()
    if root is None:
        with _lock:
            index = _counters.get(key, 0) + 1
            _counters[key] = index
        return index
    root.mkdir(parents=True, exist_ok=True)
    tag = f"{spec.point}.{spec.match}".replace(os.sep, "_").replace(" ", "_")
    index = 1
    while True:
        marker = root / f"{tag}.{index}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            index += 1
            continue
        os.close(fd)
        return index


def fire_fault(point: str, context: str = "") -> Optional[FaultSpec]:
    """The injection hook production code compiles in.

    Returns the matching :class:`FaultSpec` when a fault should fire at
    this call (the site enacts the mode), or ``None``.  ``mode="error"``
    is fully handled here: :class:`FaultInjected` is raised directly, so
    the common case needs no site-side logic beyond the call.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    for spec in plan.for_point(point):
        if spec.match and spec.match not in context:
            continue
        index = _next_index(plan, spec)
        if index not in spec.at:
            continue
        if spec.mode == "error":
            raise FaultInjected(
                f"injected fault at {point} (invocation {index}"
                + (f", context {context!r}" if context else "")
                + (f"): {spec.detail}" if spec.detail else ")")
            )
        return spec
    return None


def kill_process(spec: FaultSpec) -> None:
    """Enact a ``kill`` fault: hard-exit without cleanup (SIGKILL stand-in).

    ``os._exit`` skips ``atexit`` hooks, ``finally`` blocks and buffered
    I/O exactly as a real SIGKILL would; the parent observes a broken
    worker, not an exception.
    """
    os._exit(77)
